//! Quickstart: write a small program against the IR builder, run it on one
//! of the paper's design points, and look at what the toolchain reports.
//!
//!     cargo run --release --example quickstart

use tta_core::{build_loop, SoftCore};
use tta_ir::{FunctionBuilder, ModuleBuilder};

fn main() {
    // A toy program: dot product of two 32-element vectors held in memory.
    let mut mb = ModuleBuilder::new("dot");
    let a = mb.data_words(&(0..32).map(|i| i * 3 - 7).collect::<Vec<_>>());
    let b = mb.data_words(&(0..32).map(|i| 11 - i).collect::<Vec<_>>());
    let mut fb = FunctionBuilder::new("main", 0, true);
    let acc = fb.copy(0);
    build_loop(&mut fb, 32, |fb, i| {
        let off = fb.shl(i, 2);
        let pa = fb.add(a.base(), off);
        let va = fb.ldw(pa, a.region);
        let pb = fb.add(b.base(), off);
        let vb = fb.ldw(pb, b.region);
        let prod = fb.mul(va, vb);
        let sum = fb.add(acc, prod);
        fb.copy_to(acc, sum);
    });
    fb.ret(acc);
    let main_fn = mb.add(fb.finish());
    mb.set_entry(main_fn);
    let module = mb.finish();

    // Run it on the paper's best performance/area design point and on the
    // VLIW it competes with.
    println!("dot product on two soft cores:\n");
    for name in ["m-tta-2", "m-vliw-2"] {
        let core = SoftCore::design_point(name).expect("known design point");
        let exec = core.run(&module).expect("runs");
        let res = core.resources();
        println!("  {name}:");
        println!("    result        = {}", exec.ret);
        println!("    cycles        = {}", exec.cycles);
        println!(
            "    runtime       = {:.2} us @ {:.0} MHz",
            core.runtime_us(&exec),
            res.fmax_mhz
        );
        println!(
            "    program image = {} instructions x {} bits = {} bits",
            exec.compiled.program.len(),
            core.instruction_bits(),
            exec.compiled.program.image_bits(core.machine())
        );
        println!(
            "    core cost     = {} LUTs ({} in the register file)",
            res.lut_core, res.lut_rf
        );
        println!();
    }
}
