//! Designing a custom transport-triggered soft core from scratch with the
//! machine-description API: a small dual-ALU DSP-flavoured TTA, validated,
//! cost-estimated, and running the SHA kernel — the customisation flow the
//! TCE toolset provides around the paper's core template.
//!
//!     cargo run --release --example custom_core

use tta_core::SoftCore;
use tta_model::{
    Bus, CoreStyle, DstConn, FuId, FunctionUnit, LimmConfig, Machine, RegisterFile, RfId, SrcConn,
};

/// Build a 5-bus, two-ALU TTA with two 16-register banks — the sort of
/// mid-point between `m-tta-1` and `m-tta-2` a designer might sketch.
fn custom_machine() -> Machine {
    let funits = vec![
        FunctionUnit::full_alu("alu0"),
        FunctionUnit::full_alu("alu1"),
        FunctionUnit::full_lsu("lsu"),
        FunctionUnit::control_unit("ctrl"),
    ];
    let rfs = vec![
        RegisterFile::new("rf0", 32, 1, 1),
        RegisterFile::new("rf1", 32, 1, 1),
    ];
    let mut buses: Vec<Bus> = (0..5)
        .map(|i| {
            let mut b = Bus::new(format!("b{i}"));
            b.simm_bits = 6;
            // Rich FU connectivity: every input and result port on every
            // bus.
            for (fi, f) in funits.iter().enumerate() {
                let id = FuId(fi as u16);
                if f.has_result_port() {
                    b.connect_src(SrcConn::FuResult(id));
                }
                b.connect_dst(DstConn::FuTrigger(id));
                if f.has_operand_port() {
                    b.connect_dst(DstConn::FuOperand(id));
                }
            }
            b
        })
        .collect();
    // Narrow RF connectivity: each bank readable on two buses, writable on
    // two.
    for (bank, (rd, wr)) in [(0usize, ([0, 1], [2, 3])), (1usize, ([2, 3], [4, 0]))] {
        for b in rd {
            buses[b].connect_src(SrcConn::RfRead(RfId(bank as u16)));
        }
        for b in wr {
            buses[b].connect_dst(DstConn::RfWrite(RfId(bank as u16)));
        }
    }
    Machine {
        name: "custom-dsp-tta".into(),
        style: CoreStyle::Tta,
        issue_width: 2,
        funits,
        rfs,
        buses,
        slots: Vec::new(),
        scalar: None,
        jump_delay_slots: 2,
        limm: LimmConfig::default(),
        vliw_limm_slots: 2,
    }
}

fn main() {
    let machine = custom_machine();
    let core = SoftCore::new(machine).expect("machine validates");

    let res = core.resources();
    println!("custom core '{}':", core.machine().name);
    println!(
        "  {} buses, {} bits/instruction",
        core.machine().buses.len(),
        core.instruction_bits()
    );
    println!(
        "  estimated {} LUTs ({} RF, {} IC), fmax {:.0} MHz",
        res.lut_core, res.lut_rf, res.lut_ic, res.fmax_mhz
    );

    // Run a real workload on it.
    let kernel = tta_chstone::by_name("sha").expect("kernel");
    let module = (kernel.build)();
    let exec = core.run(&module).expect("sha runs on the custom core");
    assert_eq!(
        exec.ret,
        (kernel.expected)(),
        "checksum matches the reference"
    );
    println!(
        "\n  sha: {} cycles, checksum {:#010x} (verified)",
        exec.cycles, exec.ret
    );
    println!(
        "  bypassed operand reads: {} of {} moves",
        exec.stats.bypass_reads, exec.stats.payload
    );

    // Compare against the two nearest paper design points.
    for name in ["m-tta-1", "m-tta-2"] {
        let other = SoftCore::design_point(name).unwrap();
        let e = other.run(&module).unwrap();
        println!(
            "  vs {name:8}: {:>8} cycles, {:>5} LUTs",
            e.cycles,
            other.resources().lut_core
        );
    }
}
