//! Scenario: picking a soft core for an audio/speech codec accelerator.
//!
//! The paper's intro motivates soft cores for "number crunching" FPGA
//! components where designers want software flexibility at custom-logic
//! efficiency. This example plays that role: evaluate the codec-flavoured
//! kernels (`adpcm`, `gsm`) across all thirteen design points and rank the
//! candidates by the Fig. 6 criterion (runtime x area).
//!
//!     cargo run --release --example codec_design_space

use tta_model::presets;

fn main() {
    let kernels: Vec<_> = ["adpcm", "gsm"]
        .iter()
        .map(|n| tta_chstone::by_name(n).expect("kernel"))
        .collect();
    let reports = tta_explore::evaluate(&presets::all_design_points(), &kernels);

    println!("codec workload (adpcm + gsm) across the design space:\n");
    println!(
        "{:10} {:>10} {:>9} {:>8} {:>9} {:>12}",
        "machine", "geo cycles", "fmax", "slices", "time(us)", "time x area"
    );
    let mut ranked: Vec<_> = reports
        .iter()
        .map(|r| {
            let t = r.geomean_runtime_us();
            (
                r.name.clone(),
                r.geomean_cycles(),
                r.resources.fmax_mhz,
                r.resources.slices,
                t,
            )
        })
        .collect();
    for (name, cyc, fmax, slices, t) in &ranked {
        println!(
            "{:10} {:>10.0} {:>6.0}MHz {:>8} {:>9.1} {:>12.0}",
            name,
            cyc,
            fmax,
            slices,
            t,
            t * *slices as f64
        );
    }

    ranked.sort_by(|a, b| (a.4 * a.3 as f64).total_cmp(&(b.4 * b.3 as f64)));
    println!("\nbest performance/area candidates:");
    for (name, _, _, _, _) in ranked.iter().take(3) {
        println!("  {name}");
    }
    println!(
        "\n(The paper's Fig. 6 finds the 1- and 2-issue TTAs closest to the\n\
         origin of the same trade-off for the full CHStone set.)"
    );
}
