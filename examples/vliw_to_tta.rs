//! The paper's Fig. 4 walked end to end: start from a TTA with VLIW-like
//! resources (monolithic multi-ported RF, full connectivity), then apply
//! the optimisation steps — port reduction via RF partitioning, bypass
//! pruning, greedy bus merging — and watch instruction width, FPGA cost
//! and cycle count move at every step.
//!
//!     cargo run --release --example vliw_to_tta

use tta_explore::{merge_buses, partition_rf, profile_buses, prune_bypasses};
use tta_isa::encoding::instruction_bits;
use tta_model::presets;

fn report(stage: &str, m: &tta_model::Machine, kernel: &tta_chstone::Kernel) {
    let run = tta_explore::eval::run_kernel(kernel, m);
    let res = tta_fpga::estimate(m);
    println!(
        "{:28} {:>2} buses {:>4} bits/instr {:>6} LUT {:>4.0} MHz {:>8} cycles",
        stage,
        m.buses.len(),
        instruction_bits(m),
        res.lut_core,
        res.fmax_mhz,
        run.cycles
    );
}

fn main() {
    let kernel = tta_chstone::by_name("gsm").expect("kernel");
    let kernels: Vec<_> = ["gsm", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).unwrap())
        .collect();

    println!("Fig. 4: from a VLIW-like datapath to an optimised TTA (gsm kernel)\n");

    // (a) The starting point: TTA programming model over VLIW-style
    // resources — a monolithic register file.
    let a = presets::m_tta_2();
    report("(a) monolithic RF", &a, &kernel);

    // (b) Register file port/partition optimisation.
    let b = partition_rf(&a, 2, 1, 1);
    report("(b) RF partitioned", &b, &kernel);

    // (c) Prune bypass connections the application set never uses.
    let profile_b = profile_buses(&b, &kernels);
    let c = prune_bypasses(&b, &profile_b);
    report("(c) bypasses pruned", &c, &kernel);

    // (d) Merge the buses least often used concurrently.
    let profile_c = profile_buses(&c, &kernels);
    let d = merge_buses(&c, 4, &profile_c);
    report("(d) buses merged", &d, &kernel);

    println!(
        "\nStep (d) trades a few cycles for a much narrower instruction,\n\
         exactly the bm-tta trade-off of the paper's Table II/IV."
    );
}
