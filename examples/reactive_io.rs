//! Reactive I/O: run the interrupt-driven example guests — a UART echo
//! server and a timer-driven producer/consumer — on several design
//! points and look at the interrupt-side numbers.
//!
//!     cargo run --release --example reactive_io
//!
//! Each guest installs a `__irq` handler, talks to the memory-mapped
//! devices at `0xFFFF_0000` (DESIGN.md §15), and converges on a
//! timing-invariant checksum: interrupt arrival cycles differ across
//! the three core styles, the transmitted bytes and the returned value
//! do not.

use tta_chstone::reactive;
use tta_compiler::compile;
use tta_model::presets;
use tta_sim::run_with_io;

fn main() {
    let machines = [presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()];
    for guest in reactive::all_guests() {
        let module = (guest.build)();
        let spec = (guest.spec)();
        println!(
            "{} (expected checksum {:#x}):\n",
            guest.name,
            (guest.expected)()
        );
        for machine in &machines {
            let c = compile(&module, machine).expect("compiles");
            let r = run_with_io(
                machine,
                &c.program,
                module.initial_memory(),
                200_000,
                &spec,
                c.irq_entry,
            )
            .expect("runs");
            assert_eq!(r.ret, (guest.expected)(), "checksum is style-invariant");
            assert_eq!(
                r.uart_tx,
                (guest.expected_tx)(),
                "tx stream is style-invariant"
            );
            println!("  {}:", machine.name);
            println!("    checksum   = {:#x}", r.ret);
            println!(
                "    interrupts = {} delivered, {} trap-overhead cycles",
                r.stats.irqs, r.stats.irq_cycles
            );
            if r.uart_tx.is_empty() {
                println!("    uart tx    = (none — timer guest)");
            } else {
                println!("    uart tx    = {:?}", String::from_utf8_lossy(&r.uart_tx));
            }
            println!("    cycles     = {}", r.cycles);
            println!();
        }
    }
    println!("same checksum and tx stream everywhere; only the cycle counts differ.");
}
