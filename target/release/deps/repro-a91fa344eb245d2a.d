/root/repo/target/release/deps/repro-a91fa344eb245d2a.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-a91fa344eb245d2a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
