/root/repo/target/release/deps/table4-0bf2d74fe9ea37dd.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-0bf2d74fe9ea37dd: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
