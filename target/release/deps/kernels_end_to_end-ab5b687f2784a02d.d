/root/repo/target/release/deps/kernels_end_to_end-ab5b687f2784a02d.d: tests/kernels_end_to_end.rs

/root/repo/target/release/deps/kernels_end_to_end-ab5b687f2784a02d: tests/kernels_end_to_end.rs

tests/kernels_end_to_end.rs:
