/root/repo/target/release/deps/tta_bench-895dab75b31884d9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtta_bench-895dab75b31884d9.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtta_bench-895dab75b31884d9.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
