/root/repo/target/release/deps/ablation-f4acf0989fd484d3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-f4acf0989fd484d3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
