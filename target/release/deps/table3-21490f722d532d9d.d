/root/repo/target/release/deps/table3-21490f722d532d9d.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-21490f722d532d9d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
