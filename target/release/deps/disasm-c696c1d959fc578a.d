/root/repo/target/release/deps/disasm-c696c1d959fc578a.d: crates/bench/src/bin/disasm.rs

/root/repo/target/release/deps/disasm-c696c1d959fc578a: crates/bench/src/bin/disasm.rs

crates/bench/src/bin/disasm.rs:
