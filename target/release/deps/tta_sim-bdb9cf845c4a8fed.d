/root/repo/target/release/deps/tta_sim-bdb9cf845c4a8fed.d: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

/root/repo/target/release/deps/libtta_sim-bdb9cf845c4a8fed.rlib: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

/root/repo/target/release/deps/libtta_sim-bdb9cf845c4a8fed.rmeta: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

crates/sim/src/lib.rs:
crates/sim/src/result.rs:
crates/sim/src/scalar.rs:
crates/sim/src/tta.rs:
crates/sim/src/vliw.rs:
