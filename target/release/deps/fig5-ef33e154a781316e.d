/root/repo/target/release/deps/fig5-ef33e154a781316e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-ef33e154a781316e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
