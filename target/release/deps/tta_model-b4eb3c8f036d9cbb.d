/root/repo/target/release/deps/tta_model-b4eb3c8f036d9cbb.d: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

/root/repo/target/release/deps/libtta_model-b4eb3c8f036d9cbb.rlib: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

/root/repo/target/release/deps/libtta_model-b4eb3c8f036d9cbb.rmeta: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

crates/model/src/lib.rs:
crates/model/src/bus.rs:
crates/model/src/fu.rs:
crates/model/src/machine.rs:
crates/model/src/mem.rs:
crates/model/src/op.rs:
crates/model/src/presets.rs:
crates/model/src/rf.rs:
