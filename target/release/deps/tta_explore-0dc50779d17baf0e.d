/root/repo/target/release/deps/tta_explore-0dc50779d17baf0e.d: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

/root/repo/target/release/deps/libtta_explore-0dc50779d17baf0e.rlib: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

/root/repo/target/release/deps/libtta_explore-0dc50779d17baf0e.rmeta: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

crates/explore/src/lib.rs:
crates/explore/src/compression.rs:
crates/explore/src/eval.rs:
crates/explore/src/imem.rs:
crates/explore/src/figures.rs:
crates/explore/src/sweep.rs:
crates/explore/src/tables.rs:
crates/explore/src/transform.rs:
