/root/repo/target/release/deps/sweep-23cb33170acfb269.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-23cb33170acfb269: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
