/root/repo/target/release/deps/tta_fpga-dd66f9c47f423659.d: crates/fpga/src/lib.rs crates/fpga/src/model.rs

/root/repo/target/release/deps/libtta_fpga-dd66f9c47f423659.rlib: crates/fpga/src/lib.rs crates/fpga/src/model.rs

/root/repo/target/release/deps/libtta_fpga-dd66f9c47f423659.rmeta: crates/fpga/src/lib.rs crates/fpga/src/model.rs

crates/fpga/src/lib.rs:
crates/fpga/src/model.rs:
