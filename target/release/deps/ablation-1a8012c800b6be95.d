/root/repo/target/release/deps/ablation-1a8012c800b6be95.d: tests/ablation.rs

/root/repo/target/release/deps/ablation-1a8012c800b6be95: tests/ablation.rs

tests/ablation.rs:
