/root/repo/target/release/deps/tta_ir-d782464c02fb5fdb.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libtta_ir-d782464c02fb5fdb.rlib: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libtta_ir-d782464c02fb5fdb.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/func.rs:
crates/ir/src/inst.rs:
crates/ir/src/interp.rs:
crates/ir/src/verify.rs:
