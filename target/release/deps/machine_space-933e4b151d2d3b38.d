/root/repo/target/release/deps/machine_space-933e4b151d2d3b38.d: tests/machine_space.rs

/root/repo/target/release/deps/machine_space-933e4b151d2d3b38: tests/machine_space.rs

tests/machine_space.rs:
