/root/repo/target/release/deps/table2-1d761e5900188906.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-1d761e5900188906: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
