/root/repo/target/release/deps/compression-cefd095c16d8bb77.d: crates/bench/src/bin/compression.rs

/root/repo/target/release/deps/compression-cefd095c16d8bb77: crates/bench/src/bin/compression.rs

crates/bench/src/bin/compression.rs:
