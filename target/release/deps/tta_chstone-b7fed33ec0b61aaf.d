/root/repo/target/release/deps/tta_chstone-b7fed33ec0b61aaf.d: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

/root/repo/target/release/deps/libtta_chstone-b7fed33ec0b61aaf.rlib: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

/root/repo/target/release/deps/libtta_chstone-b7fed33ec0b61aaf.rmeta: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

crates/chstone/src/lib.rs:
crates/chstone/src/adpcm.rs:
crates/chstone/src/aes.rs:
crates/chstone/src/blowfish.rs:
crates/chstone/src/gsm.rs:
crates/chstone/src/jpeg.rs:
crates/chstone/src/mips.rs:
crates/chstone/src/motion.rs:
crates/chstone/src/sha.rs:
crates/chstone/src/util.rs:
