/root/repo/target/release/deps/imem-3fa578783653cacc.d: crates/bench/src/bin/imem.rs

/root/repo/target/release/deps/imem-3fa578783653cacc: crates/bench/src/bin/imem.rs

crates/bench/src/bin/imem.rs:
