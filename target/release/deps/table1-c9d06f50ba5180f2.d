/root/repo/target/release/deps/table1-c9d06f50ba5180f2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-c9d06f50ba5180f2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
