/root/repo/target/release/deps/binary_images-566688b624f6d46f.d: tests/binary_images.rs

/root/repo/target/release/deps/binary_images-566688b624f6d46f: tests/binary_images.rs

tests/binary_images.rs:
