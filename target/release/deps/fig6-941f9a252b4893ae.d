/root/repo/target/release/deps/fig6-941f9a252b4893ae.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-941f9a252b4893ae: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
