/root/repo/target/release/deps/tta_isa-49ce3872ff33f0bc.d: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

/root/repo/target/release/deps/libtta_isa-49ce3872ff33f0bc.rlib: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

/root/repo/target/release/deps/libtta_isa-49ce3872ff33f0bc.rmeta: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/bits.rs:
crates/isa/src/code.rs:
crates/isa/src/encoding.rs:
crates/isa/src/program.rs:
