/root/repo/target/release/deps/tta_soft_cores-dcee2c0a639de4fa.d: src/lib.rs

/root/repo/target/release/deps/libtta_soft_cores-dcee2c0a639de4fa.rlib: src/lib.rs

/root/repo/target/release/deps/libtta_soft_cores-dcee2c0a639de4fa.rmeta: src/lib.rs

src/lib.rs:
