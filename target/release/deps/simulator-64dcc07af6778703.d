/root/repo/target/release/deps/simulator-64dcc07af6778703.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-64dcc07af6778703: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
