/root/repo/target/release/deps/tta_core-388f9ac6267b3772.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libtta_core-388f9ac6267b3772.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libtta_core-388f9ac6267b3772.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
