/root/repo/target/release/deps/tta_testutil-13bf08271586824a.d: crates/testutil/src/lib.rs

/root/repo/target/release/deps/libtta_testutil-13bf08271586824a.rlib: crates/testutil/src/lib.rs

/root/repo/target/release/deps/libtta_testutil-13bf08271586824a.rmeta: crates/testutil/src/lib.rs

crates/testutil/src/lib.rs:
