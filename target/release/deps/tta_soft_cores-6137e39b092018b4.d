/root/repo/target/release/deps/tta_soft_cores-6137e39b092018b4.d: src/lib.rs

/root/repo/target/release/deps/tta_soft_cores-6137e39b092018b4: src/lib.rs

src/lib.rs:
