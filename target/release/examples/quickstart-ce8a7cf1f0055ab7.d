/root/repo/target/release/examples/quickstart-ce8a7cf1f0055ab7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ce8a7cf1f0055ab7: examples/quickstart.rs

examples/quickstart.rs:
