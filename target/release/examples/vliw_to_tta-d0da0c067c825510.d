/root/repo/target/release/examples/vliw_to_tta-d0da0c067c825510.d: examples/vliw_to_tta.rs

/root/repo/target/release/examples/vliw_to_tta-d0da0c067c825510: examples/vliw_to_tta.rs

examples/vliw_to_tta.rs:
