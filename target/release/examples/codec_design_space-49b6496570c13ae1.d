/root/repo/target/release/examples/codec_design_space-49b6496570c13ae1.d: examples/codec_design_space.rs

/root/repo/target/release/examples/codec_design_space-49b6496570c13ae1: examples/codec_design_space.rs

examples/codec_design_space.rs:
