/root/repo/target/release/examples/custom_core-d8b9580b3b9e0b9c.d: examples/custom_core.rs

/root/repo/target/release/examples/custom_core-d8b9580b3b9e0b9c: examples/custom_core.rs

examples/custom_core.rs:
