/root/repo/target/debug/deps/sweep-0fc72cd4b4cd186c.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-0fc72cd4b4cd186c: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
