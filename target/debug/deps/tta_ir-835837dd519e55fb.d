/root/repo/target/debug/deps/tta_ir-835837dd519e55fb.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libtta_ir-835837dd519e55fb.rlib: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libtta_ir-835837dd519e55fb.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/func.rs:
crates/ir/src/inst.rs:
crates/ir/src/interp.rs:
crates/ir/src/verify.rs:
