/root/repo/target/debug/deps/machine_space-6ef4127623e8a6b2.d: tests/machine_space.rs

/root/repo/target/debug/deps/machine_space-6ef4127623e8a6b2: tests/machine_space.rs

tests/machine_space.rs:
