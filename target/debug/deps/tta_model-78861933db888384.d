/root/repo/target/debug/deps/tta_model-78861933db888384.d: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

/root/repo/target/debug/deps/tta_model-78861933db888384: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

crates/model/src/lib.rs:
crates/model/src/bus.rs:
crates/model/src/fu.rs:
crates/model/src/machine.rs:
crates/model/src/mem.rs:
crates/model/src/op.rs:
crates/model/src/presets.rs:
crates/model/src/rf.rs:
