/root/repo/target/debug/deps/fig5-caf7a09d664db6c6.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-caf7a09d664db6c6: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
