/root/repo/target/debug/deps/disasm-f32af093ba913a04.d: crates/bench/src/bin/disasm.rs

/root/repo/target/debug/deps/disasm-f32af093ba913a04: crates/bench/src/bin/disasm.rs

crates/bench/src/bin/disasm.rs:
