/root/repo/target/debug/deps/table2-b34b16d86ef2eea3.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b34b16d86ef2eea3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
