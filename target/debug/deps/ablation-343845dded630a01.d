/root/repo/target/debug/deps/ablation-343845dded630a01.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-343845dded630a01: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
