/root/repo/target/debug/deps/binary_images-91c650f2c2eaf2cb.d: tests/binary_images.rs

/root/repo/target/debug/deps/binary_images-91c650f2c2eaf2cb: tests/binary_images.rs

tests/binary_images.rs:
