/root/repo/target/debug/deps/fig6-4182291e34a63a4e.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4182291e34a63a4e: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
