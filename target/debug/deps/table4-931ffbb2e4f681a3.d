/root/repo/target/debug/deps/table4-931ffbb2e4f681a3.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-931ffbb2e4f681a3: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
