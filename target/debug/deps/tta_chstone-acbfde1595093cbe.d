/root/repo/target/debug/deps/tta_chstone-acbfde1595093cbe.d: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

/root/repo/target/debug/deps/libtta_chstone-acbfde1595093cbe.rlib: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

/root/repo/target/debug/deps/libtta_chstone-acbfde1595093cbe.rmeta: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

crates/chstone/src/lib.rs:
crates/chstone/src/adpcm.rs:
crates/chstone/src/aes.rs:
crates/chstone/src/blowfish.rs:
crates/chstone/src/gsm.rs:
crates/chstone/src/jpeg.rs:
crates/chstone/src/mips.rs:
crates/chstone/src/motion.rs:
crates/chstone/src/sha.rs:
crates/chstone/src/util.rs:
