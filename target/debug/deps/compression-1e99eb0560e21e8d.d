/root/repo/target/debug/deps/compression-1e99eb0560e21e8d.d: crates/bench/src/bin/compression.rs

/root/repo/target/debug/deps/compression-1e99eb0560e21e8d: crates/bench/src/bin/compression.rs

crates/bench/src/bin/compression.rs:
