/root/repo/target/debug/deps/tta_fpga-b4e4ae5748379114.d: crates/fpga/src/lib.rs crates/fpga/src/model.rs

/root/repo/target/debug/deps/tta_fpga-b4e4ae5748379114: crates/fpga/src/lib.rs crates/fpga/src/model.rs

crates/fpga/src/lib.rs:
crates/fpga/src/model.rs:
