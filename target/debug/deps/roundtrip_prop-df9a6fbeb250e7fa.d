/root/repo/target/debug/deps/roundtrip_prop-df9a6fbeb250e7fa.d: crates/isa/tests/roundtrip_prop.rs

/root/repo/target/debug/deps/roundtrip_prop-df9a6fbeb250e7fa: crates/isa/tests/roundtrip_prop.rs

crates/isa/tests/roundtrip_prop.rs:
