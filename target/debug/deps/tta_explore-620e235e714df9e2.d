/root/repo/target/debug/deps/tta_explore-620e235e714df9e2.d: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

/root/repo/target/debug/deps/tta_explore-620e235e714df9e2: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

crates/explore/src/lib.rs:
crates/explore/src/compression.rs:
crates/explore/src/eval.rs:
crates/explore/src/imem.rs:
crates/explore/src/figures.rs:
crates/explore/src/sweep.rs:
crates/explore/src/tables.rs:
crates/explore/src/transform.rs:
