/root/repo/target/debug/deps/tta_fpga-65d076544f6a3fce.d: crates/fpga/src/lib.rs crates/fpga/src/model.rs

/root/repo/target/debug/deps/libtta_fpga-65d076544f6a3fce.rlib: crates/fpga/src/lib.rs crates/fpga/src/model.rs

/root/repo/target/debug/deps/libtta_fpga-65d076544f6a3fce.rmeta: crates/fpga/src/lib.rs crates/fpga/src/model.rs

crates/fpga/src/lib.rs:
crates/fpga/src/model.rs:
