/root/repo/target/debug/deps/kernels_end_to_end-683ba2406449601b.d: tests/kernels_end_to_end.rs

/root/repo/target/debug/deps/kernels_end_to_end-683ba2406449601b: tests/kernels_end_to_end.rs

tests/kernels_end_to_end.rs:
