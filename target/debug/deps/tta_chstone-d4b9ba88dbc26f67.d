/root/repo/target/debug/deps/tta_chstone-d4b9ba88dbc26f67.d: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

/root/repo/target/debug/deps/tta_chstone-d4b9ba88dbc26f67: crates/chstone/src/lib.rs crates/chstone/src/adpcm.rs crates/chstone/src/aes.rs crates/chstone/src/blowfish.rs crates/chstone/src/gsm.rs crates/chstone/src/jpeg.rs crates/chstone/src/mips.rs crates/chstone/src/motion.rs crates/chstone/src/sha.rs crates/chstone/src/util.rs

crates/chstone/src/lib.rs:
crates/chstone/src/adpcm.rs:
crates/chstone/src/aes.rs:
crates/chstone/src/blowfish.rs:
crates/chstone/src/gsm.rs:
crates/chstone/src/jpeg.rs:
crates/chstone/src/mips.rs:
crates/chstone/src/motion.rs:
crates/chstone/src/sha.rs:
crates/chstone/src/util.rs:
