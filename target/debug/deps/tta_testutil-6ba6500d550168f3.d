/root/repo/target/debug/deps/tta_testutil-6ba6500d550168f3.d: crates/testutil/src/lib.rs

/root/repo/target/debug/deps/tta_testutil-6ba6500d550168f3: crates/testutil/src/lib.rs

crates/testutil/src/lib.rs:
