/root/repo/target/debug/deps/imem-54bdc88a7def6ef2.d: crates/bench/src/bin/imem.rs

/root/repo/target/debug/deps/imem-54bdc88a7def6ef2: crates/bench/src/bin/imem.rs

crates/bench/src/bin/imem.rs:
