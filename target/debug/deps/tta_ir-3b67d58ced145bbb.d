/root/repo/target/debug/deps/tta_ir-3b67d58ced145bbb.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/tta_ir-3b67d58ced145bbb: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/func.rs crates/ir/src/inst.rs crates/ir/src/interp.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/func.rs:
crates/ir/src/inst.rs:
crates/ir/src/interp.rs:
crates/ir/src/verify.rs:
