/root/repo/target/debug/deps/differential-340e658dbce71821.d: crates/sim/tests/differential.rs

/root/repo/target/debug/deps/differential-340e658dbce71821: crates/sim/tests/differential.rs

crates/sim/tests/differential.rs:
