/root/repo/target/debug/deps/table3-83cc3d138e440a2d.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-83cc3d138e440a2d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
