/root/repo/target/debug/deps/table1-21660c25461a2ab9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-21660c25461a2ab9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
