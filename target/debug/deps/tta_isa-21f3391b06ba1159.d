/root/repo/target/debug/deps/tta_isa-21f3391b06ba1159.d: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/libtta_isa-21f3391b06ba1159.rlib: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/libtta_isa-21f3391b06ba1159.rmeta: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/bits.rs:
crates/isa/src/code.rs:
crates/isa/src/encoding.rs:
crates/isa/src/program.rs:
