/root/repo/target/debug/deps/tta_bench-00c2683ff792727b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtta_bench-00c2683ff792727b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtta_bench-00c2683ff792727b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
