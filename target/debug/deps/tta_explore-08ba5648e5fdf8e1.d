/root/repo/target/debug/deps/tta_explore-08ba5648e5fdf8e1.d: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

/root/repo/target/debug/deps/libtta_explore-08ba5648e5fdf8e1.rlib: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

/root/repo/target/debug/deps/libtta_explore-08ba5648e5fdf8e1.rmeta: crates/explore/src/lib.rs crates/explore/src/compression.rs crates/explore/src/eval.rs crates/explore/src/imem.rs crates/explore/src/figures.rs crates/explore/src/sweep.rs crates/explore/src/tables.rs crates/explore/src/transform.rs

crates/explore/src/lib.rs:
crates/explore/src/compression.rs:
crates/explore/src/eval.rs:
crates/explore/src/imem.rs:
crates/explore/src/figures.rs:
crates/explore/src/sweep.rs:
crates/explore/src/tables.rs:
crates/explore/src/transform.rs:
