/root/repo/target/debug/deps/tta_bench-9c4069bf3f20e2ce.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tta_bench-9c4069bf3f20e2ce: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
