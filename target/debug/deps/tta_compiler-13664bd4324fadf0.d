/root/repo/target/debug/deps/tta_compiler-13664bd4324fadf0.d: crates/compiler/src/lib.rs crates/compiler/src/bitset.rs crates/compiler/src/compact.rs crates/compiler/src/compile.rs crates/compiler/src/consts.rs crates/compiler/src/dce.rs crates/compiler/src/fold.rs crates/compiler/src/ddg.rs crates/compiler/src/inline.rs crates/compiler/src/liveness.rs crates/compiler/src/loc.rs crates/compiler/src/regalloc.rs crates/compiler/src/scalar_sched.rs crates/compiler/src/tta_sched.rs crates/compiler/src/vliw_sched.rs

/root/repo/target/debug/deps/tta_compiler-13664bd4324fadf0: crates/compiler/src/lib.rs crates/compiler/src/bitset.rs crates/compiler/src/compact.rs crates/compiler/src/compile.rs crates/compiler/src/consts.rs crates/compiler/src/dce.rs crates/compiler/src/fold.rs crates/compiler/src/ddg.rs crates/compiler/src/inline.rs crates/compiler/src/liveness.rs crates/compiler/src/loc.rs crates/compiler/src/regalloc.rs crates/compiler/src/scalar_sched.rs crates/compiler/src/tta_sched.rs crates/compiler/src/vliw_sched.rs

crates/compiler/src/lib.rs:
crates/compiler/src/bitset.rs:
crates/compiler/src/compact.rs:
crates/compiler/src/compile.rs:
crates/compiler/src/consts.rs:
crates/compiler/src/dce.rs:
crates/compiler/src/fold.rs:
crates/compiler/src/ddg.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/liveness.rs:
crates/compiler/src/loc.rs:
crates/compiler/src/regalloc.rs:
crates/compiler/src/scalar_sched.rs:
crates/compiler/src/tta_sched.rs:
crates/compiler/src/vliw_sched.rs:
