/root/repo/target/debug/deps/tta_core-13d788de282827e1.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/tta_core-13d788de282827e1: crates/core/src/lib.rs

crates/core/src/lib.rs:
