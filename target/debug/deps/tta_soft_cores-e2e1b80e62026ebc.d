/root/repo/target/debug/deps/tta_soft_cores-e2e1b80e62026ebc.d: src/lib.rs

/root/repo/target/debug/deps/tta_soft_cores-e2e1b80e62026ebc: src/lib.rs

src/lib.rs:
