/root/repo/target/debug/deps/tta_isa-b3724c0c369de44f.d: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

/root/repo/target/debug/deps/tta_isa-b3724c0c369de44f: crates/isa/src/lib.rs crates/isa/src/bits.rs crates/isa/src/code.rs crates/isa/src/encoding.rs crates/isa/src/program.rs

crates/isa/src/lib.rs:
crates/isa/src/bits.rs:
crates/isa/src/code.rs:
crates/isa/src/encoding.rs:
crates/isa/src/program.rs:
