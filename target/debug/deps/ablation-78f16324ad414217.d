/root/repo/target/debug/deps/ablation-78f16324ad414217.d: tests/ablation.rs

/root/repo/target/debug/deps/ablation-78f16324ad414217: tests/ablation.rs

tests/ablation.rs:
