/root/repo/target/debug/deps/regression_cases-2cb57956229b8ace.d: crates/sim/tests/regression_cases.rs

/root/repo/target/debug/deps/regression_cases-2cb57956229b8ace: crates/sim/tests/regression_cases.rs

crates/sim/tests/regression_cases.rs:
