/root/repo/target/debug/deps/tta_model-54ca6fdc20f93378.d: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

/root/repo/target/debug/deps/libtta_model-54ca6fdc20f93378.rlib: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

/root/repo/target/debug/deps/libtta_model-54ca6fdc20f93378.rmeta: crates/model/src/lib.rs crates/model/src/bus.rs crates/model/src/fu.rs crates/model/src/machine.rs crates/model/src/mem.rs crates/model/src/op.rs crates/model/src/presets.rs crates/model/src/rf.rs

crates/model/src/lib.rs:
crates/model/src/bus.rs:
crates/model/src/fu.rs:
crates/model/src/machine.rs:
crates/model/src/mem.rs:
crates/model/src/op.rs:
crates/model/src/presets.rs:
crates/model/src/rf.rs:
