/root/repo/target/debug/deps/tta_sim-c9cff4004811b2cf.d: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

/root/repo/target/debug/deps/libtta_sim-c9cff4004811b2cf.rlib: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

/root/repo/target/debug/deps/libtta_sim-c9cff4004811b2cf.rmeta: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

crates/sim/src/lib.rs:
crates/sim/src/result.rs:
crates/sim/src/scalar.rs:
crates/sim/src/tta.rs:
crates/sim/src/vliw.rs:
