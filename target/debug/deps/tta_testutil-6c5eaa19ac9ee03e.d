/root/repo/target/debug/deps/tta_testutil-6c5eaa19ac9ee03e.d: crates/testutil/src/lib.rs

/root/repo/target/debug/deps/libtta_testutil-6c5eaa19ac9ee03e.rlib: crates/testutil/src/lib.rs

/root/repo/target/debug/deps/libtta_testutil-6c5eaa19ac9ee03e.rmeta: crates/testutil/src/lib.rs

crates/testutil/src/lib.rs:
