/root/repo/target/debug/deps/tta_core-1ae07a7e1ad36730.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtta_core-1ae07a7e1ad36730.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libtta_core-1ae07a7e1ad36730.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
