/root/repo/target/debug/deps/tta_sim-661628fdd21a9e59.d: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

/root/repo/target/debug/deps/tta_sim-661628fdd21a9e59: crates/sim/src/lib.rs crates/sim/src/result.rs crates/sim/src/scalar.rs crates/sim/src/tta.rs crates/sim/src/vliw.rs

crates/sim/src/lib.rs:
crates/sim/src/result.rs:
crates/sim/src/scalar.rs:
crates/sim/src/tta.rs:
crates/sim/src/vliw.rs:
