/root/repo/target/debug/deps/tta_soft_cores-2bbe167804526885.d: src/lib.rs

/root/repo/target/debug/deps/libtta_soft_cores-2bbe167804526885.rlib: src/lib.rs

/root/repo/target/debug/deps/libtta_soft_cores-2bbe167804526885.rmeta: src/lib.rs

src/lib.rs:
