/root/repo/target/debug/deps/repro-a223ab9d38eada7f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-a223ab9d38eada7f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
