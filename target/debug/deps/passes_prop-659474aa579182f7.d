/root/repo/target/debug/deps/passes_prop-659474aa579182f7.d: crates/compiler/tests/passes_prop.rs

/root/repo/target/debug/deps/passes_prop-659474aa579182f7: crates/compiler/tests/passes_prop.rs

crates/compiler/tests/passes_prop.rs:
