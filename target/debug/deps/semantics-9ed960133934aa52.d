/root/repo/target/debug/deps/semantics-9ed960133934aa52.d: crates/sim/tests/semantics.rs

/root/repo/target/debug/deps/semantics-9ed960133934aa52: crates/sim/tests/semantics.rs

crates/sim/tests/semantics.rs:
