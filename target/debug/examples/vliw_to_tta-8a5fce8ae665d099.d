/root/repo/target/debug/examples/vliw_to_tta-8a5fce8ae665d099.d: examples/vliw_to_tta.rs

/root/repo/target/debug/examples/vliw_to_tta-8a5fce8ae665d099: examples/vliw_to_tta.rs

examples/vliw_to_tta.rs:
