/root/repo/target/debug/examples/quickstart-43d94d21f59bd4a1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-43d94d21f59bd4a1: examples/quickstart.rs

examples/quickstart.rs:
