/root/repo/target/debug/examples/custom_core-2376c9008db4dd17.d: examples/custom_core.rs

/root/repo/target/debug/examples/custom_core-2376c9008db4dd17: examples/custom_core.rs

examples/custom_core.rs:
