/root/repo/target/debug/examples/codec_design_space-9425d26e113ee33e.d: examples/codec_design_space.rs

/root/repo/target/debug/examples/codec_design_space-9425d26e113ee33e: examples/codec_design_space.rs

examples/codec_design_space.rs:
