//! Workspace root: see the `tta-core` facade crate.
