//! The resource and timing estimation model.
//!
//! Every constant is global — calibrated once against Table III and then
//! applied uniformly to all machines — so differences between design
//! points come only from their structure. `EXPERIMENTS.md` tabulates the
//! model's output against the paper's numbers.

use tta_isa::encoding;
use tta_model::{CoreStyle, DstConn, FuKind, Machine, SrcConn};

/// Estimated FPGA resources and timing for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Total core LUTs (including `lut_rf` and `lut_ic`).
    pub lut_core: u32,
    /// LUTs in the register files (logic + RAM).
    pub lut_rf: u32,
    /// LUTs used as distributed RAM (subset of `lut_rf`).
    pub lut_as_ram: u32,
    /// LUTs in the interconnect / operand routing.
    pub lut_ic: u32,
    /// Flip-flops.
    pub ff: u32,
    /// DSP blocks (the 32-bit multiplier).
    pub dsp: u32,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Slices (the Fig. 6 x-axis); approximated as LUTs / 4 like a typical
    /// 7-series packing.
    pub slices: u32,
}

// ---- calibration constants (fit once against Table III) ----

/// Distributed-RAM bits per LUT in the replicated multi-port construction.
const RAM_BITS_PER_LUT: f64 = 42.67;
/// LVT bookkeeping LUTs per register per extra write port.
const LVT_LUT_PER_REG_WRITE: f64 = 4.5;
/// LUT cost per mux input bit on a transport bus.
const BUS_MUX_LUT: f64 = 0.45 * 32.0;
/// LUT cost per mux input bit on an input socket.
const SOCKET_MUX_LUT: f64 = 0.18 * 32.0;
/// VLIW operand-routing LUTs per issue slot.
const VLIW_ROUTE_LUT: f64 = 220.0;
/// Extra VLIW routing per extra RF bank per slot.
const VLIW_BANK_LUT: f64 = 35.0;
/// Function-unit LUTs.
const ALU_LUT: u32 = 420;
const LSU_LUT: u32 = 200;
const CU_LUT: u32 = 150;
/// Decode LUTs per instruction bit.
const TTA_DECODE_PER_BIT: f64 = 1.2;
const VLIW_DECODE_PER_BIT: f64 = 2.0;
/// Flip-flop costs.
const ALU_FF: u32 = 250;
const LSU_FF: u32 = 150;
const CU_FF: u32 = 100;
const BUS_FF: u32 = 24;
const FF_PER_INSTR_BIT: f64 = 1.5;
const BANK_FF: u32 = 300;
/// Timing (ns).
const BASE_NS: f64 = 4.0;
const READ_PORT_NS: f64 = 0.25;
const WRITE_PORT_NS: f64 = 0.35;
const DEPTH_NS: f64 = 0.15;
const BUS_FANIN_NS: f64 = 0.12;
const SOCKET_FANIN_NS: f64 = 0.10;
const VLIW_SLOT_NS: f64 = 0.15;
const VLIW_DECODE_NS: f64 = 0.30;
const BANK_MUX_NS: f64 = 0.10;

fn log2c(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2().ceil()
    }
}

/// The published MicroBlaze figures (the paper measures the vendor core as
/// a black box, so we report its Table III numbers directly rather than
/// modelling closed RTL).
fn microblaze(m: &Machine) -> Resources {
    let five_stage = m.scalar.map(|p| p.stages >= 5).unwrap_or(false);
    let (lut, fmax, ff) = if five_stage {
        (829, 174.0, 582)
    } else {
        (715, 169.0, 303)
    };
    Resources {
        lut_core: lut,
        lut_rf: 128,
        lut_as_ram: 128,
        lut_ic: 0,
        ff,
        dsp: 3,
        fmax_mhz: fmax,
        slices: lut / 4 + 30,
    }
}

/// Register-file LUT costs: (total, as-RAM).
fn rf_luts(m: &Machine) -> (u32, u32) {
    let mut total = 0.0;
    let mut ram = 0.0;
    for rf in &m.rfs {
        let bits = rf.regs as f64 * rf.width as f64;
        let replicas = rf.read_ports as f64 * rf.write_ports as f64;
        let r = bits * replicas / RAM_BITS_PER_LUT;
        ram += r;
        total += r;
        if rf.write_ports > 1 {
            total += rf.regs as f64 * (rf.write_ports as f64 - 1.0) * LVT_LUT_PER_REG_WRITE;
        }
    }
    (total.round() as u32, ram.round() as u32)
}

/// Interconnect LUTs.
fn ic_luts(m: &Machine) -> u32 {
    match m.style {
        CoreStyle::Tta => {
            let mut cost = 0.0;
            // Bus multiplexers: one input per reachable source socket plus
            // the immediate field.
            for bus in &m.buses {
                let inputs = bus.sources.len() + 1;
                cost += (inputs.saturating_sub(1)) as f64 * BUS_MUX_LUT;
            }
            // Input-socket multiplexers: FU operand/trigger ports and RF
            // write ports select among their connected buses.
            let mut socket_inputs = 0usize;
            for f in m.fu_ids() {
                for conn in [DstConn::FuOperand(f), DstConn::FuTrigger(f)] {
                    let n = m.buses.iter().filter(|b| b.writes(conn)).count();
                    socket_inputs += n.saturating_sub(1);
                }
            }
            for r in m.rf_ids() {
                let n = m
                    .buses
                    .iter()
                    .filter(|b| b.writes(DstConn::RfWrite(r)))
                    .count();
                socket_inputs += n.saturating_sub(1);
            }
            cost += socket_inputs as f64 * SOCKET_MUX_LUT;
            cost.round() as u32
        }
        CoreStyle::Vliw => {
            let slots = m.slots.len() as f64;
            let banks = m.rfs.len() as f64;
            (slots * VLIW_ROUTE_LUT + (banks - 1.0) * slots * VLIW_BANK_LUT).round() as u32
        }
        CoreStyle::Scalar => 0,
    }
}

fn fu_luts(m: &Machine) -> u32 {
    m.funits
        .iter()
        .map(|f| match f.kind {
            FuKind::Alu => ALU_LUT,
            FuKind::Lsu => LSU_LUT,
            FuKind::Ctrl => CU_LUT,
        })
        .sum()
}

fn decode_luts(m: &Machine) -> u32 {
    let bits = encoding::instruction_bits(m) as f64;
    let per_bit = match m.style {
        CoreStyle::Tta => TTA_DECODE_PER_BIT,
        CoreStyle::Vliw => VLIW_DECODE_PER_BIT,
        CoreStyle::Scalar => 0.0,
    };
    (bits * per_bit).round() as u32
}

fn flip_flops(m: &Machine) -> u32 {
    let mut ff = 0u32;
    for f in &m.funits {
        ff += match f.kind {
            FuKind::Alu => ALU_FF,
            FuKind::Lsu => LSU_FF,
            FuKind::Ctrl => CU_FF,
        };
    }
    ff += m.buses.len() as u32 * BUS_FF;
    ff += (encoding::instruction_bits(m) as f64 * FF_PER_INSTR_BIT).round() as u32;
    ff += (m.rfs.len().saturating_sub(1)) as u32 * BANK_FF;
    ff
}

fn fmax(m: &Machine) -> f64 {
    let mut ns = BASE_NS;
    // Per-bank port complexity (the paper's headline timing effect).
    let max_r = m.rfs.iter().map(|r| r.read_ports).max().unwrap_or(1) as f64;
    let max_w = m.rfs.iter().map(|r| r.write_ports).max().unwrap_or(1) as f64;
    let max_depth = m.rfs.iter().map(|r| r.regs).max().unwrap_or(32) as f64;
    ns += (max_r - 1.0) * READ_PORT_NS;
    ns += (max_w - 1.0) * WRITE_PORT_NS;
    ns += (max_depth / 32.0).log2().max(0.0) * DEPTH_NS;
    match m.style {
        CoreStyle::Tta => {
            let bus_fanin = m
                .buses
                .iter()
                .map(|b| b.sources.len() + 1)
                .max()
                .unwrap_or(1);
            let socket_fanin = m
                .fu_ids()
                .map(|f| {
                    m.buses
                        .iter()
                        .filter(|b| b.writes(DstConn::FuTrigger(f)))
                        .count()
                })
                .max()
                .unwrap_or(1);
            ns += log2c(bus_fanin) * BUS_FANIN_NS;
            ns += log2c(socket_fanin) * SOCKET_FANIN_NS;
            // More readable sockets on one RF deepen its read decode.
            let rf_fanout = m
                .rf_ids()
                .map(|r| {
                    m.buses
                        .iter()
                        .filter(|b| b.reads(SrcConn::RfRead(r)))
                        .count()
                })
                .max()
                .unwrap_or(1);
            ns += log2c(rf_fanout) * 0.05;
        }
        CoreStyle::Vliw => {
            ns += m.slots.len() as f64 * VLIW_SLOT_NS;
            ns += VLIW_DECODE_NS;
            ns += (m.rfs.len() as f64 - 1.0) * BANK_MUX_NS;
        }
        CoreStyle::Scalar => {}
    }
    1000.0 / ns
}

/// Estimate the FPGA cost of a machine.
pub fn estimate(m: &Machine) -> Resources {
    if m.style == CoreStyle::Scalar {
        return microblaze(m);
    }
    let (lut_rf, lut_as_ram) = rf_luts(m);
    let lut_ic = ic_luts(m);
    let lut_core = lut_rf + lut_ic + fu_luts(m) + decode_luts(m);
    Resources {
        lut_core,
        lut_rf,
        lut_as_ram,
        lut_ic,
        ff: flip_flops(m),
        dsp: 3,
        fmax_mhz: fmax(m),
        slices: lut_core / 4 + 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    fn res(name: &str) -> Resources {
        estimate(&presets::by_name(name).unwrap())
    }

    #[test]
    fn rf_replication_matches_paper_closely() {
        // Table III LUT-as-RAM column.
        let cases = [
            ("m-tta-1", 24),
            ("m-vliw-2", 352),
            ("p-vliw-2", 96),
            ("m-tta-2", 48),
            ("p-tta-2", 48),
            ("m-vliw-3", 1056),
            ("p-vliw-3", 144),
            ("m-tta-3", 176),
            ("p-tta-3", 72),
            ("bm-tta-3", 72),
        ];
        for (name, paper) in cases {
            let got = res(name).lut_as_ram as f64;
            let ratio = got / paper as f64;
            assert!(
                (0.7..=1.4).contains(&ratio),
                "{name}: model {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn monolithic_vliw_rf_dominates() {
        // The paper: m-vliw-2 needs 6–14x more RF logic than the others;
        // m-vliw-3 9–27x.
        let v2 = res("m-vliw-2").lut_rf;
        for other in ["m-tta-2", "p-tta-2", "bm-tta-2", "p-vliw-2"] {
            assert!(v2 >= 6 * res(other).lut_rf, "{other}");
        }
        let v3 = res("m-vliw-3").lut_rf;
        for other in ["m-tta-3", "p-tta-3", "bm-tta-3", "p-vliw-3"] {
            assert!(v3 >= 8 * res(other).lut_rf, "{other}");
        }
    }

    #[test]
    fn core_totals_in_paper_neighbourhood() {
        // Table III core-LUT column, ±30%.
        let cases = [
            ("m-tta-1", 956),
            ("m-vliw-2", 1806),
            ("p-vliw-2", 1441),
            ("m-tta-2", 1208),
            ("p-tta-2", 1342),
            ("bm-tta-2", 1212),
            ("m-vliw-3", 3825),
            ("p-vliw-3", 2710),
            ("m-tta-3", 2399),
            ("p-tta-3", 2651),
            ("bm-tta-3", 2320),
        ];
        for (name, paper) in cases {
            let got = res(name).lut_core as f64;
            let ratio = got / paper as f64;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "{name}: model {got} vs paper {paper} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn tta_cores_smaller_than_their_vliw_counterparts() {
        assert!(res("m-tta-2").lut_core < res("m-vliw-2").lut_core);
        assert!(res("m-tta-3").lut_core < res("m-vliw-3").lut_core);
        assert!(res("bm-tta-2").lut_core < res("m-vliw-2").lut_core);
        assert!(res("bm-tta-3").lut_core < res("m-vliw-3").lut_core);
    }

    #[test]
    fn fmax_ordering_matches_paper() {
        // The monolithic VLIWs are the slowest of their class; partitioning
        // recovers frequency; TTA single-issue beats MicroBlaze.
        assert!(res("m-vliw-2").fmax_mhz < res("p-vliw-2").fmax_mhz);
        assert!(res("m-vliw-3").fmax_mhz < res("p-vliw-3").fmax_mhz);
        assert!(res("m-vliw-3").fmax_mhz < res("m-vliw-2").fmax_mhz);
        assert!(res("m-tta-1").fmax_mhz > res("mblaze-5").fmax_mhz);
        assert!(res("m-tta-2").fmax_mhz > res("m-vliw-2").fmax_mhz);
    }

    #[test]
    fn fmax_in_paper_neighbourhood() {
        let cases = [
            ("mblaze-3", 169.0),
            ("mblaze-5", 174.0),
            ("m-tta-1", 216.0),
            ("m-vliw-2", 176.0),
            ("p-vliw-2", 203.0),
            ("m-tta-2", 212.0),
            ("p-tta-2", 213.0),
            ("bm-tta-2", 212.0),
            ("m-vliw-3", 146.0),
            ("p-vliw-3", 194.0),
            ("m-tta-3", 167.0),
            ("p-tta-3", 197.0),
            ("bm-tta-3", 189.0),
        ];
        for (name, paper) in cases {
            let got = res(name).fmax_mhz;
            let ratio = got / paper;
            assert!(
                (0.75..=1.35).contains(&ratio),
                "{name}: model {got:.0} MHz vs paper {paper} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn all_use_three_dsps() {
        for m in presets::all_design_points() {
            assert_eq!(estimate(&m).dsp, 3, "{}", m.name);
        }
    }

    #[test]
    fn estimates_are_deterministic() {
        for m in presets::all_design_points() {
            assert_eq!(estimate(&m), estimate(&m));
        }
    }
}
