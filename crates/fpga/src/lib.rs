//! # tta-fpga — analytical FPGA resource and timing model
//!
//! Stands in for Vivado synthesis on the paper's Zynq Z7020 (speed grade
//! -1). The model maps each structural feature of a [`tta_model::Machine`]
//! to LUT / FF / LUT-as-RAM / DSP counts and a critical-path estimate,
//! with constants calibrated once against the published Table III
//! breakdowns and then held fixed for every design point — so the
//! *relative* movement between design points (the paper's argument) is
//! emergent, not fitted per machine.
//!
//! The key structural drivers, in the paper's order of importance:
//!
//! * **Register files** dominate: a distributed-RAM file replicates its
//!   storage once per read-port × write-port combination (the
//!   LaForest–Steffan construction the paper cites \[28\]), and
//!   multi-write files additionally pay live-value-table bookkeeping —
//!   this is why the monolithic VLIW RFs are 6–27x larger than the TTA
//!   ones in Table III.
//! * **Interconnect** muxing grows with socket fan-in (TTA) or per-slot
//!   operand routing (VLIW).
//! * **fmax** falls with RF port count and mux depth, which is what drags
//!   `m-vliw-3` down to ~146 MHz while the partitioned and TTA variants
//!   stay near 200 MHz.

#![warn(missing_docs)]

pub mod model;

pub use model::{estimate, Resources};
