//! # tta-testutil — deterministic randomised-testing helpers
//!
//! A tiny, dependency-free PRNG plus convenience samplers, shared by the
//! workspace's randomised tests and benches. Sequences are fully
//! determined by the seed, so every "random" test in the repository is
//! reproducible from its case number alone: run with the same seed and
//! you replay the exact failure.

#![warn(missing_docs)]

/// A small, fast, deterministic PRNG (xorshift64* with a splitmix64 seed
/// scrambler). Not cryptographic; statistical quality is plenty for test
/// input generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Distinct seeds — including
    /// consecutive integers — yield decorrelated streams.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
        // well-distributed initial states; xorshift must not start at 0.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 32-bit value, interpreted signed (full range).
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..hi` (half-open). `hi` must exceed `lo`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// A coin flip: true with probability `num`/`den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = Rng::new(7).vec(8, |r| r.next_u64());
        let b: Vec<u64> = Rng::new(7).vec(8, |r| r.next_u64());
        let c: Vec<u64> = Rng::new(8).vec(8, |r| r.next_u64());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn consecutive_seeds_decorrelate() {
        // First draws from seeds 0..64 should not collide (splitmix
        // scrambling); a raw xorshift seeded with small ints would.
        let firsts: Vec<u64> = (0..64).map(|s| Rng::new(s).next_u64()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len());
    }

    #[test]
    fn range_respects_both_bounds_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.range(10, 15);
            assert!((10..15).contains(&v), "{v} out of 10..15");
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in 10..15 reached");
        // Degenerate single-value range is fixed.
        assert_eq!(r.range(3, 4), 3);
    }

    #[test]
    fn chance_frequency_matches_the_ratio() {
        let mut r = Rng::new(123);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        // 1/4 of 10k draws, with generous slack for a non-crypto PRNG.
        assert!((2000..3000).contains(&hits), "1/4 chance hit {hits}/10000");
        let always = (0..100).all(|_| r.chance(5, 5));
        assert!(always, "chance(n, n) must always hit");
        let never = (0..100).any(|_| r.chance(0, 5));
        assert!(!never, "chance(0, n) must never hit");
    }

    #[test]
    fn next_bool_is_roughly_balanced() {
        let mut r = Rng::new(77);
        let trues = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4000..6000).contains(&trues), "bool balance: {trues}/10000");
    }

    #[test]
    fn stream_is_reproducible_from_the_case_number_alone() {
        // The fuzzing contract: a failing case is fully identified by its
        // seed. Re-creating the generator mid-suite — in another process,
        // after any number of unrelated draws elsewhere — replays the
        // identical stream.
        for case in [0u64, 1, 41, u64::MAX] {
            let mut burn = Rng::new(999);
            for _ in 0..17 {
                burn.next_u64(); // unrelated draws must not interfere
            }
            let first: Vec<u32> = Rng::new(case).vec(16, |r| r.next_u32());
            let replay: Vec<u32> = Rng::new(case).vec(16, |r| r.next_u32());
            assert_eq!(first, replay, "case {case} must replay exactly");
        }
    }

    #[test]
    fn clone_forks_the_stream_at_the_current_point() {
        let mut a = Rng::new(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn single_bit_seed_changes_decorrelate() {
        // Avalanche: flipping one seed bit must change the first draw.
        let base = Rng::new(0x0123_4567_89AB_CDEF).next_u64();
        for bit in 0..64 {
            let flipped = Rng::new(0x0123_4567_89AB_CDEFu64 ^ (1 << bit)).next_u64();
            assert_ne!(base, flipped, "seed bit {bit} did not change the stream");
        }
    }

    #[test]
    fn vec_has_the_requested_length_and_order() {
        let mut r = Rng::new(1);
        let v = r.vec(5, |r| r.below(1_000_000));
        assert_eq!(v.len(), 5);
        // Same seed, element-wise draws match the vec draws.
        let mut r2 = Rng::new(1);
        let w: Vec<usize> = (0..5).map(|_| r2.below(1_000_000)).collect();
        assert_eq!(v, w);
    }

    #[test]
    #[should_panic(expected = "Rng::below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
