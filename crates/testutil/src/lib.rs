//! # tta-testutil — deterministic randomised-testing helpers
//!
//! A tiny, dependency-free PRNG plus convenience samplers, shared by the
//! workspace's randomised tests and benches. Sequences are fully
//! determined by the seed, so every "random" test in the repository is
//! reproducible from its case number alone: run with the same seed and
//! you replay the exact failure.

#![warn(missing_docs)]

/// A small, fast, deterministic PRNG (xorshift64* with a splitmix64 seed
/// scrambler). Not cryptographic; statistical quality is plenty for test
/// input generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Distinct seeds — including
    /// consecutive integers — yield decorrelated streams.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
        // well-distributed initial states; xorshift must not start at 0.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 32-bit value, interpreted signed (full range).
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..hi` (half-open). `hi` must exceed `lo`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// A coin flip: true with probability `num`/`den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = Rng::new(7).vec(8, |r| r.next_u64());
        let b: Vec<u64> = Rng::new(7).vec(8, |r| r.next_u64());
        let c: Vec<u64> = Rng::new(8).vec(8, |r| r.next_u64());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn consecutive_seeds_decorrelate() {
        // First draws from seeds 0..64 should not collide (splitmix
        // scrambling); a raw xorshift seeded with small ints would.
        let firsts: Vec<u64> = (0..64).map(|s| Rng::new(s).next_u64()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len());
    }
}
