//! Sanity checks on the committed `BENCH_*.json` baselines: the CI gate
//! diffs fresh runs against these files, so a malformed or sandbagged
//! baseline would quietly neuter the gate.

use tta_obs::json::{parse, Json};

fn load(name: &str) -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("{name} must be committed at the repo root: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("{name} must parse: {e:?}"))
}

#[test]
fn search_baseline_meets_the_throughput_floor() {
    let j = load("BENCH_search.json");
    assert_eq!(
        j.get("bench").and_then(Json::as_str),
        Some("pareto_search"),
        "baseline names the search bench"
    );
    assert_eq!(
        j.get("threads").and_then(Json::as_f64),
        Some(1.0),
        "the committed baseline is a 1-thread run (comparable across hosts)"
    );
    let cps = j
        .get("configs_per_s")
        .and_then(Json::as_f64)
        .expect("configs_per_s present and numeric");
    assert!(
        cps >= 500.0,
        "search throughput floor: committed baseline reports {cps} configs/s, need >= 500"
    );
    // The workload keys the gate compares on must all be present.
    for key in ["configs", "generations", "seed", "kernels", "wall_s_median"] {
        assert!(
            j.get(key).and_then(Json::as_f64).is_some(),
            "baseline lacks workload key {key}"
        );
    }
}

#[test]
fn search_baseline_is_comparable_with_itself_under_the_gate() {
    let j = load("BENCH_search.json");
    let d = tta_bench::report::diff(&j, &j, 0.30).expect("self-diff is schema-clean");
    assert!(d.passed());
    assert!(
        d.lines.iter().any(|l| l.contains("configs_per_s")),
        "the throughput key is part of the gate summary: {:?}",
        d.lines
    );
}
