//! Micro-benchmarks of the compiler: how fast each backend schedules a
//! realistic kernel for representative design points.

use tta_bench::harness::Harness;
use tta_model::presets;

fn bench_compile(h: &mut Harness) {
    let module = (tta_chstone::by_name("gsm").unwrap().build)();
    let mut g = h.group("compile");
    g.sample_size(20);
    for machine in [
        presets::mblaze_3(),
        presets::m_vliw_2(),
        presets::m_tta_2(),
        presets::p_tta_3(),
        presets::bm_tta_2(),
    ] {
        g.bench(&format!("gsm/{}", machine.name), || {
            tta_compiler::compile(std::hint::black_box(&module), &machine)
                .expect("compiles")
                .program
                .len()
        });
    }
}

fn bench_passes(h: &mut Harness) {
    let module = (tta_chstone::by_name("aes").unwrap().build)();
    let mut g = h.group("passes");
    g.sample_size(30);
    g.bench("inline_aes", || {
        tta_compiler::inline::inline_module(std::hint::black_box(&module))
            .expect("inlines")
            .inst_count()
    });
    let flat = tta_compiler::inline::inline_module(&module).unwrap();
    let m = presets::m_tta_2();
    g.bench("regalloc_aes_on_m_tta_2", || {
        tta_compiler::regalloc::allocate(
            std::hint::black_box(&flat),
            &m,
            &[],
            module.mem_size - 4096,
        )
        .expect("allocates")
        .spilled
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_compile(&mut h);
    bench_passes(&mut h);
    h.finish();
}
