//! Criterion micro-benchmarks of the compiler: how fast each backend
//! schedules a realistic kernel for representative design points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tta_model::presets;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    let module = (tta_chstone::by_name("gsm").unwrap().build)();
    for machine in [
        presets::mblaze_3(),
        presets::m_vliw_2(),
        presets::m_tta_2(),
        presets::p_tta_3(),
        presets::bm_tta_2(),
    ] {
        g.bench_with_input(BenchmarkId::new("gsm", &machine.name), &machine, |b, m| {
            b.iter(|| {
                let compiled = tta_compiler::compile(std::hint::black_box(&module), m)
                    .expect("compiles");
                std::hint::black_box(compiled.program.len())
            })
        });
    }
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("passes");
    g.sample_size(30);
    let module = (tta_chstone::by_name("aes").unwrap().build)();
    g.bench_function("inline_aes", |b| {
        b.iter(|| {
            let f = tta_compiler::inline::inline_module(std::hint::black_box(&module))
                .expect("inlines");
            std::hint::black_box(f.inst_count())
        })
    });
    let flat = tta_compiler::inline::inline_module(&module).unwrap();
    g.bench_function("regalloc_aes_on_m_tta_2", |b| {
        let m = presets::m_tta_2();
        b.iter(|| {
            let a = tta_compiler::regalloc::allocate(
                std::hint::black_box(&flat),
                &m,
                &[],
                module.mem_size - 4096,
            )
            .expect("allocates");
            std::hint::black_box(a.spilled)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_passes);
criterion_main!(benches);
