//! Micro-benchmarks of the encoding and validation layer, plus the FPGA
//! estimation model.

use tta_bench::harness::Harness;
use tta_model::presets;

fn bench_encoding(h: &mut Harness) {
    let mut g = h.group("encoding");
    for machine in presets::all_design_points() {
        g.bench(&format!("instruction_bits/{}", machine.name), || {
            std::hint::black_box(tta_isa::encoding::instruction_bits(&machine))
        });
    }
}

fn bench_validate(h: &mut Harness) {
    let module = (tta_chstone::by_name("motion").unwrap().build)();
    let mut g = h.group("validate");
    g.sample_size(30);
    for machine in [presets::m_tta_2(), presets::m_vliw_2()] {
        let compiled = tta_compiler::compile(&module, &machine).unwrap();
        g.bench(&format!("motion/{}", machine.name), || {
            compiled
                .program
                .validate(std::hint::black_box(&machine))
                .is_ok()
        });
    }
}

fn bench_fpga_model(h: &mut Harness) {
    let mut g = h.group("fpga_estimate");
    for machine in [presets::m_tta_3(), presets::m_vliw_3()] {
        g.bench(&machine.name.clone(), || {
            std::hint::black_box(tta_fpga::estimate(&machine))
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_encoding(&mut h);
    bench_validate(&mut h);
    bench_fpga_model(&mut h);
    h.finish();
}
