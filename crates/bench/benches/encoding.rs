//! Criterion micro-benchmarks of the encoding and validation layer, plus
//! the FPGA estimation model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tta_model::presets;

fn bench_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    for machine in presets::all_design_points() {
        g.bench_with_input(
            BenchmarkId::new("instruction_bits", &machine.name),
            &machine,
            |b, m| b.iter(|| std::hint::black_box(tta_isa::encoding::instruction_bits(m))),
        );
    }
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    g.sample_size(30);
    let module = (tta_chstone::by_name("motion").unwrap().build)();
    for machine in [presets::m_tta_2(), presets::m_vliw_2()] {
        let compiled = tta_compiler::compile(&module, &machine).unwrap();
        g.bench_with_input(
            BenchmarkId::new("motion", &machine.name),
            &(machine, compiled),
            |b, (m, compiled)| {
                b.iter(|| compiled.program.validate(std::hint::black_box(m)).is_ok())
            },
        );
    }
    g.finish();
}

fn bench_fpga_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpga_estimate");
    for machine in [presets::m_tta_3(), presets::m_vliw_3()] {
        g.bench_with_input(BenchmarkId::from_parameter(&machine.name), &machine, |b, m| {
            b.iter(|| std::hint::black_box(tta_fpga::estimate(m)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encoding, bench_validate, bench_fpga_model);
criterion_main!(benches);
