//! Criterion micro-benchmarks of the cycle-accurate simulators: simulated
//! cycles per second of host time for each programming model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tta_model::presets;

fn bench_simulators(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(20);
    let kernel = tta_chstone::by_name("sha").unwrap();
    let module = (kernel.build)();
    for machine in [presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()] {
        let compiled = tta_compiler::compile(&module, &machine).unwrap();
        let memory = module.initial_memory();
        // Report throughput in simulated cycles.
        let cycles = tta_sim::run(&machine, &compiled.program, memory.clone())
            .unwrap()
            .cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(
            BenchmarkId::new("sha", &machine.name),
            &(machine, compiled, memory),
            |b, (m, compiled, memory)| {
                b.iter(|| {
                    let r = tta_sim::run(m, &compiled.program, memory.clone())
                        .expect("runs");
                    std::hint::black_box(r.cycles)
                })
            },
        );
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(20);
    let module = (tta_chstone::by_name("sha").unwrap().build)();
    g.bench_function("sha_golden_model", |b| {
        b.iter(|| {
            let r = tta_ir::interp::Interpreter::new(std::hint::black_box(&module))
                .run(&[])
                .expect("runs");
            std::hint::black_box(r.ret)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulators, bench_interpreter);
criterion_main!(benches);
