//! Micro-benchmarks of the cycle-accurate simulators: simulated cycles per
//! second of host time for each programming model, plus the predecode
//! overhead and the golden-model interpreter for comparison.

use tta_bench::harness::Harness;
use tta_model::presets;

fn bench_simulators(h: &mut Harness) {
    // sha exercises tight ALU loops, aes wide straight-line code, adpcm
    // the deepest call tree — together they cover the decoded-program
    // shapes the simulators see in the full evaluation.
    for name in ["sha", "aes", "adpcm"] {
        let kernel = tta_chstone::by_name(name).unwrap();
        let module = (kernel.build)();
        for machine in [presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()] {
            let compiled = tta_compiler::compile(&module, &machine).unwrap();
            let memory = module.initial_memory();
            // Report throughput in simulated cycles.
            let cycles = tta_sim::run(&machine, &compiled.program, memory.clone())
                .unwrap()
                .cycles;
            let mut g = h.group("simulate");
            g.sample_size(20)
                .throughput(cycles)
                .bench(&format!("{name}/{}", machine.name), || {
                    tta_sim::run(&machine, &compiled.program, memory.clone())
                        .expect("runs")
                        .cycles
                });
        }
    }
}

fn bench_interpreter(h: &mut Harness) {
    let module = (tta_chstone::by_name("sha").unwrap().build)();
    h.group("interpreter")
        .sample_size(20)
        .bench("sha_golden_model", || {
            tta_ir::interp::Interpreter::new(std::hint::black_box(&module))
                .run(&[])
                .expect("runs")
                .ret
        });
}

fn main() {
    let mut h = Harness::from_args();
    bench_simulators(&mut h);
    bench_interpreter(&mut h);
    h.finish();
}
