//! Criterion benchmark of the end-to-end pipeline (one bench per paper
//! table/figure *generator*): how long each artefact of the evaluation
//! takes to regenerate on a reduced kernel set, plus the full
//! per-design-point flow for the two headline machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tta_model::presets;

fn small_reports() -> Vec<tta_explore::MachineReport> {
    let kernels: Vec<_> = ["gsm", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).unwrap())
        .collect();
    tta_explore::evaluate(&presets::all_design_points(), &kernels)
}

fn bench_tables_and_figures(c: &mut Criterion) {
    let reports = small_reports();
    let mut g = c.benchmark_group("artefacts");
    g.sample_size(20);
    g.bench_function("table2", |b| {
        b.iter(|| std::hint::black_box(tta_explore::tables::table2(&reports).len()))
    });
    g.bench_function("table3", |b| {
        b.iter(|| std::hint::black_box(tta_explore::tables::table3(&reports).len()))
    });
    g.bench_function("table4", |b| {
        b.iter(|| std::hint::black_box(tta_explore::tables::table4(&reports).len()))
    });
    g.bench_function("fig5", |b| {
        b.iter(|| std::hint::black_box(tta_explore::figures::fig5(&reports).len()))
    });
    g.bench_function("fig6", |b| {
        b.iter(|| std::hint::black_box(tta_explore::figures::fig6(&reports).len()))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let kernel = tta_chstone::by_name("gsm").unwrap();
    for machine in [presets::m_tta_2(), presets::m_vliw_2()] {
        g.bench_with_input(
            BenchmarkId::new("gsm_compile_and_run", &machine.name),
            &machine,
            |b, m| {
                b.iter(|| {
                    let run = tta_explore::eval::run_kernel(&kernel, m);
                    std::hint::black_box(run.cycles)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tables_and_figures, bench_end_to_end);
criterion_main!(benches);
