//! Benchmark of the end-to-end pipeline (one bench per paper table/figure
//! *generator*): how long each artefact of the evaluation takes to
//! regenerate on a reduced kernel set, plus the full per-design-point flow
//! for the two headline machines.

use tta_bench::harness::Harness;
use tta_model::presets;

fn small_reports() -> Vec<tta_explore::MachineReport> {
    let kernels: Vec<_> = ["gsm", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).unwrap())
        .collect();
    tta_explore::evaluate(&presets::all_design_points(), &kernels)
}

fn bench_tables_and_figures(h: &mut Harness) {
    let reports = small_reports();
    let mut g = h.group("artefacts");
    g.sample_size(20);
    g.bench("table2", || tta_explore::tables::table2(&reports).len());
    g.bench("table3", || tta_explore::tables::table3(&reports).len());
    g.bench("table4", || tta_explore::tables::table4(&reports).len());
    g.bench("fig5", || tta_explore::figures::fig5(&reports).len());
    g.bench("fig6", || tta_explore::figures::fig6(&reports).len());
}

fn bench_end_to_end(h: &mut Harness) {
    let kernel = tta_chstone::by_name("gsm").unwrap();
    let mut g = h.group("end_to_end");
    g.sample_size(10);
    for machine in [presets::m_tta_2(), presets::m_vliw_2()] {
        g.bench(&format!("gsm_compile_and_run/{}", machine.name), || {
            tta_explore::eval::run_kernel(&kernel, &machine).cycles
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_tables_and_figures(&mut h);
    bench_end_to_end(&mut h);
    h.finish();
}
