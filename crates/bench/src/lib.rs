//! # tta-bench — benchmark harness and table/figure reproduction
//!
//! * `cargo run --release -p tta-bench --bin table1..table4 | fig5 | fig6`
//!   regenerates the corresponding table/figure of the paper from a full
//!   evaluation (all thirteen design points, all eight kernels).
//! * `cargo run --release -p tta-bench --bin repro` prints everything in
//!   one pass (used to fill `EXPERIMENTS.md`).
//! * `cargo run --release -p tta-bench --bin bench_eval` times the full
//!   evaluation pipeline and writes `BENCH_eval.json` (the perf
//!   trajectory tracked in `EXPERIMENTS.md`).
//! * `cargo run --release -p tta-bench --bin bench_serve` load-tests the
//!   batch simulation server over real sockets and writes
//!   `BENCH_serve.json` (throughput plus p50/p99 per-job latency).
//! * `cargo bench` runs the micro-benchmarks of the toolchain itself
//!   (scheduler, simulator, encoder, end-to-end pipeline) on the local
//!   [`harness`].

#![warn(missing_docs)]

pub mod harness;
pub mod report;

use tta_explore::MachineReport;

/// Run the full evaluation once (13 machines x 8 kernels).
pub fn full_evaluation() -> Vec<MachineReport> {
    tta_explore::evaluate_all()
}

/// A small subset evaluation for fast smoke tests.
pub fn quick_evaluation() -> Vec<MachineReport> {
    let machines = vec![
        tta_model::presets::mblaze_3(),
        tta_model::presets::m_vliw_2(),
        tta_model::presets::m_tta_2(),
    ];
    let kernels: Vec<_> = ["sha", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).expect("kernel"))
        .collect();
    tta_explore::evaluate(&machines, &kernels)
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_evaluation_works() {
        let r = super::quick_evaluation();
        assert_eq!(r.len(), 3);
    }
}
