//! Regenerate every table and figure of the paper in one pass.
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::tables::table1());
    println!("{}", tta_explore::tables::table2(&reports));
    println!("{}", tta_explore::tables::table3(&reports));
    println!("{}", tta_explore::tables::table4(&reports));
    println!("{}", tta_explore::figures::fig5(&reports));
    println!("{}", tta_explore::figures::fig6(&reports));
}
