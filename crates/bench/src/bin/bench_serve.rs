//! Load-tests the batch simulation server end to end — real sockets, real
//! NDJSON streaming — and writes `BENCH_serve.json` so serving throughput
//! and per-job latency are tracked in-repo from PR to PR.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_serve [reps]`
//! (default 3 repetitions). Each rep posts one 1000-job mixed batch —
//! the 13 design points × 8 CHStone kernels repeated round-robin — to an
//! in-process `tta-serve` instance and timestamps every report line on
//! arrival. The JSON carries `jobs_per_s` plus `p50_ms`/`p99_ms` per-job
//! latencies, all gated by `bench_report` in the CI `serve-gate` job.
//!
//! The same latencies also feed a local log₂ [`obs::hist::HistStat`] as a
//! cross-check of the telemetry pipeline: the histogram-derived p50/p99
//! must land in the same log₂ bucket as the exact sorted percentiles, and
//! both are recorded (`hist_p50_ms`/`hist_p99_ms`, schema-checked but
//! ungated — bucket bounds double at boundaries).

use std::time::Duration;

use tta_obs as obs;
use tta_obs::json::Json;
use tta_serve::{client, schema, Server, ServerConfig};

/// Total jobs per batch; a workload key, so CI and the committed baseline
/// must agree on it.
const JOBS: usize = 1000;

const TIMEOUT: Duration = Duration::from_secs(600);

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

/// Nearest-rank percentile of a sorted sample, `q` in (0, 1].
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Post one batch; returns (wall seconds, per-job latencies in ms).
fn run_batch(addr: std::net::SocketAddr, body: &str) -> (f64, Vec<f64>) {
    let resp = client::post_streaming(addr, "/v1/batch", body, TIMEOUT).expect("post /v1/batch");
    assert_eq!(resp.status, 200, "batch rejected: {:?}", resp.lines.first());
    let summary = resp.lines.last().expect("summary line");
    let doc = tta_obs::json::parse(&summary.text).expect("summary parses");
    assert_eq!(
        doc.get("ok").and_then(Json::as_f64),
        Some(JOBS as f64),
        "not all jobs succeeded: {}",
        summary.text
    );
    let wall_s = summary.at.as_secs_f64();
    let latencies_ms: Vec<f64> = resp.lines[..resp.lines.len() - 1]
        .iter()
        .map(|l| l.at.as_secs_f64() * 1e3)
        .collect();
    (wall_s, latencies_ms)
}

fn main() {
    tta_obs::init_from_env();
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    let machines = tta_model::presets::all_design_points();
    let kernels = tta_chstone::all_kernels();
    let pairs: Vec<schema::JobSpec> = machines
        .iter()
        .flat_map(|m| {
            kernels.iter().map(|k| schema::JobSpec {
                machine: m.name.clone(),
                kernel: k.name.to_string(),
            })
        })
        .collect();
    let jobs: Vec<schema::JobSpec> = pairs.iter().cycle().take(JOBS).cloned().collect();
    let body = schema::batch_to_json(&jobs, None).to_compact();

    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let threads = server.sim_threads();

    // Warm-up batch: compiles all distinct pairs into the shared cache so
    // rep timings measure steady-state serving, not first-touch compiles.
    run_batch(addr, &body);

    let mut walls_s: Vec<f64> = Vec::with_capacity(reps);
    let mut latencies_ms: Vec<f64> = Vec::new();
    for _ in 0..reps {
        let (wall, lats) = run_batch(addr, &body);
        walls_s.push(wall);
        latencies_ms.extend(lats);
    }
    walls_s.sort_by(|a, b| a.total_cmp(b));
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let min = walls_s[0];
    let median = walls_s[walls_s.len() / 2];
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);
    server.shutdown();

    // Cross-check the log₂ histogram against the exact percentiles: feed
    // the same latencies (as µs) into a local HistStat and require its
    // nearest-rank quantiles to land in the same log₂ bucket as the exact
    // sorted values — the telemetry pipeline must agree with ground truth
    // to within one bucket width.
    let lat_us: Vec<u64> = latencies_ms.iter().map(|ms| (ms * 1e3) as u64).collect();
    let mut hist = obs::hist::HistStat::new("bench.serve.latency_us");
    for &us in &lat_us {
        hist.observe(us);
    }
    let check = |q: f64, exact_ms: f64, label: &str| -> f64 {
        let bound_us = hist.quantile(q).expect("histogram is non-empty");
        let exact_us = (exact_ms * 1e3) as u64;
        let (hb, eb) = (
            obs::hist::bucket_index(bound_us),
            obs::hist::bucket_index(exact_us),
        );
        assert!(
            hb.abs_diff(eb) <= 1,
            "{label}: histogram quantile {bound_us}µs (bucket {hb}) disagrees with \
             exact {exact_us}µs (bucket {eb}) by more than one bucket"
        );
        bound_us as f64 / 1e3
    };
    let hist_p50_ms = check(0.50, p50, "p50");
    let hist_p99_ms = check(0.99, p99, "p99");

    // Single-threaded runs are not comparable against multi-core baselines;
    // flag them loudly in both the log and the JSON so `bench_report`
    // consumers can tell the configurations apart.
    let threads_warning = threads <= 1;
    if threads_warning {
        eprintln!(
            "WARNING: the server ran on 1 simulation thread (TTA_EVAL_THREADS or a \
             single-core host); throughput and latency numbers are not \
             comparable to multi-threaded baselines"
        );
    }
    let mut fields = vec![
        ("bench".into(), Json::Str("serve_batch".into())),
        ("machines".into(), Json::Num(machines.len() as f64)),
        ("kernels".into(), Json::Num(kernels.len() as f64)),
        ("jobs".into(), Json::Num(JOBS as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        ("jobs_per_s".into(), Json::Num(round(JOBS as f64 / min, 2))),
        ("p50_ms".into(), Json::Num(round(p50, 3))),
        ("p99_ms".into(), Json::Num(round(p99, 3))),
        ("hist_p50_ms".into(), Json::Num(round(hist_p50_ms, 3))),
        ("hist_p99_ms".into(), Json::Num(round(hist_p99_ms, 3))),
        ("threads".into(), Json::Num(threads as f64)),
    ];
    if threads_warning {
        fields.push((
            "threads_warning".into(),
            Json::Str("single-threaded run; not comparable to multi-core baselines".into()),
        ));
    }
    fields.push(("obs".into(), tta_bench::harness::obs_report_json()));
    let json = Json::Obj(fields);
    let text = json.to_pretty();
    std::fs::write("BENCH_serve.json", &text).expect("write BENCH_serve.json");
    print!("{text}");
    eprintln!(
        "wrote BENCH_serve.json ({JOBS} jobs, min {min:.3}s, median {median:.3}s, \
         p50 {p50:.1}ms, p99 {p99:.1}ms)"
    );
}
