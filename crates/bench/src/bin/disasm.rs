//! Disassemble a kernel compiled for a design point.
//!
//!     cargo run --release -p tta-bench --bin disasm -- sha m-tta-2

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel_name = args.get(1).map(String::as_str).unwrap_or("sha");
    let machine_name = args.get(2).map(String::as_str).unwrap_or("m-tta-2");
    let kernel =
        tta_chstone::by_name(kernel_name).unwrap_or_else(|| panic!("unknown kernel {kernel_name}"));
    let machine = tta_model::presets::by_name(machine_name)
        .unwrap_or_else(|| panic!("unknown design point {machine_name}"));
    let module = (kernel.build)();
    let compiled = tta_compiler::compile(&module, &machine).expect("compiles");
    println!(
        "; {kernel_name} on {machine_name}: {} instructions, {} bits each",
        compiled.program.len(),
        tta_isa::encoding::instruction_bits(&machine)
    );
    print!("{}", compiled.listing());
}
