//! Times the differential fuzzing pipeline (generate → interpret →
//! compile + simulate on all 13 design points) over a fixed seed range
//! and writes `BENCH_fuzz.json`, so fuzz throughput is tracked in-repo
//! from PR to PR alongside the evaluation-pipeline numbers.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_fuzz [seeds] [reps]`
//! (default 100 seeds, 3 repetitions; reports min and median). The file
//! embeds the observability run report under the `"obs"` key;
//! `bench_report` diffs two such files in CI.

use std::time::Instant;

use tta_fuzz::gen::{generate, GenConfig};
use tta_fuzz::oracle::Oracle;
use tta_obs::json::Json;

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

fn main() {
    tta_obs::init_from_env();
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let oracle = Oracle::all_presets();
    let cfg = GenConfig::default();

    let run_once = || -> (u64, u64, u64) {
        let (mut insts, mut cycles, mut divergences) = (0u64, 0u64, 0u64);
        for seed in 0..seeds {
            let module = generate(seed, &cfg);
            match oracle.check(&module) {
                Ok(report) => {
                    insts += report.golden_insts;
                    cycles += report.runs.iter().map(|r| r.cycles).sum::<u64>();
                }
                Err(_) => divergences += 1,
            }
        }
        (insts, cycles, divergences)
    };

    // Warm-up: touches every code path once so rep timings measure the
    // steady-state pipeline.
    let (insts, cycles, divergences) = run_once();

    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(run_once());
        totals_s.push(t.elapsed().as_secs_f64());
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("fuzz_differential".into())),
        ("seeds".into(), Json::Num(seeds as f64)),
        ("machines".into(), Json::Num(oracle.machines.len() as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        (
            "cases_per_s".into(),
            Json::Num(round(seeds as f64 / min, 2)),
        ),
        ("golden_insts".into(), Json::Num(insts as f64)),
        ("sim_cycles".into(), Json::Num(cycles as f64)),
        (
            "sim_cycles_per_s".into(),
            Json::Num(round(cycles as f64 / min, 0)),
        ),
        ("divergences".into(), Json::Num(divergences as f64)),
        ("obs".into(), tta_bench::harness::obs_report_json()),
    ]);
    let text = json.to_pretty();
    std::fs::write("BENCH_fuzz.json", &text).expect("write BENCH_fuzz.json");
    print!("{text}");
    eprintln!("wrote BENCH_fuzz.json ({seeds} seeds, min {min:.3}s, median {median:.3}s)");
}
