//! Times the differential fuzzing pipeline (generate → interpret →
//! compile + simulate on all 13 design points) over a fixed seed range
//! and writes `BENCH_fuzz.json`, so fuzz throughput is tracked in-repo
//! from PR to PR alongside the evaluation-pipeline numbers.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_fuzz [seeds] [reps]`
//! (default 100 seeds, 3 repetitions; reports min and median).

use std::time::Instant;

use tta_fuzz::gen::{generate, GenConfig};
use tta_fuzz::oracle::Oracle;

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let oracle = Oracle::all_presets();
    let cfg = GenConfig::default();

    let run_once = || -> (u64, u64, u64) {
        let (mut insts, mut cycles, mut divergences) = (0u64, 0u64, 0u64);
        for seed in 0..seeds {
            let module = generate(seed, &cfg);
            match oracle.check(&module) {
                Ok(report) => {
                    insts += report.golden_insts;
                    cycles += report.runs.iter().map(|r| r.cycles).sum::<u64>();
                }
                Err(_) => divergences += 1,
            }
        }
        (insts, cycles, divergences)
    };

    // Warm-up: touches every code path once so rep timings measure the
    // steady-state pipeline.
    let (insts, cycles, divergences) = run_once();

    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(run_once());
        totals_s.push(t.elapsed().as_secs_f64());
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    let json = format!(
        "{{\n  \"bench\": \"fuzz_differential\",\n  \"seeds\": {seeds},\n  \"machines\": {},\n  \"reps\": {reps},\n  \"wall_s_min\": {min:.6},\n  \"wall_s_median\": {median:.6},\n  \"cases_per_s\": {:.2},\n  \"golden_insts\": {insts},\n  \"sim_cycles\": {cycles},\n  \"sim_cycles_per_s\": {:.0},\n  \"divergences\": {divergences}\n}}\n",
        oracle.machines.len(),
        seeds as f64 / min,
        cycles as f64 / min,
    );
    std::fs::write("BENCH_fuzz.json", &json).expect("write BENCH_fuzz.json");
    print!("{json}");
    eprintln!("wrote BENCH_fuzz.json ({seeds} seeds, min {min:.3}s, median {median:.3}s)");
}
