//! Regenerate Table 2 of the paper.
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::tables::table2(&reports));
}
