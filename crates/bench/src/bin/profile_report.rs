//! Regenerates the microarchitectural profile report: per-bus/per-FU
//! utilization, RF port-pressure histograms and bypass ratios for the
//! CHStone kernels across the design points, plus an optional Perfetto
//! trace of one run.
//!
//! Usage:
//! ```text
//! profile_report [--machine NAME]... [--kernel NAME]... \
//!                [--json FILE] [--markdown FILE] [--trace FILE] \
//!                [--bucket N] [--check]
//! ```
//!
//! With no machine/kernel flags the full 13-machine × 8-kernel sweep
//! runs. `--json`/`--markdown` write the versioned report
//! (`profile_version: 1`) and the utilization table; with neither, the
//! table prints to stdout. `--trace` renders the first selected machine ×
//! first selected kernel as a Chrome trace-event file (open in
//! ui.perfetto.dev), averaging `--bucket` cycles (default 64) per counter
//! sample. `--check` re-validates the emitted JSON against the schema.
//! Exit codes: 0 = ok, 2 = usage error or schema violation.

use std::process::ExitCode;

use tta_chstone::Kernel;
use tta_explore::{profile, report_json, trace_json, utilization_markdown, validate_report};
use tta_model::Machine;

struct Args {
    machines: Vec<String>,
    kernels: Vec<String>,
    json: Option<String>,
    markdown: Option<String>,
    trace: Option<String>,
    bucket: u64,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        machines: Vec::new(),
        kernels: Vec::new(),
        json: None,
        markdown: None,
        trace: None,
        bucket: 64,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--machine" => args.machines.push(value("--machine")?),
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--json" => args.json = Some(value("--json")?),
            "--markdown" => args.markdown = Some(value("--markdown")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--bucket" => {
                let v = value("--bucket")?;
                args.bucket = v
                    .parse()
                    .map_err(|_| format!("--bucket: not a number: {v}"))?;
            }
            "--check" => args.check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: profile_report [--machine NAME]... [--kernel NAME]... \
                     [--json FILE] [--markdown FILE] [--trace FILE] [--bucket N] [--check]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    Ok(args)
}

fn selected_machines(names: &[String]) -> Result<Vec<Machine>, String> {
    if names.is_empty() {
        return Ok(tta_model::presets::all_design_points());
    }
    names
        .iter()
        .map(|n| tta_model::presets::by_name(n).ok_or_else(|| format!("unknown machine {n}")))
        .collect()
}

fn selected_kernels(names: &[String]) -> Result<Vec<Kernel>, String> {
    if names.is_empty() {
        return Ok(tta_chstone::all_kernels());
    }
    names
        .iter()
        .map(|n| tta_chstone::by_name(n).ok_or_else(|| format!("unknown kernel {n}")))
        .collect()
}

fn run(args: &Args) -> Result<(), String> {
    let machines = selected_machines(&args.machines)?;
    let kernels = selected_kernels(&args.kernels)?;

    // The trace exporter folds host obs spans in; enable obs so the
    // profile run itself populates them.
    tta_obs::set_enabled(true);
    tta_obs::reset();

    let report = profile(&machines, &kernels);
    let json = report_json(&report);
    validate_report(&json).map_err(|e| format!("emitted report is invalid: {e}"))?;

    if let Some(path) = &args.json {
        std::fs::write(path, json.to_pretty()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("profile_report: wrote {path}");
    }
    let md = utilization_markdown(&report);
    if let Some(path) = &args.markdown {
        std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("profile_report: wrote {path}");
    }
    if args.json.is_none() && args.markdown.is_none() {
        print!("{md}");
    }

    if let Some(path) = &args.trace {
        let trace = trace_json(&machines[0], &kernels[0], args.bucket);
        std::fs::write(path, trace.to_pretty()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "profile_report: wrote {path} ({} on {}; open in ui.perfetto.dev)",
            kernels[0].name, machines[0].name
        );
    }

    if args.check {
        if let Some(path) = &args.json {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let parsed = tta_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            validate_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
        }
        eprintln!("profile_report: schema check passed");
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profile_report: {e}");
            ExitCode::from(2)
        }
    }
}
