//! Regenerate Fig. 6 of the paper (performance/area scatter).
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::figures::fig6(&reports));
}
