//! Times the full evaluation pipeline (`evaluate_all`: 13 design points ×
//! 8 kernels, compile + simulate + verify) and writes `BENCH_eval.json`
//! so the performance trajectory is tracked in-repo from PR to PR.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_eval [reps]`
//! (default 5 repetitions; reports min and median, writes JSON to the
//! working directory). The file embeds the observability run report under
//! the `"obs"` key; `bench_report` diffs two such files in CI.

use std::time::Instant;

use tta_obs::json::Json;

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

fn main() {
    tta_obs::init_from_env();
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    // Warm-up run: faults in the kernel IR builders and touches the page
    // cache so rep timings measure the pipeline, not first-run effects.
    let reports = tta_bench::full_evaluation();
    let pairs: usize = reports.iter().map(|r| r.runs.len()).sum();

    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let r = tta_bench::full_evaluation();
        std::hint::black_box(&r);
        totals_s.push(t.elapsed().as_secs_f64());
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    let timing = tta_explore::eval::last_timing();
    // Single-threaded runs are not comparable against multi-core baselines;
    // flag them loudly in both the log and the JSON so `bench_report`
    // consumers can tell the configurations apart.
    let threads_warning = timing.threads <= 1;
    if threads_warning {
        eprintln!(
            "WARNING: evaluate_all ran on 1 worker thread (TTA_EVAL_THREADS or a \
             single-core host); wall-clock numbers are not comparable to \
             multi-threaded baselines"
        );
    }
    let mut fields = vec![
        ("bench".into(), Json::Str("evaluate_all".into())),
        ("machines".into(), Json::Num(reports.len() as f64)),
        (
            "kernels".into(),
            Json::Num(reports.first().map_or(0, |r| r.runs.len()) as f64),
        ),
        ("pairs".into(), Json::Num(pairs as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        (
            "pairs_per_s".into(),
            Json::Num(round(pairs as f64 / min, 2)),
        ),
        (
            "stages_s".into(),
            Json::Obj(vec![
                ("build_ir".into(), Json::Num(round(timing.build_ir_s, 6))),
                (
                    "golden_interp".into(),
                    Json::Num(round(timing.golden_interp_s, 6)),
                ),
                ("compile".into(), Json::Num(round(timing.compile_s, 6))),
                ("simulate".into(), Json::Num(round(timing.simulate_s, 6))),
                (
                    "verify_estimate".into(),
                    Json::Num(round(timing.verify_estimate_s, 6)),
                ),
            ]),
        ),
        ("threads".into(), Json::Num(timing.threads as f64)),
    ];
    if threads_warning {
        fields.push((
            "threads_warning".into(),
            Json::Str("single-threaded run; not comparable to multi-core baselines".into()),
        ));
    }
    fields.push(("obs".into(), tta_bench::harness::obs_report_json()));
    let json = Json::Obj(fields);
    let text = json.to_pretty();
    std::fs::write("BENCH_eval.json", &text).expect("write BENCH_eval.json");
    print!("{text}");
    eprintln!("wrote BENCH_eval.json ({pairs} pairs, min {min:.3}s, median {median:.3}s)");
}
