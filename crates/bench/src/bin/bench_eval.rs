//! Times the full evaluation pipeline (`evaluate_all`: 13 design points ×
//! 8 kernels, compile + simulate + verify) and writes `BENCH_eval.json`
//! so the performance trajectory is tracked in-repo from PR to PR.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_eval [reps]`
//! (default 5 repetitions; reports min and median, writes JSON to the
//! working directory).

use std::time::Instant;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    // Warm-up run: faults in the kernel IR builders and touches the page
    // cache so rep timings measure the pipeline, not first-run effects.
    let reports = tta_bench::full_evaluation();
    let pairs: usize = reports.iter().map(|r| r.runs.len()).sum();

    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let r = tta_bench::full_evaluation();
        std::hint::black_box(&r);
        totals_s.push(t.elapsed().as_secs_f64());
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    let timing = tta_explore::eval::last_timing();
    let json = format!(
        "{{\n  \"bench\": \"evaluate_all\",\n  \"machines\": {},\n  \"kernels\": {},\n  \"pairs\": {},\n  \"reps\": {},\n  \"wall_s_min\": {min:.6},\n  \"wall_s_median\": {median:.6},\n  \"pairs_per_s\": {:.2},\n  \"stages_s\": {{\n    \"build_ir\": {:.6},\n    \"golden_interp\": {:.6},\n    \"compile\": {:.6},\n    \"simulate\": {:.6},\n    \"verify_estimate\": {:.6}\n  }},\n  \"threads\": {}\n}}\n",
        reports.len(),
        reports.first().map_or(0, |r| r.runs.len()),
        pairs,
        reps,
        pairs as f64 / min,
        timing.build_ir_s,
        timing.golden_interp_s,
        timing.compile_s,
        timing.simulate_s,
        timing.verify_estimate_s,
        timing.threads,
    );
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    print!("{json}");
    eprintln!("wrote BENCH_eval.json ({pairs} pairs, min {min:.3}s, median {median:.3}s)");
}
