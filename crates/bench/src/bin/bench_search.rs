//! Times the Pareto design-space search (`tta_explore::search` with its
//! default funnel parameters over the full kernel suite) and writes
//! `BENCH_search.json` so search throughput is tracked in-repo from PR
//! to PR.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_search [reps]`
//! (default 3 repetitions; reports min and median wall time plus the
//! headline `configs_per_s` — unique configs through the staged funnel
//! per second — which CI gates as a higher-is-better metric). Runs are
//! pinned to one worker thread so numbers are comparable across hosts;
//! the warm-up rep also fills the process-wide compile cache, putting
//! the timed reps in the steady state a long-running search sees.

use std::time::Instant;

use tta_explore::search::search;
use tta_explore::SearchParams;
use tta_obs::json::Json;

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

fn main() {
    tta_obs::init_from_env();
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    let params = SearchParams {
        threads: 1,
        ..SearchParams::default()
    };

    // Warm-up: faults in kernel IR builders and fills the compile cache.
    let warm = search(&params);

    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    let mut last = warm;
    for _ in 0..reps {
        let t = Instant::now();
        last = search(&params);
        std::hint::black_box(&last.frontier);
        totals_s.push(t.elapsed().as_secs_f64());
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];
    let configs = last.stats.configs;
    let configs_per_s = configs as f64 / median;

    let fields = vec![
        ("bench".into(), Json::Str("pareto_search".into())),
        ("kernels".into(), Json::Num(8.0)),
        ("configs".into(), Json::Num(configs as f64)),
        ("generations".into(), Json::Num(params.generations as f64)),
        ("seed".into(), Json::Num(params.seed as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        ("threads".into(), Json::Num(1.0)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        ("configs_per_s".into(), Json::Num(round(configs_per_s, 2))),
        (
            "frontier_size".into(),
            Json::Num(last.frontier.len() as f64),
        ),
        ("probed".into(), Json::Num(last.stats.probed as f64)),
        ("full_evals".into(), Json::Num(last.stats.full_evals as f64)),
        ("obs".into(), tta_bench::harness::obs_report_json()),
    ];
    let json = Json::Obj(fields);
    let text = json.to_pretty();
    std::fs::write("BENCH_search.json", &text).expect("write BENCH_search.json");
    print!("{text}");
    eprintln!(
        "wrote BENCH_search.json ({configs} configs, min {min:.3}s, median {median:.3}s, \
         {configs_per_s:.0} configs/s)"
    );
}
