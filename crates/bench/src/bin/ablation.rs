//! Ablation study of the TTA programming freedoms (paper §III-B/C).
//!
//! The paper credits three compiler freedoms for the TTA's cycle advantage:
//! software bypassing, dead-result elimination and operand sharing. This
//! binary disables them one at a time (and all together) on `m-tta-2` and
//! reports the cycle counts and register-file traffic per kernel — the
//! quantitative backing for the qualitative claims of §III.
//!
//!     cargo run --release -p tta-bench --bin ablation

use tta_compiler::{compile_with, TtaOptions};
use tta_model::presets;

fn variants() -> Vec<(&'static str, TtaOptions)> {
    let full = TtaOptions::default();
    vec![
        ("full", full),
        (
            "no-bypass",
            TtaOptions {
                bypass: false,
                ..full
            },
        ),
        (
            "no-dre",
            TtaOptions {
                dead_result_elim: false,
                ..full
            },
        ),
        (
            "no-share",
            TtaOptions {
                operand_share: false,
                ..full
            },
        ),
        (
            "none",
            TtaOptions {
                bypass: false,
                dead_result_elim: false,
                operand_share: false,
            },
        ),
    ]
}

fn main() {
    let machine = presets::m_tta_2();
    println!(
        "TTA programming-freedom ablation on {} (cycles | RF reads | RF writes)\n",
        machine.name
    );
    println!(
        "{:10} {:>22} {:>22} {:>22} {:>22} {:>22}",
        "kernel", "full", "no-bypass", "no-dre", "no-share", "none"
    );
    for kernel in tta_chstone::all_kernels() {
        let module = (kernel.build)();
        print!("{:10}", kernel.name);
        for (_, opts) in variants() {
            let compiled = compile_with(&module, &machine, opts).expect("compiles");
            let r =
                tta_sim::run(&machine, &compiled.program, module.initial_memory()).expect("runs");
            assert_eq!(
                r.ret,
                (kernel.expected)(),
                "ablated compile must stay correct"
            );
            print!(
                " {:>8} |{:>5}k|{:>5}k",
                r.cycles,
                r.stats.rf_reads / 1000,
                r.stats.rf_writes / 1000
            );
        }
        println!();
    }
    println!(
        "\nEvery variant still passes the golden-model check; the deltas are\n\
         pure schedule quality. 'none' approximates operation-triggered\n\
         execution on the TTA datapath."
    );
}
