//! Dictionary-compression study for TTA program images (paper §VI future
//! work; §III cites Heikkinen et al. \[24\] for the mechanism).
//!
//!     cargo run --release -p tta-bench --bin compression

use tta_explore::compression::dictionary_compress;
use tta_model::presets;

fn main() {
    println!("full-instruction dictionary compression of TTA program images\n");
    println!(
        "{:10} {:>9} {:>7} {:>7} {:>11} {:>11} {:>7}",
        "machine", "kernel", "instrs", "dict", "raw bits", "packed bits", "ratio"
    );
    for machine in presets::all_design_points() {
        if machine.style != tta_model::CoreStyle::Tta {
            continue;
        }
        for kernel in tta_chstone::all_kernels() {
            let module = (kernel.build)();
            let compiled = tta_compiler::compile(&module, &machine).expect("compiles");
            let c = dictionary_compress(&machine, &compiled.program);
            println!(
                "{:10} {:>9} {:>7} {:>7} {:>11} {:>11} {:>6.2}x",
                machine.name,
                kernel.name,
                c.instructions,
                c.dictionary_entries,
                c.uncompressed_bits,
                c.compressed_bits,
                c.ratio()
            );
        }
    }
}
