//! Regenerate Table 4 of the paper.
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::tables::table4(&reports));
}
