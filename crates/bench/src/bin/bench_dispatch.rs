//! Micro-benchmark of the fused-block simulator dispatch: runs one hot
//! kernel compiled for one machine of each style (TTA, VLIW, scalar) and
//! reports superblock dispatch throughput, writing `BENCH_dispatch.json`
//! so engine-level regressions are caught even when the full evaluation
//! pipeline hides them behind compile time.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_dispatch [reps] [iters]`
//! (default 5 repetitions; each repetition simulates the kernel `iters`
//! times per style — default 20 — so one repetition is long enough for the
//! CI gate's relative tolerance to be meaningful). "Blocks" are dynamic superblock entries, counted from an
//! execution trace against the program's `BlockMap`: a block is entered at
//! the first instruction, after every control-bearing (run-terminal)
//! instruction, and at every pc discontinuity. `bench_report` diffs the
//! file against the committed baseline in CI.

use std::time::Instant;

use tta_isa::BlockMap;
use tta_model::{presets, Machine};
use tta_obs::json::Json;

const KERNEL: &str = "sha";

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

struct Style {
    label: &'static str,
    machine: Machine,
    program: tta_isa::Program,
    memory: Vec<u8>,
    /// Dynamic superblock entries of one run.
    blocks: u64,
    cycles: u64,
}

/// Count dynamic superblock entries in an executed-pc trace.
fn dynamic_blocks(map: &BlockMap, trace: &[u32]) -> u64 {
    let mut blocks = 0u64;
    let mut prev: Option<u32> = None;
    for &pc in trace {
        let entry = match prev {
            None => true,
            // A run-terminal instruction ends its block even on
            // fall-through; any non-sequential pc is a (re-)entry.
            Some(p) => map.run_len(p) == 1 || pc != p + 1,
        };
        if entry {
            blocks += 1;
        }
        prev = Some(pc);
    }
    blocks
}

fn prepare(machine: Machine, module: &tta_ir::Module) -> Style {
    let compiled = tta_compiler::compile(module, &machine)
        .unwrap_or_else(|e| panic!("{KERNEL} on {}: {e}", machine.name));
    let memory = module.initial_memory();
    let (result, trace) = tta_sim::run_traced(
        &machine,
        &compiled.program,
        memory.clone(),
        tta_sim::DEFAULT_FUEL,
    )
    .unwrap_or_else(|e| panic!("{KERNEL} on {}: {e}", machine.name));
    let map = BlockMap::of_program(&compiled.program);
    let label = match &compiled.program {
        tta_isa::Program::Tta(_) => "tta",
        tta_isa::Program::Vliw(_) => "vliw",
        tta_isa::Program::Scalar(_) => "scalar",
    };
    Style {
        label,
        machine,
        blocks: dynamic_blocks(&map, &trace),
        cycles: result.cycles,
        program: compiled.program,
        memory,
    }
}

fn main() {
    tta_obs::init_from_env();
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let iters: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    let kernel = tta_chstone::by_name(KERNEL).expect("hot kernel exists");
    let module = (kernel.build)();
    let styles: Vec<Style> = [presets::m_tta_2(), presets::m_vliw_2(), presets::mblaze_3()]
        .into_iter()
        .map(|m| prepare(m, &module))
        .collect();

    // Per-style minimum wall-clock across reps (one simulation per rep).
    let mut per_style_min = vec![f64::INFINITY; styles.len()];
    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut total = 0.0;
        for (si, s) in styles.iter().enumerate() {
            let t = Instant::now();
            for _ in 0..iters {
                let r = tta_sim::run(&s.machine, &s.program, s.memory.clone());
                std::hint::black_box(&r);
                r.unwrap_or_else(|e| panic!("{KERNEL} on {}: {e}", s.machine.name));
            }
            let dt = t.elapsed().as_secs_f64();
            per_style_min[si] = per_style_min[si].min(dt);
            total += dt;
        }
        totals_s.push(total);
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    // Per-repetition totals: each rep simulates every style `iters` times.
    let blocks: u64 = styles.iter().map(|s| s.blocks).sum::<u64>() * iters;
    let cycles: u64 = styles.iter().map(|s| s.cycles).sum::<u64>() * iters;
    let style_fields: Vec<(String, Json)> = styles
        .iter()
        .zip(&per_style_min)
        .map(|(s, &m)| {
            (
                s.label.to_string(),
                Json::Obj(vec![
                    ("machine".into(), Json::Str(s.machine.name.clone())),
                    ("cycles".into(), Json::Num(s.cycles as f64)),
                    ("blocks".into(), Json::Num(s.blocks as f64)),
                    ("wall_s_min".into(), Json::Num(round(m, 6))),
                    (
                        "blocks_per_s".into(),
                        Json::Num(round(s.blocks as f64 * iters as f64 / m, 0)),
                    ),
                ]),
            )
        })
        .collect();

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("dispatch".into())),
        ("kernel".into(), Json::Str(KERNEL.into())),
        ("machines".into(), Json::Num(styles.len() as f64)),
        ("kernels".into(), Json::Num(1.0)),
        ("reps".into(), Json::Num(reps as f64)),
        ("iters".into(), Json::Num(iters as f64)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        ("blocks".into(), Json::Num(blocks as f64)),
        (
            "blocks_per_s".into(),
            Json::Num(round(blocks as f64 / min, 0)),
        ),
        ("sim_cycles".into(), Json::Num(cycles as f64)),
        (
            "sim_cycles_per_s".into(),
            Json::Num(round(cycles as f64 / min, 0)),
        ),
        ("styles".into(), Json::Obj(style_fields)),
        ("obs".into(), tta_bench::harness::obs_report_json()),
    ]);
    let text = json.to_pretty();
    std::fs::write("BENCH_dispatch.json", &text).expect("write BENCH_dispatch.json");
    print!("{text}");
    eprintln!(
        "wrote BENCH_dispatch.json ({blocks} blocks/run, min {min:.4}s, median {median:.4}s)"
    );
}
