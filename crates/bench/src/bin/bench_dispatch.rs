//! Micro-benchmark of simulator dispatch: runs every CHStone kernel
//! compiled for one machine of each style (TTA, VLIW, scalar) and reports
//! superblock dispatch throughput, writing `BENCH_dispatch.json` so
//! engine-level regressions are caught even when the full evaluation
//! pipeline hides them behind compile time.
//!
//! Usage: `cargo run --release -p tta-bench --bin bench_dispatch [reps] [iters]`
//! (default 5 repetitions; each repetition simulates every kernel `iters`
//! times per style — default 20 — so one repetition is long enough for the
//! CI gate's relative tolerance to be meaningful).
//!
//! "Blocks" are dynamic superblock entries, counted *once per case* from
//! an execution trace against the program's `BlockMap` during setup — the
//! timed region only simulates, so `blocks_per_s` measures dispatch, not
//! tracing. A block is entered at the first instruction, after every
//! control-bearing (run-terminal) instruction, and at every pc
//! discontinuity.
//!
//! Each case carries shared compiled-tier state ([`tta_sim::Tiers`], the
//! environment configuration) warmed by one untimed run, so the timed
//! region measures the steady state of the configured tier: compiled
//! superblock chains by default, pure interpretation under `TTA_JIT=0`.
//! `bench_report` diffs the file against the committed baseline in CI.

use std::time::Instant;

use tta_isa::BlockMap;
use tta_model::{presets, Machine};
use tta_obs::json::Json;

fn round(v: f64, places: i32) -> f64 {
    let p = 10f64.powi(places);
    (v * p).round() / p
}

struct Case {
    kernel: &'static str,
    machine: Machine,
    program: tta_isa::Program,
    memory: Vec<u8>,
    tiers: tta_sim::Tiers,
    /// Dynamic superblock entries of one run (counted during setup).
    blocks: u64,
    cycles: u64,
}

/// Count dynamic superblock entries in an executed-pc trace.
fn dynamic_blocks(map: &BlockMap, trace: &[u32]) -> u64 {
    let mut blocks = 0u64;
    let mut prev: Option<u32> = None;
    for &pc in trace {
        let entry = match prev {
            None => true,
            // A run-terminal instruction ends its block even on
            // fall-through; any non-sequential pc is a (re-)entry.
            Some(p) => map.run_len(p) == 1 || pc != p + 1,
        };
        if entry {
            blocks += 1;
        }
        prev = Some(pc);
    }
    blocks
}

fn prepare(kernel: &'static str, machine: Machine, module: &tta_ir::Module) -> Case {
    let compiled = tta_compiler::compile(module, &machine)
        .unwrap_or_else(|e| panic!("{kernel} on {}: {e}", machine.name));
    let memory = module.initial_memory();
    let (result, trace) = tta_sim::run_traced(
        &machine,
        &compiled.program,
        memory.clone(),
        tta_sim::DEFAULT_FUEL,
    )
    .unwrap_or_else(|e| panic!("{kernel} on {}: {e}", machine.name));
    let map = BlockMap::of_program(&compiled.program);
    // Shared tier state, warmed by one untimed run so the timed region
    // measures steady-state dispatch (promotion is paid here).
    let tiers = tta_sim::Tiers::for_program(&compiled.program);
    let warm = tta_sim::run_with_tiers(
        &machine,
        &compiled.program,
        memory.clone(),
        tta_sim::DEFAULT_FUEL,
        &tiers,
    )
    .unwrap_or_else(|e| panic!("{kernel} on {}: {e}", machine.name));
    assert_eq!(warm.cycles, result.cycles, "tiered warm-up diverged");
    Case {
        kernel,
        machine,
        blocks: dynamic_blocks(&map, &trace),
        cycles: result.cycles,
        program: compiled.program,
        memory,
        tiers,
    }
}

fn main() {
    tta_obs::init_from_env();
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let iters: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    let kernels = tta_chstone::all_kernels();
    let machines = [presets::m_tta_2(), presets::m_vliw_2(), presets::mblaze_3()];
    let styles = ["tta", "vliw", "scalar"];
    let mut cases: Vec<Case> = Vec::new();
    for kernel in &kernels {
        let module = (kernel.build)();
        for m in &machines {
            cases.push(prepare(kernel.name, m.clone(), &module));
        }
    }

    // Wall-clock per rep: grand total plus per-style and per-kernel
    // slices (each minimised across reps independently).
    let mut per_style_min = vec![f64::INFINITY; styles.len()];
    let mut per_kernel_min = vec![f64::INFINITY; kernels.len()];
    let mut totals_s: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut total = 0.0;
        let mut style_s = vec![0.0; styles.len()];
        let mut kernel_s = vec![0.0; kernels.len()];
        for (ci, c) in cases.iter().enumerate() {
            let t = Instant::now();
            for _ in 0..iters {
                let r = tta_sim::run_with_tiers(
                    &c.machine,
                    &c.program,
                    c.memory.clone(),
                    tta_sim::DEFAULT_FUEL,
                    &c.tiers,
                );
                std::hint::black_box(&r);
                r.unwrap_or_else(|e| panic!("{} on {}: {e}", c.kernel, c.machine.name));
            }
            let dt = t.elapsed().as_secs_f64();
            style_s[ci % styles.len()] += dt;
            kernel_s[ci / styles.len()] += dt;
            total += dt;
        }
        for (si, s) in style_s.iter().enumerate() {
            per_style_min[si] = per_style_min[si].min(*s);
        }
        for (ki, k) in kernel_s.iter().enumerate() {
            per_kernel_min[ki] = per_kernel_min[ki].min(*k);
        }
        totals_s.push(total);
    }
    totals_s.sort_by(|a, b| a.total_cmp(b));
    let min = totals_s[0];
    let median = totals_s[totals_s.len() / 2];

    // Per-repetition totals: each rep simulates every case `iters` times.
    let blocks: u64 = cases.iter().map(|c| c.blocks).sum::<u64>() * iters;
    let cycles: u64 = cases.iter().map(|c| c.cycles).sum::<u64>() * iters;

    let style_fields: Vec<(String, Json)> = styles
        .iter()
        .enumerate()
        .map(|(si, &label)| {
            let scases: Vec<&Case> = cases.iter().skip(si).step_by(styles.len()).collect();
            let scycles: u64 = scases.iter().map(|c| c.cycles).sum();
            let sblocks: u64 = scases.iter().map(|c| c.blocks).sum();
            let m = per_style_min[si];
            (
                label.to_string(),
                Json::Obj(vec![
                    ("machine".into(), Json::Str(scases[0].machine.name.clone())),
                    ("cycles".into(), Json::Num(scycles as f64)),
                    ("blocks".into(), Json::Num(sblocks as f64)),
                    ("wall_s_min".into(), Json::Num(round(m, 6))),
                    (
                        "blocks_per_s".into(),
                        Json::Num(round(sblocks as f64 * iters as f64 / m, 0)),
                    ),
                    (
                        "sim_cycles_per_s".into(),
                        Json::Num(round(scycles as f64 * iters as f64 / m, 0)),
                    ),
                ]),
            )
        })
        .collect();

    let kernel_fields: Vec<(String, Json)> = kernels
        .iter()
        .enumerate()
        .map(|(ki, kernel)| {
            let kcases = &cases[ki * styles.len()..(ki + 1) * styles.len()];
            let kcycles: u64 = kcases.iter().map(|c| c.cycles).sum();
            let kblocks: u64 = kcases.iter().map(|c| c.blocks).sum();
            let m = per_kernel_min[ki];
            (
                kernel.name.to_string(),
                Json::Obj(vec![
                    ("cycles".into(), Json::Num(kcycles as f64)),
                    ("blocks".into(), Json::Num(kblocks as f64)),
                    ("wall_s_min".into(), Json::Num(round(m, 6))),
                    (
                        "sim_cycles_per_s".into(),
                        Json::Num(round(kcycles as f64 * iters as f64 / m, 0)),
                    ),
                ]),
            )
        })
        .collect();

    let compiled_blocks: u64 = cases.iter().map(|c| c.tiers.compiled_blocks() as u64).sum();
    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("dispatch".into())),
        ("machines".into(), Json::Num(machines.len() as f64)),
        ("kernels".into(), Json::Num(kernels.len() as f64)),
        ("reps".into(), Json::Num(reps as f64)),
        ("iters".into(), Json::Num(iters as f64)),
        ("jit_enabled".into(), Json::Bool(cases[0].tiers.enabled())),
        ("compiled_blocks".into(), Json::Num(compiled_blocks as f64)),
        ("wall_s_min".into(), Json::Num(round(min, 6))),
        ("wall_s_median".into(), Json::Num(round(median, 6))),
        ("blocks".into(), Json::Num(blocks as f64)),
        (
            "blocks_per_s".into(),
            Json::Num(round(blocks as f64 / min, 0)),
        ),
        ("sim_cycles".into(), Json::Num(cycles as f64)),
        (
            "sim_cycles_per_s".into(),
            Json::Num(round(cycles as f64 / min, 0)),
        ),
        ("styles".into(), Json::Obj(style_fields)),
        ("per_kernel".into(), Json::Obj(kernel_fields)),
        ("obs".into(), tta_bench::harness::obs_report_json()),
    ]);
    let text = json.to_pretty();
    std::fs::write("BENCH_dispatch.json", &text).expect("write BENCH_dispatch.json");
    print!("{text}");
    eprintln!(
        "wrote BENCH_dispatch.json ({blocks} blocks/rep, min {min:.4}s, median {median:.4}s)"
    );
}
