//! Instruction-memory hierarchy study (paper §V-D): simulate a small
//! per-core instruction cache over real dynamic PC traces and report the
//! effective slowdown per design point — quantifying the claim that TTA's
//! larger images are amortised by the memory hierarchy while its RF savings
//! are paid per core.
//!
//!     cargo run --release -p tta-bench --bin imem

use tta_explore::imem::{kernel_icache, ICacheConfig};
use tta_model::presets;

fn main() {
    let cfg = ICacheConfig::small();
    println!("16 kbit 2-way I-cache, 8-instruction lines, 10-cycle refills\n");
    println!(
        "{:10} {:>9} {:>7} {:>10} {:>9} {:>9}",
        "machine", "kernel", "lines", "accesses", "miss rate", "slowdown"
    );
    for machine in presets::all_design_points() {
        for kernel in ["gsm", "motion", "sha"] {
            let k = tta_chstone::by_name(kernel).unwrap();
            let module = (k.build)();
            let compiled = tta_compiler::compile(&module, &machine).expect("compiles");
            let (report, slowdown) =
                kernel_icache(&machine, &compiled.program, module.initial_memory(), cfg);
            println!(
                "{:10} {:>9} {:>7} {:>10} {:>8.2}% {:>8.3}x",
                machine.name,
                kernel,
                report.lines,
                report.accesses,
                report.miss_rate() * 100.0,
                slowdown
            );
        }
    }
    println!(
        "\nEven the widest TTA instructions keep loop working sets resident:\n\
         the image-size penalty turns into a one-time cold-miss cost, while\n\
         the register-file savings recur per core (paper §V-D)."
    );
}
