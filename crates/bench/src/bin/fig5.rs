//! Regenerate Fig. 5 of the paper (execution times at achieved fmax).
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::figures::fig5(&reports));
}
