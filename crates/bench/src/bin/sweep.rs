//! Bus-count design-space sweep for dual- and triple-issue TTAs
//! (the trade-off the paper's bm-tta points sample).
//!
//!     cargo run --release -p tta-bench --bin sweep

fn main() {
    let kernels: Vec<_> = ["gsm", "motion", "sha"]
        .iter()
        .map(|n| tta_chstone::by_name(n).expect("kernel"))
        .collect();
    for issue in [2u8, 3] {
        println!("== issue width {issue}");
        let pts = tta_explore::sweep_bus_count(issue, 3, 9, &kernels);
        println!("{}", tta_explore::sweep::render(&pts));
    }
}
