//! Regenerate Table 3 of the paper.
fn main() {
    let reports = tta_bench::full_evaluation();
    println!("{}", tta_explore::tables::table3(&reports));
}
