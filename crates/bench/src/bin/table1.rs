//! Regenerate Table 1 of the paper.
fn main() {
    println!("{}", tta_explore::tables::table1());
}
