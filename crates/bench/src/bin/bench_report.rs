//! Diffs two `BENCH_*.json` files and exits non-zero on a performance
//! regression beyond tolerance — the binary the CI `bench-gate` job runs.
//!
//! Usage:
//! ```text
//! bench_report --baseline ci-baseline/BENCH_eval.json \
//!              [--current BENCH_eval.json] [--tolerance 0.30]
//! ```
//!
//! `--current` defaults to the baseline's file name resolved in the
//! working directory (the file a fresh `bench_eval`/`bench_fuzz` run just
//! wrote). Exit codes: 0 = pass, 1 = regression beyond tolerance,
//! 2 = usage or schema error (unreadable file, mismatched workloads).

use std::path::Path;
use std::process::ExitCode;

use tta_bench::report::diff;
use tta_obs::json::{parse, Json};

struct Args {
    baseline: String,
    current: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: String::new(),
        current: None,
        tolerance: 0.30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--current" => args.current = Some(value("--current")?),
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance: not a number: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: bench_report --baseline FILE [--current FILE] \
                     [--tolerance 0.30]"
                    .into());
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    if args.baseline.is_empty() {
        return Err("--baseline is required (try --help)".into());
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };
    let current_path = args.current.clone().unwrap_or_else(|| {
        Path::new(&args.baseline)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| args.baseline.clone())
    });

    let result = load(&args.baseline)
        .and_then(|b| load(&current_path).map(|c| (b, c)))
        .and_then(|(b, c)| diff(&b, &c, args.tolerance));
    match result {
        Ok(d) => {
            println!(
                "bench_report: {} vs {} (tolerance {:.0}%)",
                args.baseline,
                current_path,
                args.tolerance * 100.0
            );
            for line in &d.lines {
                println!("  {line}");
            }
            if d.passed() {
                println!("PASS");
                ExitCode::SUCCESS
            } else {
                for r in &d.regressions {
                    eprintln!("REGRESSION: {r}");
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::from(2)
        }
    }
}
