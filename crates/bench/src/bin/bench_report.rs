//! Diffs two `BENCH_*.json` files and exits non-zero on a performance
//! regression beyond tolerance — the binary the CI `bench-gate` job runs.
//!
//! Usage:
//! ```text
//! bench_report --baseline ci-baseline/BENCH_eval.json \
//!              [--current BENCH_eval.json] [--tolerance 0.30] [--json FILE]
//! ```
//!
//! `--current` defaults to the baseline's file name resolved in the
//! working directory (the file a fresh `bench_eval`/`bench_fuzz` run just
//! wrote). `--json` additionally writes the comparison as a
//! machine-readable document (`-` for stdout); on a schema error the
//! document is `{"error": ...}`. Exit codes: 0 = pass, 1 = regression
//! beyond tolerance, 2 = usage or schema error (unreadable file,
//! mismatched workloads).

use std::path::Path;
use std::process::ExitCode;

use tta_bench::report::{diff, diff_to_json};
use tta_obs::json::{parse, Json};

struct Args {
    baseline: String,
    current: Option<String>,
    tolerance: f64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: String::new(),
        current: None,
        tolerance: 0.30,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--current" => args.current = Some(value("--current")?),
            "--json" => args.json = Some(value("--json")?),
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance: not a number: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: bench_report --baseline FILE [--current FILE] \
                     [--tolerance 0.30] [--json FILE]"
                    .into());
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    if args.baseline.is_empty() {
        return Err("--baseline is required (try --help)".into());
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };
    let current_path = args.current.clone().unwrap_or_else(|| {
        Path::new(&args.baseline)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| args.baseline.clone())
    });

    let result = load(&args.baseline)
        .and_then(|b| load(&current_path).map(|c| (b, c)))
        .and_then(|(b, c)| diff(&b, &c, args.tolerance));

    // Machine-readable mirror of the outcome, including schema errors.
    if let Some(path) = &args.json {
        let doc = match &result {
            Ok(d) => diff_to_json(d, &args.baseline, &current_path, args.tolerance),
            Err(e) => Json::Obj(vec![("error".into(), Json::Str(e.clone()))]),
        };
        let text = doc.to_pretty();
        let written = if path == "-" {
            print!("{text}");
            Ok(())
        } else {
            std::fs::write(path, text)
        };
        if let Err(e) = written {
            eprintln!("bench_report: {path}: {e}");
            return ExitCode::from(2);
        }
    }

    // With the JSON document on stdout, the human summary moves to
    // stderr so `--json -` stays machine-parseable.
    let json_on_stdout = args.json.as_deref() == Some("-");
    let say = |line: String| {
        if json_on_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    match result {
        Ok(d) => {
            say(format!(
                "bench_report: {} vs {} (tolerance {:.0}%)",
                args.baseline,
                current_path,
                args.tolerance * 100.0
            ));
            for line in &d.lines {
                say(format!("  {line}"));
            }
            if d.passed() {
                say("PASS".into());
                ExitCode::SUCCESS
            } else {
                for r in &d.regressions {
                    eprintln!("REGRESSION: {r}");
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::from(2)
        }
    }
}
