//! A minimal, dependency-free micro-benchmark harness.
//!
//! Stands in for Criterion (unavailable in the offline build environment)
//! with the same measurement discipline on a smaller scale: per benchmark
//! it warms up, auto-calibrates an iteration count per sample
//! ([`calibrate_iters`]), collects a fixed number of samples, and reports
//! the median with min/max spread ([`summarize`]) so one-off scheduling
//! hiccups are visible instead of silently averaged in.
//!
//! Bench binaries (`harness = false`) build one [`Harness`], register
//! benchmarks through [`Group`]s, and call [`Harness::finish`]. A single
//! positional command-line argument filters benchmarks by substring, so
//! `cargo bench -p tta-bench --bench simulator -- tta` runs the TTA rows
//! only.
//!
//! The stand-alone bench binaries (`bench_eval`, `bench_fuzz`) embed the
//! observability run report ([`obs_report_json`]) into the `BENCH_*.json`
//! files they write, and `bench_report` diffs two such files in CI.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// One benchmark's collected measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark name, `group/id`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Optional element count for throughput reporting.
    pub elements: Option<u64>,
}

/// How many iterations fill one target-length sample, given the duration
/// of one warm-up iteration. Clamped to `[1, 1_000_000]`: the floor keeps
/// benchmarks slower than the whole sample budget at one iteration per
/// sample (never zero), the ceiling bounds loop overhead on sub-ns work.
pub fn calibrate_iters(once: Duration) -> u64 {
    (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
}

/// Whether benchmark `name` passes the optional substring `filter`.
pub fn name_matches(name: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// Collapse raw per-iteration samples into a [`Measurement`]: sorts and
/// picks min, max and the (upper-for-even-counts) median.
///
/// # Panics
/// With an empty sample vector.
pub fn summarize(name: String, mut samples_ns: Vec<f64>, elements: Option<u64>) -> Measurement {
    assert!(
        !samples_ns.is_empty(),
        "summarize needs at least one sample"
    );
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        name,
        median_ns: samples_ns[samples_ns.len() / 2],
        min_ns: samples_ns[0],
        max_ns: *samples_ns.last().unwrap(),
        elements,
    }
}

/// The observability run report as a JSON value; bench binaries embed it
/// into the `BENCH_*.json` they write, under an `"obs"` key.
pub fn obs_report_json() -> tta_obs::json::Json {
    tta_obs::report::to_json()
}

/// Top-level benchmark registry; create one per bench binary.
pub struct Harness {
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Create a harness, reading the benchmark-name filter from the
    /// command line. Flags Cargo forwards (`--bench`, `--profile-time`,
    /// etc.) are ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            results: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 10,
            elements: None,
        }
    }

    /// Print the result table.
    pub fn finish(self) {
        let width = self.results.iter().map(|m| m.name.len()).max().unwrap_or(0);
        for m in &self.results {
            let mut line = format!(
                "{:width$}  {:>12}  (min {}, max {})",
                m.name,
                format_ns(m.median_ns),
                format_ns(m.min_ns),
                format_ns(m.max_ns),
            );
            if let Some(e) = m.elements {
                let per_sec = e as f64 / (m.median_ns * 1e-9);
                line.push_str(&format!("  {:.2e} elem/s", per_sec));
            }
            println!("{line}");
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Number of samples to collect per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Report throughput as `elements` per iteration for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Measure one closure. The closure's return value is black-boxed so
    /// the computation cannot be optimised away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        if !name_matches(&name, self.harness.filter.as_deref()) {
            return self;
        }
        // Warm up and calibrate: how many iterations fill one sample?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let iters = calibrate_iters(t0.elapsed());

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let m = summarize(name, samples_ns, self.elements);
        println!(
            "{}  {}  (min {}, max {})",
            m.name,
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            format_ns(m.max_ns)
        );
        self.harness.results.push(m);
        self
    }
}

/// Render nanoseconds with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness {
            filter: None,
            results: Vec::new(),
        };
        h.group("t")
            .sample_size(3)
            .bench("spin", || std::hint::black_box((0..100u64).sum::<u64>()));
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("xyz".into()),
            results: Vec::new(),
        };
        h.group("t").bench("abc", || 1);
        assert!(h.results.is_empty());
    }

    #[test]
    fn filter_is_a_substring_match_on_the_full_name() {
        assert!(name_matches("group/id", None));
        assert!(name_matches("group/id", Some("oup/i")));
        assert!(name_matches("group/id", Some("group")));
        assert!(!name_matches("group/id", Some("grid")));
        assert!(!name_matches("group/id", Some("Group")));
    }

    #[test]
    fn summarize_picks_median_min_max() {
        // Odd count: exact middle after sorting.
        let m = summarize("t/odd".into(), vec![5.0, 1.0, 3.0], None);
        assert_eq!((m.min_ns, m.median_ns, m.max_ns), (1.0, 3.0, 5.0));
        // Even count: the upper median (index len/2).
        let m = summarize("t/even".into(), vec![4.0, 1.0, 3.0, 2.0], Some(7));
        assert_eq!((m.min_ns, m.median_ns, m.max_ns), (1.0, 3.0, 4.0));
        assert_eq!(m.elements, Some(7));
        // Single sample: all three statistics coincide.
        let m = summarize("t/one".into(), vec![2.5], None);
        assert_eq!((m.min_ns, m.median_ns, m.max_ns), (2.5, 2.5, 2.5));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn summarize_rejects_empty_input() {
        summarize("t/none".into(), vec![], None);
    }

    #[test]
    fn calibration_has_a_floor_and_a_ceiling() {
        // Slower than the whole sample budget: still one iteration.
        assert_eq!(calibrate_iters(Duration::from_secs(1)), 1);
        assert_eq!(calibrate_iters(TARGET_SAMPLE), 1);
        // Zero-duration warm-up must not divide by zero; it hits the cap.
        assert_eq!(calibrate_iters(Duration::ZERO), 1_000_000);
        // A 1µs iteration fits the 40ms target 40_000 times.
        assert_eq!(calibrate_iters(Duration::from_micros(1)), 40_000);
    }

    #[test]
    fn ns_formatting_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
