//! A minimal, dependency-free micro-benchmark harness.
//!
//! Stands in for Criterion (unavailable in the offline build environment)
//! with the same measurement discipline on a smaller scale: per benchmark
//! it warms up, auto-calibrates an iteration count per sample, collects a
//! fixed number of samples, and reports the median with min/max spread so
//! one-off scheduling hiccups are visible instead of silently averaged in.
//!
//! Bench binaries (`harness = false`) build one [`Harness`], register
//! benchmarks through [`Group`]s, and call [`Harness::finish`]. A single
//! positional command-line argument filters benchmarks by substring, so
//! `cargo bench -p tta-bench --bench simulator -- tta` runs the TTA rows
//! only.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// One benchmark's collected measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark name, `group/id`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Optional element count for throughput reporting.
    pub elements: Option<u64>,
}

/// Top-level benchmark registry; create one per bench binary.
pub struct Harness {
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Create a harness, reading the benchmark-name filter from the
    /// command line. Flags Cargo forwards (`--bench`, `--profile-time`,
    /// etc.) are ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            results: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 10,
            elements: None,
        }
    }

    /// Print the result table.
    pub fn finish(self) {
        let width = self.results.iter().map(|m| m.name.len()).max().unwrap_or(0);
        for m in &self.results {
            let mut line = format!(
                "{:width$}  {:>12}  (min {}, max {})",
                m.name,
                format_ns(m.median_ns),
                format_ns(m.min_ns),
                format_ns(m.max_ns),
            );
            if let Some(e) = m.elements {
                let per_sec = e as f64 / (m.median_ns * 1e-9);
                line.push_str(&format!("  {:.2e} elem/s", per_sec));
            }
            println!("{line}");
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Number of samples to collect per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Report throughput as `elements` per iteration for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Measure one closure. The closure's return value is black-boxed so
    /// the computation cannot be optimised away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        if let Some(filt) = &self.harness.filter {
            if !name.contains(filt.as_str()) {
                return self;
            }
        }
        // Warm up and calibrate: how many iterations fill one sample?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            name,
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
            elements: self.elements,
        };
        println!(
            "{}  {}  (min {}, max {})",
            m.name,
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            format_ns(m.max_ns)
        );
        self.harness.results.push(m);
        self
    }
}

/// Render nanoseconds with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness {
            filter: None,
            results: Vec::new(),
        };
        h.group("t")
            .sample_size(3)
            .bench("spin", || std::hint::black_box((0..100u64).sum::<u64>()));
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("xyz".into()),
            results: Vec::new(),
        };
        h.group("t").bench("abc", || 1);
        assert!(h.results.is_empty());
    }

    #[test]
    fn ns_formatting_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
