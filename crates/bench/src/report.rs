//! Regression diffing between two `BENCH_*.json` files.
//!
//! The CI `bench-gate` job re-runs `bench_eval`/`bench_fuzz` on the PR
//! and diffs the fresh JSON against the committed baseline with
//! [`diff`]: the gate fails when `wall_s_median` grew by more than the
//! configured tolerance. Two reports are only comparable when their
//! workload keys (benchmark name, machine/kernel/pair/seed counts)
//! match — a mismatch is a schema error, not a pass, so shrinking the
//! workload can never sneak past the gate.

use tta_obs::json::Json;

/// The gated metric: median wall-clock seconds per run, lower is better.
pub const GATE_KEY: &str = "wall_s_median";

/// Additional lower-is-better metrics gated with the same tolerance when
/// both reports carry them (per-job latency percentiles from
/// `bench_serve`). Present in one file only is a schema error — a report
/// cannot drop a gated metric to dodge the gate.
pub const GATED_LOWER_KEYS: [&str; 2] = ["p50_ms", "p99_ms"];

/// Histogram-derived latency percentiles from `bench_serve`'s log₂
/// histogram cross-check. Schema-checked like the gated keys (dropping
/// one from only one side is an error) but never a regression on their
/// own: a log₂ bucket bound doubles when a latency crosses a boundary,
/// which would spuriously trip a 30% tolerance while the exact
/// `p50_ms`/`p99_ms` gates above track the same shift smoothly.
pub const INFO_SCHEMA_LOWER_KEYS: [&str; 2] = ["hist_p50_ms", "hist_p99_ms"];

/// Higher-is-better metrics gated with the same tolerance when both
/// reports carry them (search throughput from `bench_search`): the gate
/// fails when the value *drops* by more than the tolerance. Present in
/// one file only is a schema error, like [`GATED_LOWER_KEYS`].
pub const GATED_HIGHER_KEYS: [&str; 1] = ["configs_per_s"];

/// Keys that define the workload; they must be equal (or absent from
/// both files) for a comparison to be meaningful. `configs`,
/// `generations`, and `seed` pin the design-space search: its funnel is
/// deterministic per seed, so a different config count means a changed
/// space, not a faster search.
const WORKLOAD_KEYS: [&str; 10] = [
    "bench",
    "machines",
    "kernels",
    "pairs",
    "seeds",
    "iters",
    "jobs",
    "configs",
    "generations",
    "seed",
];

/// Informational higher-is-better metrics shown in the summary.
const INFO_HIGHER: [&str; 5] = [
    "pairs_per_s",
    "cases_per_s",
    "sim_cycles_per_s",
    "blocks_per_s",
    "jobs_per_s",
];

/// The outcome of one comparison.
#[derive(Debug, Clone)]
pub struct Diff {
    /// Human-readable summary lines (one per compared metric).
    pub lines: Vec<String>,
    /// Regressions beyond tolerance; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl Diff {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Fetch a numeric field or explain what is wrong with it.
fn num(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .ok_or_else(|| format!("missing key \"{key}\""))?
        .as_f64()
        .ok_or_else(|| format!("key \"{key}\" is not a number"))
}

/// Compare `current` against `baseline` with a relative `tolerance`
/// (0.30 = +30% allowed). `Err` is a schema problem (different
/// workloads, missing or non-numeric gate key, silly tolerance) — CI
/// treats it as a hard failure distinct from a measured regression.
pub fn diff(baseline: &Json, current: &Json, tolerance: f64) -> Result<Diff, String> {
    if !(0.0..10.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 10)"));
    }
    if !matches!(baseline, Json::Obj(_)) || !matches!(current, Json::Obj(_)) {
        return Err("bench reports must be JSON objects".into());
    }
    for k in WORKLOAD_KEYS {
        match (baseline.get(k), current.get(k)) {
            (None, None) => {}
            (Some(b), Some(c)) if b == c => {}
            (Some(b), Some(c)) => {
                return Err(format!(
                    "workload mismatch on \"{k}\": baseline {b:?} vs current {c:?}"
                ));
            }
            (Some(_), None) => return Err(format!("current report lacks workload key \"{k}\"")),
            (None, Some(_)) => return Err(format!("baseline report lacks workload key \"{k}\"")),
        }
    }

    let base = num(baseline, GATE_KEY).map_err(|e| format!("baseline: {e}"))?;
    let cur = num(current, GATE_KEY).map_err(|e| format!("current: {e}"))?;
    if base <= 0.0 {
        return Err(format!("baseline {GATE_KEY} is not positive ({base})"));
    }
    let limit = base * (1.0 + tolerance);
    let delta_pct = (cur / base - 1.0) * 100.0;
    let mut lines = vec![format!(
        "{GATE_KEY}: baseline {base:.6}s → current {cur:.6}s ({delta_pct:+.1}%), limit {limit:.6}s"
    )];
    let mut regressions = Vec::new();
    if cur > limit {
        regressions.push(format!(
            "{GATE_KEY} regressed {delta_pct:+.1}% (> {:.0}% tolerance)",
            tolerance * 100.0
        ));
    }

    for k in GATED_LOWER_KEYS {
        let (b, c) = match (baseline.get(k), current.get(k)) {
            (None, None) => continue,
            (Some(_), None) => return Err(format!("current report lacks gated key \"{k}\"")),
            (None, Some(_)) => return Err(format!("baseline report lacks gated key \"{k}\"")),
            (Some(_), Some(_)) => (
                num(baseline, k).map_err(|e| format!("baseline: {e}"))?,
                num(current, k).map_err(|e| format!("current: {e}"))?,
            ),
        };
        if b <= 0.0 {
            return Err(format!("baseline {k} is not positive ({b})"));
        }
        let limit = b * (1.0 + tolerance);
        let delta_pct = (c / b - 1.0) * 100.0;
        lines.push(format!(
            "{k}: baseline {b:.3}ms → current {c:.3}ms ({delta_pct:+.1}%), limit {limit:.3}ms"
        ));
        if c > limit {
            regressions.push(format!(
                "{k} regressed {delta_pct:+.1}% (> {:.0}% tolerance)",
                tolerance * 100.0
            ));
        }
    }

    for k in GATED_HIGHER_KEYS {
        let (b, c) = match (baseline.get(k), current.get(k)) {
            (None, None) => continue,
            (Some(_), None) => return Err(format!("current report lacks gated key \"{k}\"")),
            (None, Some(_)) => return Err(format!("baseline report lacks gated key \"{k}\"")),
            (Some(_), Some(_)) => (
                num(baseline, k).map_err(|e| format!("baseline: {e}"))?,
                num(current, k).map_err(|e| format!("current: {e}"))?,
            ),
        };
        if b <= 0.0 {
            return Err(format!("baseline {k} is not positive ({b})"));
        }
        let limit = b * (1.0 - tolerance).max(0.0);
        let delta_pct = (c / b - 1.0) * 100.0;
        lines.push(format!(
            "{k}: baseline {b:.2} → current {c:.2} ({delta_pct:+.1}%), floor {limit:.2}"
        ));
        if c < limit {
            regressions.push(format!(
                "{k} regressed {delta_pct:+.1}% (> {:.0}% tolerance)",
                tolerance * 100.0
            ));
        }
    }

    for k in INFO_SCHEMA_LOWER_KEYS {
        let (b, c) = match (baseline.get(k), current.get(k)) {
            (None, None) => continue,
            (Some(_), None) => return Err(format!("current report lacks key \"{k}\"")),
            (None, Some(_)) => return Err(format!("baseline report lacks key \"{k}\"")),
            (Some(_), Some(_)) => (
                num(baseline, k).map_err(|e| format!("baseline: {e}"))?,
                num(current, k).map_err(|e| format!("current: {e}"))?,
            ),
        };
        lines.push(format!(
            "{k}: baseline {b:.3}ms → current {c:.3}ms (informational; log₂-bucket bound)"
        ));
    }

    for k in INFO_HIGHER {
        if let (Ok(b), Ok(c)) = (num(baseline, k), num(current, k)) {
            if b > 0.0 {
                lines.push(format!(
                    "{k}: baseline {b:.2} → current {c:.2} ({:+.1}%, informational)",
                    (c / b - 1.0) * 100.0
                ));
            }
        }
    }
    Ok(Diff { lines, regressions })
}

/// Schema version of [`diff_to_json`]'s machine-readable result.
pub const BENCH_REPORT_VERSION: u64 = 1;

/// Render a comparison outcome as the machine-readable document behind
/// `bench_report --json` (consumed by CI annotations and dashboards).
pub fn diff_to_json(d: &Diff, baseline: &str, current: &str, tolerance: f64) -> Json {
    Json::Obj(vec![
        (
            "bench_report_version".into(),
            Json::Num(BENCH_REPORT_VERSION as f64),
        ),
        ("baseline".into(), Json::Str(baseline.into())),
        ("current".into(), Json::Str(current.into())),
        ("tolerance".into(), Json::Num(tolerance)),
        ("passed".into(), Json::Bool(d.passed())),
        (
            "lines".into(),
            Json::Arr(d.lines.iter().map(|l| Json::Str(l.clone())).collect()),
        ),
        (
            "regressions".into(),
            Json::Arr(d.regressions.iter().map(|r| Json::Str(r.clone())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_obs::json::parse;

    fn eval_report(median: f64) -> Json {
        parse(&format!(
            r#"{{"bench": "evaluate_all", "machines": 13, "kernels": 8, "pairs": 104,
                "reps": 5, "wall_s_min": {0}, "wall_s_median": {0}, "pairs_per_s": {1}}}"#,
            median,
            104.0 / median
        ))
        .unwrap()
    }

    #[test]
    fn self_comparison_passes() {
        let r = eval_report(0.4);
        let d = diff(&r, &r, 0.30).unwrap();
        assert!(d.passed(), "{:?}", d.regressions);
        assert!(d.lines[0].contains("wall_s_median"));
    }

    #[test]
    fn synthetic_2x_regression_fails() {
        let d = diff(&eval_report(0.4), &eval_report(0.8), 0.30).unwrap();
        assert!(!d.passed());
        assert!(d.regressions[0].contains("+100.0%"), "{:?}", d.regressions);
    }

    #[test]
    fn tolerance_edges_are_inclusive_below_and_exclusive_above() {
        // Exactly at the limit: passes (<=).
        let d = diff(&eval_report(0.4), &eval_report(0.4 * 1.30), 0.30).unwrap();
        assert!(d.passed(), "{:?}", d.regressions);
        // A hair above: fails.
        let d = diff(&eval_report(0.4), &eval_report(0.4 * 1.30 + 1e-6), 0.30).unwrap();
        assert!(!d.passed());
        // Improvements always pass, even with zero tolerance.
        let d = diff(&eval_report(0.4), &eval_report(0.2), 0.0).unwrap();
        assert!(d.passed());
    }

    #[test]
    fn invalid_tolerance_is_rejected() {
        let r = eval_report(0.4);
        assert!(diff(&r, &r, -0.1).is_err());
        assert!(diff(&r, &r, 10.0).is_err());
    }

    #[test]
    fn missing_gate_key_is_a_schema_error() {
        let mut base = eval_report(0.4);
        let cur = eval_report(0.4);
        if let Json::Obj(fields) = &mut base {
            fields.retain(|(k, _)| k != GATE_KEY);
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("baseline") && e.contains(GATE_KEY), "{e}");
    }

    #[test]
    fn non_numeric_gate_key_is_a_schema_error() {
        let base = eval_report(0.4);
        let mut cur = eval_report(0.4);
        if let Json::Obj(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == GATE_KEY {
                    *v = Json::Str("fast".into());
                }
            }
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("not a number"), "{e}");
    }

    #[test]
    fn different_benchmarks_do_not_compare() {
        let base = eval_report(0.4);
        let cur = parse(r#"{"bench": "fuzz_differential", "wall_s_median": 0.1}"#).unwrap();
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(
            e.contains("workload mismatch") || e.contains("workload key"),
            "{e}"
        );
    }

    #[test]
    fn workload_size_change_does_not_compare() {
        let base = eval_report(0.4);
        let mut cur = eval_report(0.4);
        if let Json::Obj(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == "pairs" {
                    *v = Json::Num(52.0);
                }
            }
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("workload mismatch on \"pairs\""), "{e}");
    }

    #[test]
    fn fuzz_schema_compares_on_seed_count() {
        let mk = |seeds: u64, median: f64| {
            parse(&format!(
                r#"{{"bench": "fuzz_differential", "seeds": {seeds}, "machines": 13,
                    "wall_s_median": {median}, "cases_per_s": {}}}"#,
                seeds as f64 / median
            ))
            .unwrap()
        };
        assert!(diff(&mk(100, 0.57), &mk(100, 0.60), 0.30).unwrap().passed());
        assert!(diff(&mk(100, 0.57), &mk(50, 0.30), 0.30).is_err());
    }

    fn serve_report(median: f64, p50: f64, p99: f64) -> Json {
        parse(&format!(
            r#"{{"bench": "serve_batch", "machines": 13, "kernels": 8, "jobs": 1000,
                "reps": 3, "wall_s_median": {median}, "jobs_per_s": {},
                "p50_ms": {p50}, "p99_ms": {p99}}}"#,
            1000.0 / median
        ))
        .unwrap()
    }

    #[test]
    fn latency_percentiles_are_gated_when_present() {
        let base = serve_report(2.0, 40.0, 90.0);
        // Wall time flat, p99 doubled: the gate must trip on p99 alone.
        let d = diff(&base, &serve_report(2.0, 41.0, 180.0), 0.30).unwrap();
        assert!(!d.passed());
        assert!(d.regressions[0].contains("p99_ms"), "{:?}", d.regressions);
        // All three within tolerance: passes, and all are in the summary.
        let d = diff(&base, &serve_report(2.1, 45.0, 100.0), 0.30).unwrap();
        assert!(d.passed(), "{:?}", d.regressions);
        assert!(d.lines.iter().any(|l| l.contains("p50_ms")));
        assert!(d.lines.iter().any(|l| l.contains("p99_ms")));
    }

    #[test]
    fn dropping_a_gated_latency_key_is_a_schema_error() {
        let base = serve_report(2.0, 40.0, 90.0);
        let mut cur = serve_report(2.0, 40.0, 90.0);
        if let Json::Obj(fields) = &mut cur {
            fields.retain(|(k, _)| k != "p99_ms");
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("gated key \"p99_ms\""), "{e}");
        // Reports without latency keys on either side still compare.
        let r = eval_report(0.4);
        assert!(diff(&r, &r, 0.30).unwrap().passed());
    }

    #[test]
    fn hist_percentiles_are_schema_checked_but_never_gate() {
        let with_hist = |p99: f64| {
            let mut j = serve_report(2.0, 40.0, 90.0);
            if let Json::Obj(fields) = &mut j {
                fields.push(("hist_p50_ms".into(), Json::Num(65.535)));
                fields.push(("hist_p99_ms".into(), Json::Num(p99)));
            }
            j
        };
        // A doubled histogram bound (bucket-boundary jump) is reported
        // but never a regression.
        let d = diff(&with_hist(131.071), &with_hist(262.143), 0.30).unwrap();
        assert!(d.passed(), "{:?}", d.regressions);
        assert!(
            d.lines.iter().any(|l| l.contains("hist_p99_ms")),
            "{:?}",
            d.lines
        );
        // Dropping the key from one side only is a schema error.
        let mut cur = with_hist(131.071);
        if let Json::Obj(fields) = &mut cur {
            fields.retain(|(k, _)| k != "hist_p99_ms");
        }
        let e = diff(&with_hist(131.071), &cur, 0.30).unwrap_err();
        assert!(e.contains("hist_p99_ms"), "{e}");
        // Absent from both sides (old baselines): still compares.
        let plain = serve_report(2.0, 40.0, 90.0);
        assert!(diff(&plain, &plain, 0.30).unwrap().passed());
    }

    #[test]
    fn serve_job_count_is_a_workload_key() {
        let base = serve_report(2.0, 40.0, 90.0);
        let mut cur = serve_report(1.0, 40.0, 90.0);
        if let Json::Obj(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == "jobs" {
                    *v = Json::Num(500.0);
                }
            }
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("workload mismatch on \"jobs\""), "{e}");
    }

    fn search_report(median: f64, configs_per_s: f64) -> Json {
        parse(&format!(
            r#"{{"bench": "pareto_search", "kernels": 8, "configs": 1740,
                "generations": 6, "seed": 1, "reps": 3,
                "wall_s_median": {median}, "configs_per_s": {configs_per_s}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn search_throughput_is_gated_higher_is_better() {
        let base = search_report(3.0, 580.0);
        // Throughput holds (or improves): passes.
        assert!(diff(&base, &search_report(3.0, 580.0), 0.30)
            .unwrap()
            .passed());
        assert!(diff(&base, &search_report(2.0, 870.0), 0.30)
            .unwrap()
            .passed());
        // Wall flat but throughput collapsed beyond tolerance: fails on
        // configs_per_s alone.
        let d = diff(&base, &search_report(3.0, 300.0), 0.30).unwrap();
        assert!(!d.passed());
        assert!(
            d.regressions[0].contains("configs_per_s"),
            "{:?}",
            d.regressions
        );
        // A drop inside tolerance passes.
        assert!(diff(&base, &search_report(3.2, 450.0), 0.30)
            .unwrap()
            .passed());
    }

    #[test]
    fn dropping_the_throughput_key_is_a_schema_error() {
        let base = search_report(3.0, 580.0);
        let mut cur = search_report(3.0, 580.0);
        if let Json::Obj(fields) = &mut cur {
            fields.retain(|(k, _)| k != "configs_per_s");
        }
        let e = diff(&base, &cur, 0.30).unwrap_err();
        assert!(e.contains("gated key \"configs_per_s\""), "{e}");
    }

    #[test]
    fn search_workload_is_pinned_by_configs_generations_and_seed() {
        let base = search_report(3.0, 580.0);
        for (key, val) in [("configs", 900.0), ("generations", 2.0), ("seed", 9.0)] {
            let mut cur = search_report(1.0, 1200.0);
            if let Json::Obj(fields) = &mut cur {
                for (k, v) in fields.iter_mut() {
                    if k == key {
                        *v = Json::Num(val);
                    }
                }
            }
            let e = diff(&base, &cur, 0.30).unwrap_err();
            assert!(
                e.contains(&format!("workload mismatch on \"{key}\"")),
                "{e}"
            );
        }
    }

    #[test]
    fn diff_to_json_has_the_documented_shape() {
        let d = diff(&eval_report(0.4), &eval_report(0.8), 0.30).unwrap();
        let j = diff_to_json(&d, "ci-baseline/BENCH_eval.json", "BENCH_eval.json", 0.30);
        assert_eq!(
            j.get("bench_report_version").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            j.get("baseline").and_then(Json::as_str),
            Some("ci-baseline/BENCH_eval.json")
        );
        assert_eq!(j.get("passed"), Some(&Json::Bool(false)));
        let Some(Json::Arr(regs)) = j.get("regressions") else {
            panic!("regressions must be an array");
        };
        assert_eq!(regs.len(), 1);
        let Some(Json::Arr(lines)) = j.get("lines") else {
            panic!("lines must be an array");
        };
        assert!(!lines.is_empty());
        // The document parses back from its rendered text.
        let rt = parse(&j.to_pretty()).unwrap();
        assert_eq!(rt, j);

        let ok = diff(&eval_report(0.4), &eval_report(0.4), 0.30).unwrap();
        let j = diff_to_json(&ok, "a.json", "b.json", 0.30);
        assert_eq!(j.get("passed"), Some(&Json::Bool(true)));
        assert_eq!(j.get("regressions"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn non_object_reports_are_rejected() {
        let r = eval_report(0.4);
        assert!(diff(&Json::Num(1.0), &r, 0.30).is_err());
        assert!(diff(&r, &Json::Arr(vec![]), 0.30).is_err());
    }
}
