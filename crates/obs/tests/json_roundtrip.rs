//! Property tests for `tta_obs::json`: every value the emitter can
//! print must parse back to the same value (after the documented
//! non-finite → `null` normalisation), across adversarial inputs —
//! deep nesting, non-finite floats, exotic escapes — generated from a
//! seeded `tta-testutil::Rng` so failures replay from the seed alone.

use tta_obs::json::{parse, Json};
use tta_testutil::Rng;

/// Interesting scalar strings: every escape class the emitter handles,
/// plus multi-byte UTF-8 and boundary code points.
const NASTY_STRINGS: &[&str] = &[
    "",
    "plain",
    "quote\"inside",
    "back\\slash",
    "new\nline",
    "car\rreturn",
    "tab\tstop",
    "null\u{0}byte",
    "bell\u{7}",
    "backspace\u{8}formfeed\u{c}",
    "esc\u{1b}[0m",
    "unit\u{1f}sep",
    "müł†ibyte → ünïcode",
    "emoji \u{1F600} astral",
    "\u{FFFD}\u{FFFF}",
    "ends with backslash\\",
    "\"",
    "\\u0041 looks like an escape",
    "//slashes// and </script>",
];

/// Interesting numbers, including the non-finite values that must
/// degrade to `null` rather than produce unparseable output.
const NASTY_NUMS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.1,
    -2.5e-10,
    1e300,
    -1e300,
    9.0e15,      // just past the undecorated-integer cutoff
    8.999999e15, // just under it
    f64::MIN_POSITIVE,
    f64::EPSILON,
    f64::MAX,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    i64::MAX as f64,
    i64::MIN as f64,
];

/// A random JSON value with structure depth at most `depth`.
fn gen_value(r: &mut Rng, depth: usize) -> Json {
    let pick = if depth == 0 { r.below(4) } else { r.below(6) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(r.next_bool()),
        2 => {
            if r.chance(1, 3) {
                Json::Num(NASTY_NUMS[r.below(NASTY_NUMS.len())])
            } else {
                // Random finite doubles from raw bits (resample the rare
                // NaN patterns — the constant pool already covers NaN).
                let mut bits = r.next_u64();
                while !f64::from_bits(bits).is_finite() {
                    bits = r.next_u64();
                }
                Json::Num(f64::from_bits(bits))
            }
        }
        3 => {
            if r.chance(1, 2) {
                Json::Str(NASTY_STRINGS[r.below(NASTY_STRINGS.len())].to_string())
            } else {
                let len = r.below(12);
                let s: String = (0..len)
                    .map(|_| char::from_u32(r.next_u32() % 0xD800).unwrap_or('?'))
                    .collect();
                Json::Str(s)
            }
        }
        4 => {
            let len = r.below(5);
            Json::Arr((0..len).map(|_| gen_value(r, depth - 1)).collect())
        }
        _ => {
            let len = r.below(5);
            Json::Obj(
                (0..len)
                    .map(|i| {
                        let key = if r.chance(1, 4) {
                            // Duplicate-ish and nasty keys are legal JSON.
                            NASTY_STRINGS[r.below(NASTY_STRINGS.len())].to_string()
                        } else {
                            format!("k{i}")
                        };
                        (key, gen_value(r, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// What the emitter documents: non-finite numbers print as `null`.
fn normalize(v: &Json) -> Json {
    match v {
        Json::Num(n) if !n.is_finite() => Json::Null,
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), normalize(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn random_values_round_trip_for_500_seeds() {
    for seed in 0..500u64 {
        let mut r = Rng::new(seed);
        let v = gen_value(&mut r, 5);
        // Print the *raw* value (exercising the non-finite → null path in
        // the emitter) and expect the normalised value back.
        let printed = v.to_pretty();
        let back = parse(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: emitted JSON failed to parse: {e}\n{printed}")
        });
        assert_eq!(back, normalize(&v), "seed {seed} round-trip mismatch");
    }
}

#[test]
fn non_finite_floats_normalize_to_null_and_stay_parseable() {
    for seed in 0..100u64 {
        let mut r = Rng::new(0xF10A7 + seed);
        // Force plenty of non-finite leaves into the structure.
        let v = Json::Arr(vec![
            gen_value(&mut r, 3),
            Json::Num(f64::NAN),
            Json::Obj(vec![("inf".into(), Json::Num(f64::INFINITY))]),
            Json::Num(f64::NEG_INFINITY),
        ]);
        let printed = v.to_pretty();
        let back = parse(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        assert_eq!(back, normalize(&v), "seed {seed}");
    }
}

#[test]
fn deep_nesting_round_trips() {
    // 300 alternating array/object levels around one string leaf.
    let mut v = Json::Str("bottom".into());
    for i in 0..300 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::Obj(vec![(format!("level{i}"), v)])
        };
    }
    let printed = v.to_pretty();
    assert_eq!(parse(&printed).unwrap(), v);
}

#[test]
fn nasty_strings_round_trip_as_values_and_keys() {
    for (i, s) in NASTY_STRINGS.iter().enumerate() {
        let v = Json::Obj(vec![(s.to_string(), Json::Str(s.to_string()))]);
        let printed = v.to_pretty();
        let back = parse(&printed).unwrap_or_else(|e| panic!("string {i}: {e}\n{printed}"));
        assert_eq!(back, v, "string {i} ({s:?})");
    }
}
