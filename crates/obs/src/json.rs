//! A minimal JSON value, parser and emitter.
//!
//! Enough JSON for the repo's machine-readable artefacts
//! (`BENCH_*.json`, obs run reports): objects keep insertion order, the
//! parser is a strict recursive-descent over the standard grammar (with
//! `\uXXXX` basic-plane escapes), and the emitter renders numbers in
//! shortest-round-trip form with integers undecorated. No external
//! crates — the build is offline.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (stable diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key→value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no insignificant whitespace and no
    /// trailing newline — the NDJSON framing form ([`crate::ndjson`]).
    /// String contents are escaped, so the output never contains a raw
    /// newline regardless of the value.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => out.push_str(&format_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => out.push_str(&format_num(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Render a number: integers undecorated, everything else in Rust's
/// shortest-round-trip float form. JSON has no NaN/Infinity, so
/// non-finite values degrade to `null` (the `JSON.stringify` convention)
/// instead of emitting an unparseable document.
fn format_num(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].get("b"), Some(&Json::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let src = r#"{"bench": "evaluate_all", "wall_s_median": 0.385604, "stages_s": {"compile": 0.134046}, "list": [1, 2.5, "x"], "empty": {}}"#;
        let v = parse(src).unwrap();
        let printed = v.to_pretty();
        assert_eq!(parse(&printed).unwrap(), v);
        // Integers print undecorated; floats round-trip.
        assert!(printed.contains("\"list\""));
        assert!(printed.contains("0.385604"));
    }

    #[test]
    fn compact_form_is_one_line_and_round_trips() {
        let src = r#"{"a": [1, {"b": null}], "s": "x\ny", "empty": {}, "e": []}"#;
        let v = parse(src).unwrap();
        let compact = v.to_compact();
        assert!(!compact.contains('\n'), "{compact}");
        assert!(!compact.contains(": "), "{compact}");
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(
            compact,
            r#"{"a":[1,{"b":null}],"s":"x\ny","empty":{},"e":[]}"#
        );
    }

    #[test]
    fn non_finite_numbers_emit_null_not_invalid_json() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("x".into(), Json::Num(bad))]);
            let printed = doc.to_pretty();
            let back = parse(&printed).expect("emitted JSON must parse");
            assert_eq!(back.get("x"), Some(&Json::Null), "{printed}");
        }
    }

    #[test]
    fn parses_the_committed_bench_schema() {
        let src = r#"{
  "bench": "evaluate_all",
  "pairs": 104,
  "stages_s": {
    "build_ir": 0.000124
  },
  "threads": 1
}
"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("pairs").unwrap().as_f64(), Some(104.0));
        assert_eq!(
            v.get("stages_s").unwrap().get("build_ir").unwrap().as_f64(),
            Some(0.000124)
        );
    }
}
