//! Newline-delimited JSON framing for streamed run reports.
//!
//! The serve layer streams one compact JSON document per line
//! (`application/x-ndjson`): every line parses independently through
//! [`crate::json::parse`], so a client can act on each completed job
//! without waiting for the end of the stream. [`line`] renders one value
//! in that framing, [`Writer`] emits and flushes lines incrementally, and
//! [`parse_lines`] decodes a whole stream back into values (the test-side
//! inverse).

use std::io;

use crate::json::{parse, Json, ParseError};

/// Render one value as an NDJSON line: compact single-line form plus the
/// terminating `\n`. Compact rendering escapes string contents, so the
/// returned line contains exactly one newline — the terminator.
pub fn line(value: &Json) -> String {
    let mut s = value.to_compact();
    s.push('\n');
    s
}

/// Decode an NDJSON stream: one value per non-empty line. Blank lines
/// (and a trailing newline) are tolerated; any malformed line fails the
/// whole decode with its 1-based line number.
pub fn parse_lines(text: &str) -> Result<Vec<Json>, String> {
    let mut out = Vec::new();
    for (i, l) in text.lines().enumerate() {
        if l.trim().is_empty() {
            continue;
        }
        let v = parse(l).map_err(|e: ParseError| format!("line {}: {e}", i + 1))?;
        out.push(v);
    }
    Ok(out)
}

/// Incremental NDJSON emitter over any [`io::Write`]; each [`Writer::write`]
/// renders one line and flushes it, so a streamed HTTP response delivers
/// the line as soon as the job behind it completes.
pub struct Writer<W: io::Write> {
    sink: W,
    lines: u64,
}

impl<W: io::Write> Writer<W> {
    /// Wrap a sink.
    pub fn new(sink: W) -> Self {
        Writer { sink, lines: 0 }
    }

    /// Emit one value as a line and flush it down the sink.
    pub fn write(&mut self, value: &Json) -> io::Result<()> {
        self.sink.write_all(line(value).as_bytes())?;
        self.sink.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwrap the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(i: u64) -> Json {
        Json::Obj(vec![
            ("obs_version".into(), Json::Num(1.0)),
            ("job".into(), Json::Num(i as f64)),
            ("note".into(), Json::Str(format!("line\nbreak {i}"))),
        ])
    }

    #[test]
    fn each_line_is_self_contained() {
        let l = line(&report(3));
        assert!(l.ends_with('\n'));
        assert_eq!(l.matches('\n').count(), 1, "{l:?}");
        let back = parse(l.trim_end()).unwrap();
        assert_eq!(back.get("job").unwrap().as_f64(), Some(3.0));
        assert_eq!(back.get("note").unwrap().as_str(), Some("line\nbreak 3"));
    }

    #[test]
    fn writer_streams_and_parse_lines_inverts() {
        let mut w = Writer::new(Vec::new());
        for i in 0..4 {
            w.write(&report(i)).unwrap();
        }
        assert_eq!(w.lines(), 4);
        let text = String::from_utf8(w.into_inner()).unwrap();
        let values = parse_lines(&text).unwrap();
        assert_eq!(values.len(), 4);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(v.get("job").unwrap().as_f64(), Some(i as f64));
        }
    }

    #[test]
    fn blank_lines_are_tolerated_and_garbage_is_located() {
        let ok = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_lines("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
