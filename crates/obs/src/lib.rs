//! # tta-obs — observability for the TTA soft-core pipeline
//!
//! A dependency-free instrumentation layer (std atomics only — the build
//! is offline) with three pieces:
//!
//! * **Hierarchical timing spans** ([`span`]) — RAII guards that charge
//!   wall time to a `(name, parent)` slot in a global lock-free registry.
//!   Nesting is tracked per thread; a parent can be carried across a
//!   thread boundary with [`span::current`] + [`span::attach`], so worker
//!   pools aggregate under the span that spawned them.
//! * **Monotonic counters and gauges** ([`counter`]) — named `u64`/`i64`
//!   cells in the same style of registry, updated with relaxed atomics.
//! * **Log₂-bucketed histograms** ([`hist`]) — fixed-size lock-free
//!   latency histograms in the same interned-registry design, with
//!   merge and quantile queries (the serve layer's per-job latencies).
//! * **A flight recorder** ([`flight`]) — a bounded ring buffer of
//!   recent structured events (request/job/shutdown transitions),
//!   dumpable to stderr on panic or timeout and servable as JSON.
//! * **A machine-readable run report** ([`report`]) — a stable JSON
//!   rendering of every span, counter, and histogram, embedded by the
//!   bench binaries into `BENCH_*.json` and diffed by `bench_report` in
//!   CI.
//! * **Prometheus text exposition** ([`prom`]) — the same registries
//!   rendered for a `GET /v1/metrics` scrape.
//! * **NDJSON framing** ([`ndjson`]) — one compact JSON document per
//!   line, the streaming form of the serve layer's per-job run reports.
//! * **A Chrome trace-event exporter** ([`trace`]) — serialises host
//!   spans and guest cycle activity into one `.trace.json` that loads in
//!   Perfetto / `about:tracing`.
//!
//! Instrumentation never changes *what* the instrumented code computes —
//! simulators flush their already-collected [`SimStats`]-style totals
//! after a run instead of counting in the cycle loop — so cycle snapshots
//! stay bit-identical whether observability is enabled or not. The global
//! [`enabled`] switch (env: `TTA_OBS=0` via [`init_from_env`]) reduces
//! every probe to one relaxed atomic load for timing-purist runs.
//!
//! [`SimStats`]: https://docs.rs/ (tta-sim)

#![warn(missing_docs)]

pub mod counter;
pub mod flight;
pub mod hist;
pub mod json;
pub mod ndjson;
pub mod prom;
pub mod report;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use span::{attach, current, span, span_under, Span, SpanHandle};
pub use trace::TraceBuilder;

/// Global on/off switch; `true` at startup.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is currently recording. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide. Disabling does not clear data
/// already recorded ([`reset`] does).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Apply the `TTA_OBS` environment variable: `0`, `off` or `false`
/// disables recording; anything else (or unset) leaves it enabled.
/// Binaries call this once at startup.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("TTA_OBS") {
        let v = v.trim().to_ascii_lowercase();
        set_enabled(!matches!(v.as_str(), "0" | "off" | "false"));
    }
}

/// Zero every span total, counter/gauge value, and histogram (slot names
/// stay interned, so handles remain valid).
pub fn reset() {
    span::reset();
    counter::reset();
    hist::reset();
}

/// Serialises this crate's own unit tests: they share one global
/// registry and one enabled flag, so tests that toggle or reset state
/// must not interleave.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_round_trips() {
        let _l = crate::test_lock();
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
