//! Prometheus text-exposition rendering of the obs registries.
//!
//! [`render`] serialises every counter, gauge, and histogram into the
//! Prometheus text format (version 0.0.4): dotted obs names are
//! [`sanitize`]d to metric-name charset and prefixed `tta_`, sections
//! come in a fixed order (counters, gauges, histograms), and each section
//! is sorted by name — so two scrapes of the same state are
//! byte-identical and diffs between scrapes are minimal.
//!
//! Histograms use the cumulative `_bucket{le="..."}` / `_sum` / `_count`
//! convention with the log₂ bucket bounds of [`crate::hist`]; the last
//! bucket renders as `le="+Inf"`. All exported values are integers — the
//! format never contains `NaN` or a bare `Inf`.

use crate::hist::{self, HistStat, BUCKETS};

/// Rewrite an obs probe name into the Prometheus metric-name charset:
/// every character outside `[a-zA-Z0-9_]` becomes `_`, and a leading
/// digit is escaped with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_counter(out: &mut String, name: &str, value: u64) {
    let m = format!("tta_{}", sanitize(name));
    out.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
}

fn push_gauge(out: &mut String, name: &str, value: i64) {
    let m = format!("tta_{}", sanitize(name));
    out.push_str(&format!("# TYPE {m} gauge\n{m} {value}\n"));
}

fn push_hist(out: &mut String, h: &HistStat) {
    let m = format!("tta_{}", sanitize(&h.name));
    out.push_str(&format!("# TYPE {m} histogram\n"));
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        cumulative = cumulative.saturating_add(h.buckets[i]);
        if i == BUCKETS - 1 {
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        } else {
            let le = hist::bucket_bound(i);
            // Only emit bounds up to the first bucket that already holds
            // every sample: keeps the exposition compact while still
            // spanning the recorded range (plus the mandatory +Inf).
            out.push_str(&format!("{m}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            if cumulative == h.count && h.buckets[i..].iter().skip(1).all(|&b| b == 0) {
                out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                break;
            }
        }
    }
    out.push_str(&format!("{m}_sum {}\n{m}_count {}\n", h.sum, h.count));
}

/// Escape a label *value* for the exposition format: backslash, double
/// quote, and newline get backslash-escaped (label values, unlike metric
/// names, may carry arbitrary text).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render one histogram metric split into labeled series: a single
/// `# TYPE` header for `name`, then cumulative `_bucket`/`_sum`/`_count`
/// lines per `(label_value, stat)` entry, each carrying
/// `{<label_key>="<label_value>"}`. Series render in the given order —
/// pass them pre-sorted for deterministic scrapes. Empty `series`
/// renders nothing (no dangling header).
pub fn push_labeled_hist(
    out: &mut String,
    name: &str,
    label_key: &str,
    series: &[(String, HistStat)],
) {
    if series.is_empty() {
        return;
    }
    let m = format!("tta_{}", sanitize(name));
    let k = sanitize(label_key);
    out.push_str(&format!("# TYPE {m} histogram\n"));
    for (value, h) in series {
        let v = escape_label_value(value);
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative = cumulative.saturating_add(h.buckets[i]);
            if i == BUCKETS - 1 {
                out.push_str(&format!(
                    "{m}_bucket{{{k}=\"{v}\",le=\"+Inf\"}} {cumulative}\n"
                ));
            } else {
                let le = hist::bucket_bound(i);
                out.push_str(&format!(
                    "{m}_bucket{{{k}=\"{v}\",le=\"{le}\"}} {cumulative}\n"
                ));
                if cumulative == h.count && h.buckets[i..].iter().skip(1).all(|&b| b == 0) {
                    out.push_str(&format!(
                        "{m}_bucket{{{k}=\"{v}\",le=\"+Inf\"}} {cumulative}\n"
                    ));
                    break;
                }
            }
        }
        out.push_str(&format!(
            "{m}_sum{{{k}=\"{v}\"}} {}\n{m}_count{{{k}=\"{v}\"}} {}\n",
            h.sum, h.count
        ));
    }
}

/// Render `counters`, `gauges`, and `hists` (each already sorted by
/// name) into one exposition document — the pure core of [`render`].
pub fn render_parts(
    counters: &[(String, u64)],
    gauges: &[(String, i64)],
    hists: &[HistStat],
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        push_counter(&mut out, name, *value);
    }
    for (name, value) in gauges {
        push_gauge(&mut out, name, *value);
    }
    for h in hists {
        push_hist(&mut out, h);
    }
    out
}

/// Render the global registries (counters, then gauges, then histograms,
/// each sorted by name) as one Prometheus text-exposition document.
pub fn render() -> String {
    render_parts(
        &crate::counter::snapshot(),
        &crate::counter::snapshot_gauges(),
        &hist::snapshot(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal exposition-format checker: every non-comment line is
    /// `name[{labels}] value` with a finite numeric value; returns the
    /// metric names in order of first appearance.
    fn check_exposition(text: &str) -> Vec<String> {
        let mut names = Vec::new();
        for line in text.lines() {
            if line.starts_with('#') {
                let mut parts = line.split_whitespace();
                assert_eq!(parts.next(), Some("#"));
                assert_eq!(parts.next(), Some("TYPE"), "{line}");
                assert!(parts.next().is_some(), "{line}");
                assert!(
                    matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                    "{line}"
                );
                continue;
            }
            assert!(!line.trim().is_empty(), "no blank lines in the body");
            let (name_part, value_part) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("{line:?}"));
            let value: f64 = value_part
                .parse()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
            assert!(value.is_finite(), "non-finite value in {line:?}");
            let base = name_part.split('{').next().unwrap().to_string();
            assert!(
                base.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {base:?}"
            );
            if names.last() != Some(&base) {
                names.push(base);
            }
        }
        names
    }

    #[test]
    fn sanitize_maps_to_metric_charset() {
        assert_eq!(sanitize("serve.requests.batch"), "serve_requests_batch");
        assert_eq!(sanitize("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("already_fine_1"), "already_fine_1");
    }

    #[test]
    fn parts_render_parseable_and_ordered() {
        let counters = vec![("serve.a".to_string(), 3u64), ("serve.b".to_string(), 9)];
        let gauges = vec![("queue.depth".to_string(), -2i64)];
        let mut h = HistStat::new("job.us");
        h.observe(0);
        h.observe(5);
        h.observe(1000);
        let text = render_parts(&counters, &gauges, &[h]);
        let names = check_exposition(&text);
        // Fixed section order, sorted within sections; histogram expands
        // into its three series.
        assert_eq!(
            names,
            [
                "tta_serve_a",
                "tta_serve_b",
                "tta_queue_depth",
                "tta_job_us_bucket",
                "tta_job_us_sum",
                "tta_job_us_count"
            ]
        );
        assert!(text.contains("tta_queue_depth -2\n"));
        // Cumulative buckets: le="0" holds the zero sample, +Inf all.
        assert!(text.contains("tta_job_us_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("tta_job_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("tta_job_us_sum 1005\n"));
        assert!(text.contains("tta_job_us_count 3\n"));
        // Buckets are cumulative and monotonic.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn rendering_is_deterministic_and_truncates_empty_tail() {
        let mut h = HistStat::new("short.us");
        h.observe(7);
        let a = render_parts(&[], &[], std::slice::from_ref(&h));
        let b = render_parts(&[], &[], std::slice::from_ref(&h));
        assert_eq!(a, b, "two renders of the same state are byte-identical");
        // The tail above the largest sample is elided but +Inf remains.
        assert!(a.contains("le=\"7\""));
        assert!(!a.contains("le=\"15\""), "{a}");
        assert!(a.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn labeled_hist_renders_one_header_and_per_label_series() {
        let mut fast = HistStat::new("ignored");
        fast.observe(3);
        fast.observe(5);
        let mut slow = HistStat::new("ignored");
        slow.observe(4000);
        let mut out = String::new();
        push_labeled_hist(
            &mut out,
            "serve.job.kernel_us",
            "kernel",
            &[("sha".into(), fast), ("aes".into(), slow)],
        );
        check_exposition(&out);
        assert_eq!(
            out.matches("# TYPE tta_serve_job_kernel_us histogram")
                .count(),
            1,
            "one TYPE header for the whole family:\n{out}"
        );
        assert!(out.contains("tta_serve_job_kernel_us_bucket{kernel=\"sha\",le=\"+Inf\"} 2"));
        assert!(out.contains("tta_serve_job_kernel_us_bucket{kernel=\"aes\",le=\"+Inf\"} 1"));
        assert!(out.contains("tta_serve_job_kernel_us_sum{kernel=\"sha\"} 8"));
        assert!(out.contains("tta_serve_job_kernel_us_count{kernel=\"aes\"} 1"));
        // Series order follows input order (deterministic scrapes).
        let sha_at = out.find("kernel=\"sha\"").unwrap();
        let aes_at = out.find("kernel=\"aes\"").unwrap();
        assert!(sha_at < aes_at);
    }

    #[test]
    fn labeled_hist_escapes_values_and_elides_empty_input() {
        let mut out = String::new();
        push_labeled_hist(&mut out, "x.y", "kernel", &[]);
        assert!(out.is_empty(), "no dangling header for empty series");
        let mut h = HistStat::new("ignored");
        h.observe(1);
        push_labeled_hist(&mut out, "x.y", "kernel", &[("a\"b\\c".into(), h)]);
        assert!(out.contains("kernel=\"a\\\"b\\\\c\""), "{out}");
    }

    #[test]
    fn global_render_reflects_recorded_probes() {
        let _l = crate::test_lock();
        crate::counter::add("prom_test_counter", 2);
        crate::counter::set_gauge("prom_test_gauge", 5);
        crate::hist::record("prom_test_hist", 100);
        let text = render();
        check_exposition(&text);
        assert!(text.contains("tta_prom_test_counter"));
        assert!(text.contains("tta_prom_test_gauge 5"));
        assert!(text.contains("tta_prom_test_hist_count"));
        assert!(!text.contains("NaN"));
    }
}
