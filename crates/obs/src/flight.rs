//! A bounded ring-buffer flight recorder for structured events.
//!
//! The serve layer records request/job/shutdown transitions here so a
//! hang, panic, or timed-out job leaves in-process evidence behind: the
//! last [`DEFAULT_CAPACITY`] events survive in arrival order, older ones
//! are overwritten (and tallied), and the whole ring can be dumped to
//! stderr on a panic or deadline expiry, or served over the wire as JSON
//! (`GET /v1/debug/flight`).
//!
//! Events are cheap but not free — one short mutex hold plus two string
//! copies — so they belong on request/job transitions, not in cycle
//! loops. The recorder honours the global [`crate::enabled`] switch like
//! every other probe.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Events the global ring retains; older events are overwritten.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives overwrites).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub at_ms: f64,
    /// Event kind, a stable dotted name (`"req.start"`, `"job.timeout"`).
    pub kind: &'static str,
    /// The request trace ID this event belongs to (empty for
    /// process-level events like shutdown transitions).
    pub trace: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl Event {
    /// The event as a JSON object (the `/v1/debug/flight` line shape).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::Num(self.seq as f64)),
            ("at_ms".into(), Json::Num((self.at_ms * 1e3).round() / 1e3)),
            ("kind".into(), Json::Str(self.kind.into())),
            ("trace".into(), Json::Str(self.trace.clone())),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }
}

struct Inner {
    events: VecDeque<Event>,
    next_seq: u64,
    overwritten: u64,
    start: Instant,
}

/// A bounded event ring. The process-wide instance backs the module
/// functions; tests build their own so assertions cannot race the global.
pub struct Flight {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Flight {
    /// An empty recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Flight {
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                next_seq: 0,
                overwritten: 0,
                start: Instant::now(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking recorder caller must not silence the recorder — the
        // panic path is exactly when the ring is read back.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one event, overwriting the oldest when full.
    pub fn record(&self, kind: &'static str, trace: &str, detail: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let mut g = self.lock();
        let at_ms = g.start.elapsed().as_secs_f64() * 1e3;
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.events.len() >= self.capacity {
            g.events.pop_front();
            g.overwritten += 1;
        }
        g.events.push_back(Event {
            seq,
            at_ms,
            kind,
            trace: trace.to_string(),
            detail: detail.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// How many events have been overwritten by ring wraparound.
    pub fn overwritten(&self) -> u64 {
        self.lock().overwritten
    }

    /// Drop every retained event (sequence numbers keep counting).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.events.clear();
        g.overwritten = 0;
    }

    /// The ring as one JSON object: capacity, overwrite tally, events in
    /// order.
    pub fn to_json(&self) -> Json {
        let g = self.lock();
        Json::Obj(vec![
            ("capacity".into(), Json::Num(self.capacity as f64)),
            ("overwritten".into(), Json::Num(g.overwritten as f64)),
            (
                "events".into(),
                Json::Arr(g.events.iter().map(Event::to_json).collect()),
            ),
        ])
    }

    /// Dump the ring to stderr, one line per event, bracketed by `reason`
    /// — the black-box readout for panics and expired deadlines.
    pub fn dump(&self, reason: &str) {
        let events = self.snapshot();
        eprintln!(
            "=== flight recorder dump ({reason}): {} events ===",
            events.len()
        );
        for e in &events {
            eprintln!(
                "  #{:<6} {:>10.3}ms {:<14} [{}] {}",
                e.seq, e.at_ms, e.kind, e.trace, e.detail
            );
        }
        eprintln!("=== end flight recorder dump ===");
    }
}

/// The process-wide recorder behind the module-level functions.
pub fn global() -> &'static Flight {
    static FLIGHT: OnceLock<Flight> = OnceLock::new();
    FLIGHT.get_or_init(|| Flight::new(DEFAULT_CAPACITY))
}

/// Record one event on the global ring.
pub fn record(kind: &'static str, trace: &str, detail: impl Into<String>) {
    global().record(kind, trace, detail);
}

/// Snapshot the global ring, oldest first.
pub fn snapshot() -> Vec<Event> {
    global().snapshot()
}

/// The global ring as JSON.
pub fn to_json() -> Json {
    global().to_json()
}

/// Dump the global ring to stderr.
pub fn dump(reason: &str) {
    global().dump(reason);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_arrive_in_order_with_timestamps() {
        let f = Flight::new(8);
        f.record("t.start", "trace-1", "first");
        f.record("t.end", "trace-1", "second");
        let events = f.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "t.start");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[1].at_ms >= events[0].at_ms);
        assert_eq!(events[0].trace, "trace-1");
    }

    #[test]
    fn ring_overwrites_oldest_and_tallies() {
        let f = Flight::new(3);
        for i in 0..5 {
            f.record("t.tick", "", format!("event {i}"));
        }
        let events = f.snapshot();
        assert_eq!(events.len(), 3);
        // Oldest two were overwritten; the survivors are 2, 3, 4.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].detail, "event 4");
        assert_eq!(f.overwritten(), 2);
        f.clear();
        assert!(f.snapshot().is_empty());
        assert_eq!(f.overwritten(), 0);
        // Sequence numbers keep counting after a clear.
        f.record("t.tick", "", "after clear");
        assert_eq!(f.snapshot()[0].seq, 5);
    }

    #[test]
    fn json_shape_round_trips() {
        let f = Flight::new(4);
        f.record("t.json", "trace-x", "detail text");
        let j = f.to_json();
        assert_eq!(j.get("capacity").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.get("overwritten").unwrap().as_f64(), Some(0.0));
        let Some(Json::Arr(events)) = j.get("events") else {
            panic!("events must be an array");
        };
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("kind").unwrap().as_str(), Some("t.json"));
        assert_eq!(e.get("trace").unwrap().as_str(), Some("trace-x"));
        assert_eq!(e.get("detail").unwrap().as_str(), Some("detail text"));
        // The rendered document parses back.
        let rt = crate::json::parse(&j.to_pretty()).unwrap();
        assert_eq!(rt, j);
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = crate::test_lock();
        let f = Flight::new(4);
        crate::set_enabled(false);
        f.record("t.off", "", "ignored");
        crate::set_enabled(true);
        assert!(f.snapshot().is_empty());
    }

    #[test]
    fn concurrent_records_keep_unique_seqs() {
        let f = Flight::new(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        f.record("t.mt", "", "");
                    }
                });
            }
        });
        let events = f.snapshot();
        assert_eq!(events.len(), 64);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 64, "sequence numbers are unique");
    }
}
