//! Chrome trace-event export (Perfetto / `about:tracing`).
//!
//! Builds a `.trace.json` document in the Trace Event Format: a single
//! object with a `traceEvents` array of `"X"` (complete) and `"C"`
//! (counter) events, plus `"M"` metadata events naming processes and
//! threads. The output loads directly in <https://ui.perfetto.dev> or
//! `chrome://tracing`.
//!
//! Two producers feed one file:
//!
//! * **Host spans** ([`TraceBuilder::add_host_spans`]) — the aggregate
//!   span registry is rendered as a synthetic flame layout: each span
//!   slot becomes one `"X"` event whose duration is its *total*
//!   thread-seconds, laid out left-to-right inside its parent's window.
//!   This visualises where toolchain time went, not a faithful
//!   chronology (the registry stores totals, not individual enters).
//! * **Guest activity** ([`TraceBuilder::counter`]) — per-cycle-bucket
//!   counter tracks (bus moves, RF port traffic, FU issue) emitted by
//!   the profiling pipeline in `crates/explore`, on a timeline where one
//!   simulated cycle is one microsecond.
//!
//! Timestamps are in microseconds, per the format.

use crate::json::Json;
use std::collections::HashMap;

/// Incrementally builds one Chrome trace-event document.
#[derive(Default)]
pub struct TraceBuilder {
    events: Vec<Json>,
}

/// Shorthand for an ordered JSON object.
fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of events added so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Metadata event naming process `pid` in the viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata("process_name", pid, 0, name);
    }

    /// Metadata event naming thread `tid` of process `pid`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, tid, name);
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: u64, name: &str) {
        self.events.push(obj(vec![
            ("name", Json::Str(kind.into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(pid as f64)),
            ("tid", Json::Num(tid as f64)),
            ("args", obj(vec![("name", Json::Str(name.into()))])),
        ]));
    }

    /// A complete (`"X"`) event: `name` ran on `pid`/`tid` from `ts_us`
    /// for `dur_us` microseconds. Extra `args` become the event's args
    /// object.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(&str, Json)>,
    ) {
        self.events.push(obj(vec![
            ("name", Json::Str(name.into())),
            ("ph", Json::Str("X".into())),
            ("pid", Json::Num(pid as f64)),
            ("tid", Json::Num(tid as f64)),
            ("ts", Json::Num(ts_us)),
            ("dur", Json::Num(dur_us.max(0.0))),
            ("args", obj(args)),
        ]));
    }

    /// A counter (`"C"`) event: one sample of the named track's series
    /// at `ts_us`. Each `(series, value)` pair renders as a stacked area
    /// in the viewer.
    pub fn counter(&mut self, pid: u64, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        let args = series
            .iter()
            .map(|&(k, v)| (k, Json::Num(v)))
            .collect::<Vec<_>>();
        self.events.push(obj(vec![
            ("name", Json::Str(name.into())),
            ("ph", Json::Str("C".into())),
            ("pid", Json::Num(pid as f64)),
            ("tid", Json::Num(0.0)),
            ("ts", Json::Num(ts_us)),
            ("args", obj(args)),
        ]));
    }

    /// Render the current span-registry snapshot as a synthetic flame
    /// layout on process `pid`, thread 0 (see the module docs for what
    /// "synthetic" means). Returns the number of events added.
    pub fn add_host_spans(&mut self, pid: u64) -> usize {
        let snap = crate::span::snapshot();
        let before = self.events.len();
        // Snapshot order is sorted by path, so every parent precedes its
        // children (a parent path is a strict prefix).
        let mut start_us: HashMap<String, f64> = HashMap::new();
        let mut end_us: HashMap<String, f64> = HashMap::new();
        // Next free offset inside each parent's window.
        let mut cursor_us: HashMap<String, f64> = HashMap::new();
        for s in &snap {
            let (parent, leaf) = match s.path.rsplit_once('/') {
                Some((p, l)) => (p.to_string(), l),
                None => (String::new(), s.path.as_str()),
            };
            let parent_start = start_us.get(&parent).copied().unwrap_or(0.0);
            let cur = cursor_us.entry(parent.clone()).or_insert(0.0);
            let ts = parent_start + *cur;
            let mut dur = s.total_s * 1e6;
            // Children are thread-seconds and may sum past the parent's
            // wall window; clamp so the flame stays visually nested.
            if let Some(&pe) = end_us.get(&parent) {
                dur = dur.min((pe - ts).max(0.0));
            }
            *cur += dur;
            start_us.insert(s.path.clone(), ts);
            end_us.insert(s.path.clone(), ts + dur);
            self.complete(
                pid,
                0,
                leaf,
                ts,
                dur,
                vec![
                    ("path", Json::Str(s.path.clone())),
                    ("count", Json::Num(s.count as f64)),
                    ("total_s", Json::Num(s.total_s)),
                ],
            );
        }
        self.events.len() - before
    }

    /// The finished document: `{"displayTimeUnit": "ms", "traceEvents":
    /// [...]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            ("traceEvents".into(), Json::Arr(self.events.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural validity: what Perfetto's importer requires of each
    /// event (shared with the explore-side trace test).
    fn assert_valid_trace(doc: &Json) {
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(ev)) => ev,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
            assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
            assert!(ev.get("pid").and_then(|p| p.as_f64()).is_some());
            assert!(ev.get("tid").and_then(|t| t.as_f64()).is_some());
            match ph {
                "M" => {}
                "X" => {
                    assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                    let dur = ev.get("dur").and_then(|d| d.as_f64()).expect("dur");
                    assert!(dur >= 0.0);
                }
                "C" => {
                    assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                    assert!(matches!(ev.get("args"), Some(Json::Obj(_))));
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
    }

    #[test]
    fn builder_emits_structurally_valid_events() {
        let mut t = TraceBuilder::new();
        t.process_name(1, "guest");
        t.thread_name(1, 0, "cycles");
        t.complete(
            1,
            0,
            "kernel",
            0.0,
            125.0,
            vec![("cycles", Json::Num(125.0))],
        );
        t.counter(1, "bus moves", 0.0, &[("bus0", 1.5), ("bus1", 0.25)]);
        t.counter(1, "bus moves", 64.0, &[("bus0", 2.0), ("bus1", 0.0)]);
        assert_eq!(t.event_count(), 5);
        let doc = t.to_json();
        assert_valid_trace(&doc);
        // And the emitted text parses back identically.
        let text = doc.to_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = TraceBuilder::new();
        t.complete(0, 0, "x", 10.0, -5.0, vec![]);
        let doc = t.to_json();
        let ev = match doc.get("traceEvents") {
            Some(Json::Arr(ev)) => &ev[0],
            _ => unreachable!(),
        };
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn host_spans_render_as_a_nested_flame() {
        let _l = crate::test_lock();
        {
            let _a = crate::span("trace_test_root");
            let _b = crate::span("trace_test_mid");
            let _c = crate::span("trace_test_leaf");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut t = TraceBuilder::new();
        t.process_name(0, "host");
        let added = t.add_host_spans(0);
        assert!(added >= 3, "{added}");
        let doc = t.to_json();
        assert_valid_trace(&doc);

        let events = match doc.get("traceEvents") {
            Some(Json::Arr(ev)) => ev,
            _ => unreachable!(),
        };
        let window = |path: &str| -> (f64, f64) {
            let ev = events
                .iter()
                .find(|e| {
                    e.get("args")
                        .and_then(|a| a.get("path"))
                        .and_then(|p| p.as_str())
                        == Some(path)
                })
                .unwrap_or_else(|| panic!("no event for {path}"));
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            let dur = ev.get("dur").unwrap().as_f64().unwrap();
            (ts, ts + dur)
        };
        let root = window("trace_test_root");
        let mid = window("trace_test_root/trace_test_mid");
        let leaf = window("trace_test_root/trace_test_mid/trace_test_leaf");
        let eps = 1e-6;
        assert!(
            mid.0 >= root.0 - eps && mid.1 <= root.1 + eps,
            "{root:?} {mid:?}"
        );
        assert!(
            leaf.0 >= mid.0 - eps && leaf.1 <= mid.1 + eps,
            "{mid:?} {leaf:?}"
        );
        assert!(leaf.1 > leaf.0, "leaf has non-zero duration");
    }
}
