//! Fixed-size, lock-free, log₂-bucketed latency histograms.
//!
//! Same interned-registry design as [`crate::counter`]: histograms are
//! named by `&'static str`, slots are claimed on first use and never
//! freed, and a full registry degrades gracefully — new names record
//! nothing and bump the [`dropped`] tally while existing names keep
//! working. A [`record`] is one registry scan plus three relaxed
//! `fetch_add`s (bucket, count, sum) — no locks on the hot path.
//!
//! Values are bucketed by magnitude: bucket 0 holds exact zeros and
//! bucket `k` (1..=64) holds values in `[2^(k-1), 2^k)`, so the full
//! `u64` range — including `u64::MAX` — lands in a bucket and quantiles
//! are exact to within one power-of-two bucket width. Snapshots return
//! [`HistStat`] values that [`HistStat::merge`] across registries and
//! answer [`HistStat::quantile`] queries; the run report
//! ([`crate::report`]) nests them under a `"hists"` key.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Maximum distinct histogram names; later names are dropped.
pub const MAX_HISTS: usize = 64;

/// Bucket count: bucket 0 for zero, buckets 1..=64 for each power-of-two
/// magnitude, so every `u64` value has a home.
pub const BUCKETS: usize = 65;

const EMPTY: u8 = 0;
const READY: u8 = 2;

/// The bucket index `value` falls into: 0 for zero, otherwise the
/// position of the highest set bit plus one (`[2^(k-1), 2^k)` → `k`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `i` admits (its inclusive upper bound): 0,
/// then `2^i - 1`, saturating at `u64::MAX` for the last bucket.
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// One named histogram cell.
struct Cell {
    state: AtomicU8,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Cell {
    const fn new() -> Self {
        Cell {
            state: AtomicU8::new(EMPTY),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// The interned name; only valid on `READY` cells.
    fn name(&self) -> &'static str {
        let ptr = self.name_ptr.load(Ordering::Relaxed) as *const u8;
        let len = self.name_len.load(Ordering::Relaxed);
        // SAFETY: written exclusively from a `&'static str` under the
        // registration lock before `state` was released to `READY`.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
    }

    fn stat(&self) -> HistStat {
        let mut s = HistStat::new(self.name());
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s
    }
}

/// The histogram registry (counter-table shape: spinlocked insertion,
/// lock-free lookup and update).
struct Table {
    cells: [Cell; MAX_HISTS],
    next: AtomicUsize,
    lock: AtomicBool,
    dropped: AtomicU64,
}

impl Table {
    const fn new() -> Self {
        Table {
            cells: [const { Cell::new() }; MAX_HISTS],
            next: AtomicUsize::new(0),
            lock: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    fn find(&self, name: &str, hi: usize) -> Option<usize> {
        (0..hi.min(MAX_HISTS)).find(|&i| {
            let c = &self.cells[i];
            c.state.load(Ordering::Acquire) == READY && c.name() == name
        })
    }

    fn intern(&self, name: &'static str) -> Option<usize> {
        let hi = self.next.load(Ordering::Acquire);
        if let Some(i) = self.find(name, hi) {
            return Some(i);
        }
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let hi = self.next.load(Ordering::Acquire);
        let got = match self.find(name, hi) {
            Some(i) => Some(i),
            None if hi < MAX_HISTS => {
                let c = &self.cells[hi];
                c.name_ptr.store(name.as_ptr() as usize, Ordering::Relaxed);
                c.name_len.store(name.len(), Ordering::Relaxed);
                c.state.store(READY, Ordering::Release);
                self.next.store(hi + 1, Ordering::Release);
                Some(hi)
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        self.lock.store(false, Ordering::Release);
        got
    }

    fn record(&self, name: &'static str, value: u64) {
        if let Some(i) = self.intern(name) {
            let c = &self.cells[i];
            c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            c.count.fetch_add(1, Ordering::Relaxed);
            // Saturate the running sum so a pathological stream of huge
            // values degrades to "pinned at max" instead of wrapping.
            let mut cur = c.sum.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_add(value);
                match c
                    .sum
                    .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    fn get(&self, name: &str) -> Option<HistStat> {
        let hi = self.next.load(Ordering::Acquire);
        self.find(name, hi).map(|i| self.cells[i].stat())
    }

    fn snapshot(&self) -> Vec<HistStat> {
        let hi = self.next.load(Ordering::Acquire);
        let mut out: Vec<HistStat> = (0..hi.min(MAX_HISTS))
            .filter(|&i| self.cells[i].state.load(Ordering::Acquire) == READY)
            .map(|i| self.cells[i].stat())
            .filter(|s| s.count > 0)
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    fn reset(&self) {
        let hi = self.next.load(Ordering::Acquire);
        for c in self.cells.iter().take(hi.min(MAX_HISTS)) {
            c.count.store(0, Ordering::Relaxed);
            c.sum.store(0, Ordering::Relaxed);
            for b in &c.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

static HISTS: Table = Table::new();

/// Record one sample into the histogram `name` (interned on first use).
/// A no-op when recording is disabled or the registry is full.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    HISTS.record(name, value);
}

/// Snapshot the histogram `name`, or `None` if it was never touched.
pub fn get(name: &str) -> Option<HistStat> {
    HISTS.get(name)
}

/// All histograms with at least one sample, sorted by name.
pub fn snapshot() -> Vec<HistStat> {
    HISTS.snapshot()
}

/// How many records were refused because the registry was full.
pub fn dropped() -> u64 {
    HISTS.dropped.load(Ordering::Relaxed)
}

/// Zero every histogram plus the dropped tally (names stay interned).
pub fn reset() {
    HISTS.reset();
}

/// One histogram's snapshot: immutable to the registry, but usable as a
/// standalone accumulator via [`HistStat::observe`] (the bench harness
/// builds local histograms this way to cross-check exact percentiles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts ([`bucket_index`] layout).
    pub buckets: [u64; BUCKETS],
}

impl HistStat {
    /// An empty histogram named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        HistStat {
            name: name.into(),
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Add one sample to this local accumulator.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold `other`'s samples into `self` (saturating). Merging is
    /// commutative up to saturation; the caller pairs histograms by name.
    pub fn merge(&mut self, other: &HistStat) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `(0, 1]`), reported as the
    /// inclusive upper bound of the bucket holding that sample — exact to
    /// within one log₂ bucket width. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(BUCKETS - 1))
    }

    /// Mean sample value (0 when empty). Saturation in `sum` makes this a
    /// lower bound for pathological streams.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Merge two snapshot vectors by histogram name (union of names, sorted);
/// the registry-level form of [`HistStat::merge`].
pub fn merge_snapshots(a: &[HistStat], b: &[HistStat]) -> Vec<HistStat> {
    let mut out: Vec<HistStat> = a.to_vec();
    for h in b {
        match out.iter_mut().find(|x| x.name == h.name) {
            Some(x) => x.merge(h),
            None => out.push(h.clone()),
        }
    }
    out.sort_by(|x, y| x.name.cmp(&y.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket boundary: 2^k - 1 stays in bucket k, 2^k opens k+1.
        for k in 1..63usize {
            let low = 1u64 << k;
            assert_eq!(bucket_index(low - 1), k, "2^{k}-1");
            assert_eq!(bucket_index(low), k + 1, "2^{k}");
            assert_eq!(bucket_bound(k), low - 1);
        }
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = HistStat::new("hist_test_empty");
        assert_eq!(h.count, 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), 0.0);
        // Never-touched names are absent from the registry too.
        assert_eq!(get("hist_test_never"), None);
    }

    #[test]
    fn single_sample_defines_every_quantile() {
        let mut h = HistStat::new("hist_test_single");
        h.observe(100);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 100);
        let bound = bucket_bound(bucket_index(100));
        assert_eq!(h.quantile(0.01), Some(bound));
        assert_eq!(h.quantile(0.5), Some(bound));
        assert_eq!(h.quantile(1.0), Some(bound));
        // The quantile brackets the sample within one bucket.
        assert!((100..200).contains(&bound), "{bound}");
    }

    #[test]
    fn u64_max_saturates_without_wrapping() {
        let mut h = HistStat::new("hist_test_max");
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.buckets[BUCKETS - 1], 2);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn quantiles_track_the_sample_distribution() {
        let mut h = HistStat::new("hist_test_dist");
        // 90 fast samples (~8), 10 slow (~1000).
        for _ in 0..90 {
            h.observe(8);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert_eq!(p50, bucket_bound(bucket_index(8)), "p50 in the fast bucket");
        assert_eq!(
            p99,
            bucket_bound(bucket_index(1000)),
            "p99 in the slow bucket"
        );
        assert!(p99 > p50);
    }

    #[test]
    fn merge_of_disjoint_registries_unions_names_and_sums_buckets() {
        // Two "registries" (local tables to keep the global one clean).
        let a_table = Table::new();
        a_table.record("hist_test_merge_shared", 10);
        a_table.record("hist_test_merge_a_only", 3);
        let b_table = Table::new();
        b_table.record("hist_test_merge_shared", 5000);
        b_table.record("hist_test_merge_b_only", 7);

        let merged = merge_snapshots(&a_table.snapshot(), &b_table.snapshot());
        let names: Vec<&str> = merged.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "hist_test_merge_a_only",
                "hist_test_merge_b_only",
                "hist_test_merge_shared"
            ],
            "union of names, sorted"
        );
        let shared = &merged[2];
        assert_eq!(shared.count, 2);
        assert_eq!(shared.sum, 5010);
        assert_eq!(shared.buckets[bucket_index(10)], 1);
        assert_eq!(shared.buckets[bucket_index(5000)], 1);
    }

    #[test]
    fn global_registry_records_and_snapshots_sorted() {
        let _l = crate::test_lock();
        record("hist_test_global_b", 2);
        record("hist_test_global_a", 9);
        let snap = snapshot();
        for w in snap.windows(2) {
            assert!(w[0].name < w[1].name);
        }
        let h = get("hist_test_global_a").unwrap();
        assert!(h.count >= 1);
        assert!(h.sum >= 9);
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = crate::test_lock();
        crate::set_enabled(false);
        record("hist_test_disabled", 1);
        crate::set_enabled(true);
        assert_eq!(get("hist_test_disabled"), None);
    }

    #[test]
    fn concurrent_records_do_not_lose_samples() {
        let _l = crate::test_lock();
        let before = get("hist_test_mt").map_or(0, |h| h.count);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        record("hist_test_mt", i);
                    }
                });
            }
        });
        assert_eq!(get("hist_test_mt").unwrap().count, before + 4000);
    }

    #[test]
    fn full_registry_drops_new_names_and_counts_them() {
        // A *local* table, so overflowing it cannot poison the global one.
        let t = Table::new();
        for i in 0..MAX_HISTS {
            let name: &'static str = Box::leak(format!("hist_ovf_{i}").into_boxed_str());
            t.record(name, 1);
            assert!(t.get(name).is_some(), "slot {i}");
        }
        assert_eq!(t.dropped.load(Ordering::Relaxed), 0);
        let extra: &'static str = Box::leak("hist_ovf_overflow".to_string().into_boxed_str());
        t.record(extra, 1);
        t.record(extra, 1);
        assert_eq!(t.get(extra), None);
        assert_eq!(t.dropped.load(Ordering::Relaxed), 2);
        // Already-interned names keep recording.
        t.record("hist_ovf_0", 1);
        assert_eq!(t.get("hist_ovf_0").unwrap().count, 2);
        // reset() clears values and the tally, keeps names.
        t.reset();
        assert_eq!(t.dropped.load(Ordering::Relaxed), 0);
        assert_eq!(t.get("hist_ovf_0").unwrap().count, 0);
    }

    #[test]
    fn dropped_tally_is_zero_on_the_global_registry() {
        let _l = crate::test_lock();
        assert_eq!(dropped(), 0);
    }
}
