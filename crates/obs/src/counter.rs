//! Monotonic counters and gauges in a global lock-free registry.
//!
//! Counters ([`add`]) only grow; gauges ([`set_gauge`]) hold the last
//! value written. Both are named by `&'static str` and updated with
//! relaxed atomics: a probe is one registry scan plus one `fetch_add`
//! or `store`. Like spans, slots are interned on first use and never
//! freed; [`reset`] zeroes values but keeps names.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Maximum distinct counter names and gauge names (each kind has its own
/// table); later names are dropped.
pub const MAX_CELLS: usize = 256;

const EMPTY: u8 = 0;
const READY: u8 = 2;

/// One named atomic cell. The value is stored as `u64` bits; gauges
/// reinterpret them as `i64`.
struct Cell {
    state: AtomicU8,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    value: AtomicU64,
}

impl Cell {
    const fn new() -> Self {
        Cell {
            state: AtomicU8::new(EMPTY),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            value: AtomicU64::new(0),
        }
    }

    /// The interned name; only valid on `READY` cells.
    fn name(&self) -> &'static str {
        let ptr = self.name_ptr.load(Ordering::Relaxed) as *const u8;
        let len = self.name_len.load(Ordering::Relaxed);
        // SAFETY: written exclusively from a `&'static str` under the
        // registration lock before `state` was released to `READY`.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
    }
}

/// One table of named cells (counters and gauges each get one).
struct Table {
    cells: [Cell; MAX_CELLS],
    next: AtomicUsize,
    lock: AtomicBool,
    /// Updates refused because the table was full (new names only;
    /// already-interned names keep working).
    dropped: AtomicU64,
}

impl Table {
    const fn new() -> Self {
        Table {
            cells: [const { Cell::new() }; MAX_CELLS],
            next: AtomicUsize::new(0),
            lock: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    fn find(&self, name: &str, hi: usize) -> Option<usize> {
        (0..hi.min(MAX_CELLS)).find(|&i| {
            let c = &self.cells[i];
            c.state.load(Ordering::Acquire) == READY && c.name() == name
        })
    }

    fn intern(&self, name: &'static str) -> Option<usize> {
        let hi = self.next.load(Ordering::Acquire);
        if let Some(i) = self.find(name, hi) {
            return Some(i);
        }
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let hi = self.next.load(Ordering::Acquire);
        let got = match self.find(name, hi) {
            Some(i) => Some(i),
            None if hi < MAX_CELLS => {
                let c = &self.cells[hi];
                c.name_ptr.store(name.as_ptr() as usize, Ordering::Relaxed);
                c.name_len.store(name.len(), Ordering::Relaxed);
                c.state.store(READY, Ordering::Release);
                self.next.store(hi + 1, Ordering::Release);
                Some(hi)
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        self.lock.store(false, Ordering::Release);
        got
    }

    fn get(&self, name: &str) -> Option<u64> {
        let hi = self.next.load(Ordering::Acquire);
        self.find(name, hi)
            .map(|i| self.cells[i].value.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> Vec<(String, u64)> {
        let hi = self.next.load(Ordering::Acquire);
        let mut out: Vec<(String, u64)> = (0..hi.min(MAX_CELLS))
            .filter(|&i| self.cells[i].state.load(Ordering::Acquire) == READY)
            .map(|i| {
                (
                    self.cells[i].name().to_string(),
                    self.cells[i].value.load(Ordering::Relaxed),
                )
            })
            .collect();
        out.sort();
        out
    }

    fn reset(&self) {
        let hi = self.next.load(Ordering::Acquire);
        for i in 0..hi.min(MAX_CELLS) {
            self.cells[i].value.store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

static COUNTERS: Table = Table::new();
static GAUGES: Table = Table::new();

/// Add `delta` to the counter `name` (interned on first use). A no-op
/// when recording is disabled or the table is full.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    if let Some(i) = COUNTERS.intern(name) {
        COUNTERS.cells[i].value.fetch_add(delta, Ordering::Relaxed);
    }
}

/// Current value of the counter `name`, or `None` if it was never
/// touched.
pub fn get(name: &str) -> Option<u64> {
    COUNTERS.get(name)
}

/// Set the gauge `name` to `value` (last write wins). A no-op when
/// recording is disabled or the table is full.
#[inline]
pub fn set_gauge(name: &'static str, value: i64) {
    if !crate::enabled() {
        return;
    }
    if let Some(i) = GAUGES.intern(name) {
        GAUGES.cells[i].value.store(value as u64, Ordering::Relaxed);
    }
}

/// Current value of the gauge `name`, or `None` if it was never set.
pub fn get_gauge(name: &str) -> Option<i64> {
    GAUGES.get(name).map(|v| v as i64)
}

/// All counters, sorted by name.
pub fn snapshot() -> Vec<(String, u64)> {
    COUNTERS.snapshot()
}

/// All gauges, sorted by name.
pub fn snapshot_gauges() -> Vec<(String, i64)> {
    GAUGES
        .snapshot()
        .into_iter()
        .map(|(n, v)| (n, v as i64))
        .collect()
}

/// How many counter updates were refused because the table was full.
pub fn dropped() -> u64 {
    COUNTERS.dropped.load(Ordering::Relaxed)
}

/// How many gauge updates were refused because the table was full.
pub fn dropped_gauges() -> u64 {
    GAUGES.dropped.load(Ordering::Relaxed)
}

/// Zero every counter and gauge plus the dropped tallies (names stay
/// interned).
pub fn reset() {
    COUNTERS.reset();
    GAUGES.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let _l = crate::test_lock();
        add("ctr_test_acc", 2);
        add("ctr_test_acc", 3);
        assert!(get("ctr_test_acc").unwrap() >= 5);
        assert_eq!(get("ctr_test_never"), None);
    }

    #[test]
    fn gauges_take_last_value() {
        let _l = crate::test_lock();
        set_gauge("gauge_test_last", 7);
        set_gauge("gauge_test_last", -3);
        assert_eq!(get_gauge("gauge_test_last"), Some(-3));
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _l = crate::test_lock();
        crate::set_enabled(false);
        add("ctr_test_disabled", 1);
        set_gauge("gauge_test_disabled", 1);
        crate::set_enabled(true);
        assert_eq!(get("ctr_test_disabled"), None);
        assert_eq!(get_gauge("gauge_test_disabled"), None);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let _l = crate::test_lock();
        let before = get("ctr_test_mt").unwrap_or(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        add("ctr_test_mt", 1);
                    }
                });
            }
        });
        assert_eq!(get("ctr_test_mt").unwrap(), before + 4000);
    }

    #[test]
    fn full_table_drops_new_names_and_counts_them() {
        // A *local* table, so overflowing it cannot poison the global
        // COUNTERS/GAUGES every other test shares.
        let t = Table::new();
        for i in 0..MAX_CELLS {
            let name: &'static str = Box::leak(format!("cell_ovf_{i}").into_boxed_str());
            assert!(t.intern(name).is_some(), "cell {i}");
        }
        assert_eq!(t.dropped.load(Ordering::Relaxed), 0);
        // The table is full: new names degrade to drops...
        let extra: &'static str = Box::leak("cell_ovf_overflow".to_string().into_boxed_str());
        assert_eq!(t.intern(extra), None);
        assert_eq!(t.intern(extra), None);
        assert_eq!(t.dropped.load(Ordering::Relaxed), 2);
        // ...while already-interned names keep working.
        assert!(t.intern("cell_ovf_0").is_some());
        assert_eq!(t.dropped.load(Ordering::Relaxed), 2);
        // reset() clears the tally along with the values.
        t.reset();
        assert_eq!(t.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dropped_tallies_are_zero_on_the_global_tables() {
        let _l = crate::test_lock();
        // The suite interns far fewer than MAX_CELLS names; a non-zero
        // tally here would mean real counters are being lost.
        assert_eq!(dropped(), 0);
        assert_eq!(dropped_gauges(), 0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let _l = crate::test_lock();
        add("ctr_test_snap_b", 1);
        add("ctr_test_snap_a", 1);
        let snap = snapshot();
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
