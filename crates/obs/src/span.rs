//! Hierarchical timing spans.
//!
//! A span charges wall-clock time to a `(name, parent)` slot in a global
//! fixed-capacity registry. Slots are interned on first use and never
//! freed; the hot path (enter/exit) is a registry scan plus two `Instant`
//! reads and two relaxed `fetch_add`s — no locks, no allocation. Totals
//! are *thread-seconds*: when several threads run under the same parent
//! (see [`attach`]), their durations sum, exactly like the eval
//! pipeline's historical per-stage accounting.
//!
//! Nesting is tracked with a per-thread stack: a span entered while
//! another is open becomes its child, and the report renders the full
//! `parent/child` path. To carry the hierarchy across a thread boundary,
//! capture [`current`] before spawning and either [`attach`] it in the
//! worker (adopting it as the ambient parent) or open children directly
//! with [`span_under`].
//!
//! Exhaustion degrades gracefully: once all [`MAX_SPANS`] slots are
//! claimed, further *new* `(name, parent)` keys record nothing and bump
//! the [`dropped`] tally (existing keys keep working). The run report
//! surfaces the tally under `obs_dropped` so a silent gap in the span
//! tree is visible as a number instead of a mystery.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

/// Maximum distinct `(name, parent)` span slots; later spans are dropped.
pub const MAX_SPANS: usize = 512;

/// Parent index meaning "root".
const NO_PARENT: usize = usize::MAX;

const EMPTY: u8 = 0;
const READY: u8 = 2;

/// One interned span kind.
struct Slot {
    state: AtomicU8,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    parent: AtomicUsize,
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            state: AtomicU8::new(EMPTY),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            parent: AtomicUsize::new(NO_PARENT),
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The interned name. Only valid on `READY` slots (the name pointer
    /// was published with release ordering before the state flipped).
    fn name(&self) -> &'static str {
        let ptr = self.name_ptr.load(Ordering::Relaxed) as *const u8;
        let len = self.name_len.load(Ordering::Relaxed);
        // SAFETY: written exclusively from a `&'static str` under the
        // registration lock before `state` was released to `READY`.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
    }
}

/// A fixed-capacity span registry. The process-wide instance backs the
/// public module functions; tests exercising exhaustion build their own
/// so they cannot poison everyone else's slots.
struct Registry {
    slots: [Slot; MAX_SPANS],
    /// Number of claimed slots (slots are claimed densely from 0).
    next: AtomicUsize,
    /// Spinlock serialising slot *insertion* only; lookups stay lock-free.
    lock: AtomicBool,
    /// Span entries refused because the registry was full.
    dropped: AtomicU64,
}

impl Registry {
    const fn new() -> Self {
        Registry {
            slots: [const { Slot::new() }; MAX_SPANS],
            next: AtomicUsize::new(0),
            lock: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    /// Find the slot for `(name, parent)` in `[0, hi)`, comparing names by
    /// content so identical literals from different crates unify.
    fn find(&self, name: &str, parent: usize, hi: usize) -> Option<usize> {
        (0..hi.min(MAX_SPANS)).find(|&i| {
            let s = &self.slots[i];
            s.state.load(Ordering::Acquire) == READY
                && s.parent.load(Ordering::Relaxed) == parent
                && s.name() == name
        })
    }

    /// Intern `(name, parent)`, returning its slot. A full registry
    /// returns `None` and bumps the dropped tally — the caller records
    /// nothing rather than misattributing time to someone else's slot.
    fn intern(&self, name: &'static str, parent: usize) -> Option<usize> {
        let hi = self.next.load(Ordering::Acquire);
        if let Some(i) = self.find(name, parent, hi) {
            return Some(i);
        }
        // Slow path: serialise insertion so a key is claimed exactly once.
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let hi = self.next.load(Ordering::Acquire);
        let got = match self.find(name, parent, hi) {
            Some(i) => Some(i),
            None if hi < MAX_SPANS => {
                let s = &self.slots[hi];
                s.name_ptr.store(name.as_ptr() as usize, Ordering::Relaxed);
                s.name_len.store(name.len(), Ordering::Relaxed);
                s.parent.store(parent, Ordering::Relaxed);
                s.state.store(READY, Ordering::Release);
                self.next.store(hi + 1, Ordering::Release);
                Some(hi)
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        self.lock.store(false, Ordering::Release);
        got
    }

    /// Build the `/`-joined path of slot `i` by walking its parent chain.
    fn path_of(&self, i: usize) -> String {
        let mut parts: Vec<&'static str> = Vec::new();
        let mut at = i;
        // The parent chain is acyclic by construction (a slot's parent
        // always has a lower index), but cap the walk defensively.
        for _ in 0..MAX_SPANS {
            parts.push(self.slots[at].name());
            let p = self.slots[at].parent.load(Ordering::Relaxed);
            if p == NO_PARENT {
                break;
            }
            at = p;
        }
        parts.reverse();
        parts.join("/")
    }

    fn snapshot(&self) -> Vec<SpanStat> {
        let hi = self.next.load(Ordering::Acquire);
        let mut out: Vec<SpanStat> = (0..hi.min(MAX_SPANS))
            .filter(|&i| self.slots[i].state.load(Ordering::Acquire) == READY)
            .map(|i| SpanStat {
                path: self.path_of(i),
                total_s: self.slots[i].total_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                count: self.slots[i].count.load(Ordering::Relaxed),
            })
            .filter(|s| s.count > 0)
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    fn stat(&self, path: &str) -> Option<(f64, u64)> {
        let hi = self.next.load(Ordering::Acquire);
        (0..hi.min(MAX_SPANS))
            .filter(|&i| self.slots[i].state.load(Ordering::Acquire) == READY)
            .find(|&i| self.path_of(i) == path)
            .map(|i| {
                (
                    self.slots[i].total_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                    self.slots[i].count.load(Ordering::Relaxed),
                )
            })
    }

    fn reset(&self) {
        let hi = self.next.load(Ordering::Acquire);
        for slot in self.slots.iter().take(hi.min(MAX_SPANS)) {
            slot.total_ns.store(0, Ordering::Relaxed);
            slot.count.store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
    }

    fn reset_prefix(&self, prefix: &str) {
        let hi = self.next.load(Ordering::Acquire);
        for (i, slot) in self.slots.iter().enumerate().take(hi.min(MAX_SPANS)) {
            if slot.state.load(Ordering::Acquire) != READY {
                continue;
            }
            let p = self.path_of(i);
            if p == prefix
                || (p.starts_with(prefix) && p.as_bytes().get(prefix.len()) == Some(&b'/'))
            {
                slot.total_ns.store(0, Ordering::Relaxed);
                slot.count.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The process-wide registry behind [`span`], [`snapshot`] and friends.
static REGISTRY: Registry = Registry::new();

thread_local! {
    /// Stack of open span slot indices on this thread.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// A position in the span tree that can be sent to another thread (see
/// [`current`], [`span_under`], [`attach`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(usize);

impl SpanHandle {
    /// The root handle: spans opened under it have no parent.
    pub const ROOT: SpanHandle = SpanHandle(NO_PARENT);
}

/// The innermost span currently open on this thread (or the root handle).
pub fn current() -> SpanHandle {
    STACK.with(|s| SpanHandle(s.borrow().last().copied().unwrap_or(NO_PARENT)))
}

/// RAII timing guard returned by [`span`] / [`span_under`]. Charges the
/// elapsed wall time to its slot on drop. Not `Send`: a guard must drop
/// on the thread that opened it (the per-thread nesting stack).
pub struct Span {
    /// `(slot, enter time)`; `None` when disabled or the registry is full.
    open: Option<(usize, Instant)>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    const DISABLED: Span = Span {
        open: None,
        _not_send: std::marker::PhantomData,
    };

    fn enter(name: &'static str, parent: usize) -> Span {
        let Some(slot) = REGISTRY.intern(name, parent) else {
            return Span::DISABLED;
        };
        STACK.with(|s| s.borrow_mut().push(slot));
        Span {
            open: Some((slot, Instant::now())),
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((slot, start)) = self.open else {
            return;
        };
        let ns = start.elapsed().as_nanos() as u64;
        REGISTRY.slots[slot]
            .total_ns
            .fetch_add(ns, Ordering::Relaxed);
        REGISTRY.slots[slot].count.fetch_add(1, Ordering::Relaxed);
        // Guards drop in LIFO order (they are !Send and scope-bound), but
        // be defensive: remove our slot wherever it sits, and tolerate a
        // thread-local already torn down during thread exit.
        let _ = STACK.try_with(|s| {
            let mut st = s.borrow_mut();
            match st.last() {
                Some(&top) if top == slot => {
                    st.pop();
                }
                _ => {
                    if let Some(pos) = st.iter().rposition(|&x| x == slot) {
                        st.remove(pos);
                    }
                }
            }
        });
    }
}

/// Open a span named `name` under the innermost span open on this thread
/// (a nested call produces a `parent/child` path in the report).
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::DISABLED;
    }
    Span::enter(name, current().0)
}

/// Open a span named `name` under an explicit parent captured with
/// [`current`] — typically on a different thread.
pub fn span_under(parent: SpanHandle, name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::DISABLED;
    }
    Span::enter(name, parent.0)
}

/// RAII guard making `handle` this thread's ambient parent (see
/// [`attach`]).
pub struct Attach {
    pushed: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for Attach {
    fn drop(&mut self) {
        if self.pushed {
            let _ = STACK.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Adopt `handle` as this thread's ambient span without timing anything:
/// until the guard drops, plain [`span`] calls on this thread nest under
/// it. This is how a worker pool inherits the span of the thread that
/// spawned it.
pub fn attach(handle: SpanHandle) -> Attach {
    let pushed = handle.0 != NO_PARENT && crate::enabled();
    if pushed {
        STACK.with(|s| s.borrow_mut().push(handle.0));
    }
    Attach {
        pushed,
        _not_send: std::marker::PhantomData,
    }
}

/// One span's aggregated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full `parent/child` path.
    pub path: String,
    /// Total charged time in seconds (thread-seconds when several
    /// threads share the slot).
    pub total_s: f64,
    /// Number of completed enter/exit pairs.
    pub count: u64,
}

/// Snapshot every span with a non-zero count, sorted by path.
pub fn snapshot() -> Vec<SpanStat> {
    REGISTRY.snapshot()
}

/// Total seconds and completion count recorded for the span at `path`
/// (e.g. `"eval/compile"`), or `None` if no such span exists yet.
pub fn stat(path: &str) -> Option<(f64, u64)> {
    REGISTRY.stat(path)
}

/// How many span entries were refused because the registry was full.
pub fn dropped() -> u64 {
    REGISTRY.dropped.load(Ordering::Relaxed)
}

/// Zero every span total, count and the dropped tally (slots stay
/// interned).
pub fn reset() {
    REGISTRY.reset();
}

/// Zero totals for the span at `prefix` and everything below it (path
/// equal to `prefix` or starting with `prefix/`).
pub fn reset_prefix(prefix: &str) {
    REGISTRY.reset_prefix(prefix);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_paths() {
        let _l = crate::test_lock();
        {
            let _a = span("span_test_outer");
            let _b = span("span_test_inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let (outer_s, outer_n) = stat("span_test_outer").unwrap();
        let (inner_s, inner_n) = stat("span_test_outer/span_test_inner").unwrap();
        assert!(outer_n >= 1 && inner_n >= 1);
        assert!(outer_s >= inner_s, "{outer_s} < {inner_s}");
        assert!(inner_s > 0.0);
    }

    #[test]
    fn cross_thread_spans_aggregate_under_parent() {
        let _l = crate::test_lock();
        let handle = {
            let _root = span("span_test_xthread");
            let h = current();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let _ctx = attach(h);
                        let _w = span("span_test_worker");
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    });
                }
            });
            h
        };
        assert_ne!(handle, SpanHandle::ROOT);
        let (s, n) = stat("span_test_xthread/span_test_worker").unwrap();
        assert_eq!(n, 2);
        // Two threads sleeping ~1ms each: thread-seconds, so ≥ ~2ms.
        assert!(s >= 0.002, "{s}");
    }

    #[test]
    fn span_under_does_not_need_attach() {
        let _l = crate::test_lock();
        {
            let _root = span("span_test_under");
            let h = current();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _w = span_under(h, "span_test_leaf");
                });
            });
        }
        assert!(stat("span_test_under/span_test_leaf").is_some());
    }

    #[test]
    fn reset_prefix_zeroes_subtree_only() {
        let _l = crate::test_lock();
        {
            let _a = span("span_test_rp_keep");
        }
        {
            let _a = span("span_test_rp_zap");
            let _b = span("span_test_rp_child");
        }
        reset_prefix("span_test_rp_zap");
        assert_eq!(stat("span_test_rp_zap").unwrap().1, 0);
        assert_eq!(stat("span_test_rp_zap/span_test_rp_child").unwrap().1, 0);
        assert!(stat("span_test_rp_keep").unwrap().1 >= 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = crate::test_lock();
        crate::set_enabled(false);
        {
            let _a = span("span_test_disabled");
        }
        crate::set_enabled(true);
        assert_eq!(stat("span_test_disabled"), None);
    }

    #[test]
    fn snapshot_is_sorted_and_nonempty_after_use() {
        let _l = crate::test_lock();
        {
            let _a = span("span_test_snap");
        }
        let snap = snapshot();
        assert!(snap.iter().any(|s| s.path == "span_test_snap"));
        for w in snap.windows(2) {
            assert!(w[0].path < w[1].path);
        }
    }

    #[test]
    fn full_registry_drops_new_keys_and_counts_them() {
        // A *local* registry, so overflowing it cannot poison the global
        // one that every other test in this process shares.
        static LOCAL: Registry = Registry::new();
        // Distinct leaked names: interning is by name content, so each
        // claims a fresh slot.
        for i in 0..MAX_SPANS {
            let name: &'static str = Box::leak(format!("ovf_{i}").into_boxed_str());
            assert!(LOCAL.intern(name, NO_PARENT).is_some(), "slot {i}");
        }
        assert_eq!(LOCAL.next.load(Ordering::Relaxed), MAX_SPANS);
        assert_eq!(LOCAL.dropped.load(Ordering::Relaxed), 0);
        // The registry is full: new keys degrade to drops...
        let extra: &'static str = Box::leak("ovf_overflow".to_string().into_boxed_str());
        assert_eq!(LOCAL.intern(extra, NO_PARENT), None);
        assert_eq!(LOCAL.intern(extra, NO_PARENT), None);
        assert_eq!(LOCAL.dropped.load(Ordering::Relaxed), 2);
        // ...while already-interned keys keep working.
        assert!(LOCAL.intern("ovf_0", NO_PARENT).is_some());
        assert_eq!(LOCAL.dropped.load(Ordering::Relaxed), 2);
        // A full-registry snapshot still renders (zero-count slots are
        // filtered, so charge one slot a tick first).
        LOCAL.slots[0].count.fetch_add(1, Ordering::Relaxed);
        let snap = LOCAL.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].path, "ovf_0");
    }

    #[test]
    fn dropped_tally_is_zero_on_the_global_registry() {
        let _l = crate::test_lock();
        // The whole test suite interns far fewer than MAX_SPANS keys; a
        // non-zero tally here would mean real spans are being lost.
        assert_eq!(dropped(), 0);
    }
}
