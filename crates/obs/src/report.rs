//! The machine-readable run report.
//!
//! Schema (stable; version-bumped on breaking change):
//!
//! ```json
//! {
//!   "obs_version": 1,
//!   "spans": [ {"path": "eval/compile", "total_s": 0.134, "count": 104} ],
//!   "counters": { "sim.transports": 123456 },
//!   "gauges": { "eval.threads": 8 },
//!   "obs_dropped": { "spans": 0, "counters": 0, "gauges": 0 }
//! }
//! ```
//!
//! `obs_dropped` counts probe updates refused because a fixed-capacity
//! registry was full — all zeros in a healthy run; anything else means
//! the report has blind spots (see the registry docs in `span`/`counter`).
//!
//! Spans are sorted by path, counters and gauges by name, so two reports
//! from the same workload diff cleanly. The bench binaries embed this
//! object under an `"obs"` key in `BENCH_*.json`.

use crate::json::Json;

/// Current report schema version.
pub const OBS_VERSION: u64 = 1;

/// Snapshot the registries into a report object.
pub fn to_json() -> Json {
    let spans = crate::span::snapshot()
        .into_iter()
        .map(|s| {
            Json::Obj(vec![
                ("path".into(), Json::Str(s.path)),
                ("total_s".into(), Json::Num(round6(s.total_s))),
                ("count".into(), Json::Num(s.count as f64)),
            ])
        })
        .collect();
    let counters = crate::counter::snapshot()
        .into_iter()
        .map(|(n, v)| (n, Json::Num(v as f64)))
        .collect();
    let gauges = crate::counter::snapshot_gauges()
        .into_iter()
        .map(|(n, v)| (n, Json::Num(v as f64)))
        .collect();
    let dropped = Json::Obj(vec![
        ("spans".into(), Json::Num(crate::span::dropped() as f64)),
        (
            "counters".into(),
            Json::Num(crate::counter::dropped() as f64),
        ),
        (
            "gauges".into(),
            Json::Num(crate::counter::dropped_gauges() as f64),
        ),
    ]);
    Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("obs_dropped".into(), dropped),
    ])
}

/// Render the report as pretty JSON.
pub fn render_json() -> String {
    to_json().to_pretty()
}

/// Round to microsecond precision: keeps reports tidy and diffs stable.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_recorded_data_and_parses_back() {
        let _l = crate::test_lock();
        {
            let _s = crate::span("report_test_span");
            crate::counter::add("report_test_counter", 41);
            crate::counter::set_gauge("report_test_gauge", -5);
        }
        let text = render_json();
        let v = crate::json::parse(&text).expect("report is valid JSON");
        assert_eq!(
            v.get("obs_version").unwrap().as_f64(),
            Some(OBS_VERSION as f64)
        );
        let spans = match v.get("spans").unwrap() {
            Json::Arr(items) => items,
            other => panic!("spans not an array: {other:?}"),
        };
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("report_test_span")));
        assert!(
            v.get("counters")
                .unwrap()
                .get("report_test_counter")
                .unwrap()
                .as_f64()
                .unwrap()
                >= 41.0
        );
        assert_eq!(
            v.get("gauges").unwrap().get("report_test_gauge"),
            Some(&Json::Num(-5.0))
        );
        let dropped = v.get("obs_dropped").expect("report has obs_dropped");
        for kind in ["spans", "counters", "gauges"] {
            assert_eq!(
                dropped.get(kind).unwrap().as_f64(),
                Some(0.0),
                "{kind} dropped in a healthy run"
            );
        }
    }
}
