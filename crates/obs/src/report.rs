//! The machine-readable run report.
//!
//! Schema (stable; version-bumped on breaking change):
//!
//! ```json
//! {
//!   "obs_version": 1,
//!   "spans": [ {"path": "eval/compile", "total_s": 0.134, "count": 104} ],
//!   "counters": { "sim.transports": 123456 },
//!   "gauges": { "eval.threads": 8 },
//!   "hists": [ {"name": "serve.job.service_us", "count": 8, "sum": 910,
//!               "p50": 127, "p99": 255, "buckets": {"7": 5, "8": 3}} ],
//!   "obs_dropped": { "spans": 0, "counters": 0, "gauges": 0, "hists": 0 }
//! }
//! ```
//!
//! Histograms were added *additively* under the new `"hists"` key (and a
//! fourth `obs_dropped` tally): `obs_version` deliberately stays 1, since
//! every pre-existing key keeps its exact shape — consumers of version 1
//! that ignore unknown keys keep working. The choice is pinned by
//! `report_schema_stays_version_1_with_additive_hists`. `hists` buckets
//! are sparse (log₂ bucket index → count, zero buckets omitted); `p50`/
//! `p99` are bucket-upper-bound quantiles, `null` when empty.
//!
//! `obs_dropped` counts probe updates refused because a fixed-capacity
//! registry was full — all zeros in a healthy run; anything else means
//! the report has blind spots (see the registry docs in `span`/`counter`).
//!
//! Spans are sorted by path, counters and gauges by name, so two reports
//! from the same workload diff cleanly. The bench binaries embed this
//! object under an `"obs"` key in `BENCH_*.json`.

use crate::json::Json;

/// Current report schema version.
pub const OBS_VERSION: u64 = 1;

/// Snapshot the registries into a report object.
pub fn to_json() -> Json {
    let spans = crate::span::snapshot()
        .into_iter()
        .map(|s| {
            Json::Obj(vec![
                ("path".into(), Json::Str(s.path)),
                ("total_s".into(), Json::Num(round6(s.total_s))),
                ("count".into(), Json::Num(s.count as f64)),
            ])
        })
        .collect();
    let counters = crate::counter::snapshot()
        .into_iter()
        .map(|(n, v)| (n, Json::Num(v as f64)))
        .collect();
    let gauges = crate::counter::snapshot_gauges()
        .into_iter()
        .map(|(n, v)| (n, Json::Num(v as f64)))
        .collect();
    let hists = crate::hist::snapshot().iter().map(hist_json).collect();
    let dropped = Json::Obj(vec![
        ("spans".into(), Json::Num(crate::span::dropped() as f64)),
        (
            "counters".into(),
            Json::Num(crate::counter::dropped() as f64),
        ),
        (
            "gauges".into(),
            Json::Num(crate::counter::dropped_gauges() as f64),
        ),
        ("hists".into(), Json::Num(crate::hist::dropped() as f64)),
    ]);
    Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("hists".into(), Json::Arr(hists)),
        ("obs_dropped".into(), dropped),
    ])
}

/// One histogram as its run-report object (sparse buckets, bucket-bound
/// quantiles).
pub fn hist_json(h: &crate::hist::HistStat) -> Json {
    let q = |v: Option<u64>| v.map_or(Json::Null, |b| Json::Num(b as f64));
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i.to_string(), Json::Num(c as f64)))
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(h.name.clone())),
        ("count".into(), Json::Num(h.count as f64)),
        ("sum".into(), Json::Num(h.sum as f64)),
        ("p50".into(), q(h.quantile(0.50))),
        ("p99".into(), q(h.quantile(0.99))),
        ("buckets".into(), Json::Obj(buckets)),
    ])
}

/// Render the report as pretty JSON.
pub fn render_json() -> String {
    to_json().to_pretty()
}

/// Round to microsecond precision: keeps reports tidy and diffs stable.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_recorded_data_and_parses_back() {
        let _l = crate::test_lock();
        {
            let _s = crate::span("report_test_span");
            crate::counter::add("report_test_counter", 41);
            crate::counter::set_gauge("report_test_gauge", -5);
        }
        let text = render_json();
        let v = crate::json::parse(&text).expect("report is valid JSON");
        assert_eq!(
            v.get("obs_version").unwrap().as_f64(),
            Some(OBS_VERSION as f64)
        );
        let spans = match v.get("spans").unwrap() {
            Json::Arr(items) => items,
            other => panic!("spans not an array: {other:?}"),
        };
        assert!(spans
            .iter()
            .any(|s| s.get("path").unwrap().as_str() == Some("report_test_span")));
        assert!(
            v.get("counters")
                .unwrap()
                .get("report_test_counter")
                .unwrap()
                .as_f64()
                .unwrap()
                >= 41.0
        );
        assert_eq!(
            v.get("gauges").unwrap().get("report_test_gauge"),
            Some(&Json::Num(-5.0))
        );
        let dropped = v.get("obs_dropped").expect("report has obs_dropped");
        for kind in ["spans", "counters", "gauges", "hists"] {
            assert_eq!(
                dropped.get(kind).unwrap().as_f64(),
                Some(0.0),
                "{kind} dropped in a healthy run"
            );
        }
    }

    /// Pins the schema decision for histograms: the version stays 1 and
    /// histograms ride under the *new* `hists` key (plus a fourth
    /// `obs_dropped` tally) — every pre-existing key keeps its shape.
    #[test]
    fn report_schema_stays_version_1_with_additive_hists() {
        let _l = crate::test_lock();
        crate::hist::record("report_test_hist", 100);
        crate::hist::record("report_test_hist", 3);
        let v = crate::json::parse(&render_json()).unwrap();
        assert_eq!(OBS_VERSION, 1, "additive change must not bump the version");
        assert_eq!(v.get("obs_version").unwrap().as_f64(), Some(1.0));
        let Some(Json::Arr(hists)) = v.get("hists") else {
            panic!("hists must be an array");
        };
        let h = hists
            .iter()
            .find(|h| h.get("name").unwrap().as_str() == Some("report_test_hist"))
            .expect("recorded histogram appears in the report");
        assert!(h.get("count").unwrap().as_f64().unwrap() >= 2.0);
        assert!(h.get("sum").unwrap().as_f64().unwrap() >= 103.0);
        assert!(h.get("p50").unwrap().as_f64().is_some());
        assert!(h.get("p99").unwrap().as_f64().is_some());
        let Some(Json::Obj(buckets)) = h.get("buckets") else {
            panic!("buckets must be a sparse object");
        };
        assert!(!buckets.is_empty());
        // Sparse: every listed bucket is a non-zero count at a valid index.
        for (k, c) in buckets {
            let idx: usize = k.parse().expect("bucket keys are indices");
            assert!(idx < crate::hist::BUCKETS);
            assert!(c.as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn empty_histograms_render_null_quantiles() {
        let h = crate::hist::HistStat::new("report_test_empty_hist");
        let j = hist_json(&h);
        assert_eq!(j.get("p50"), Some(&Json::Null));
        assert_eq!(j.get("p99"), Some(&Json::Null));
        assert_eq!(j.get("count").unwrap().as_f64(), Some(0.0));
    }
}
