//! Invariants of the guest-side profiler on hand-built machine programs:
//! the profiled entry points return bit-identical `SimResult`s, the
//! reconstructed profiles agree with `SimStats`, and the per-bus / per-RF
//! breakdowns match what the programs statically must do. The 13-machine
//! compiler-driven parity sweep lives in `tests/profile_parity.rs` at the
//! workspace root.

use tta_isa::{
    Move, MoveDst, MoveSrc, OpSrc, Operation, Program, ScalarInst, TtaInst, VliwBundle, VliwSlot,
};
use tta_model::{presets, FuId, Opcode, RegRef, RfId};
use tta_sim::SimStats;

const ALU: FuId = FuId(0);
const LSU: FuId = FuId(1);
const CU: FuId = FuId(2);

fn rr(i: u16) -> RegRef {
    RegRef {
        rf: RfId(0),
        index: i,
    }
}

fn mv(src: MoveSrc, dst: MoveDst) -> Option<Move> {
    Some(Move { src, dst })
}

fn inst(slots: [Option<Move>; 3]) -> TtaInst {
    TtaInst {
        slots: slots.to_vec(),
        limm: None,
    }
}

fn vliw_op(
    op: Opcode,
    fu: FuId,
    dst: Option<RegRef>,
    a: Option<OpSrc>,
    b: Option<OpSrc>,
) -> VliwSlot {
    VliwSlot::Op(Operation { op, fu, dst, a, b })
}

fn assert_same_run(a: &tta_sim::SimResult, b: &tta_sim::SimResult) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.ret, b.ret);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.memory, b.memory);
}

/// A small TTA kernel exercising every profiled feature: an RF write, a
/// bypassed read, a long immediate, a NOP and a trigger.
fn tta_program() -> Vec<TtaInst> {
    vec![
        // #5 -> alu.o ; #2 -> alu.t.add
        inst([
            mv(MoveSrc::Imm(5), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(2), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
        // alu.r -> r1 (bypass read + RF write)
        inst([mv(MoveSrc::FuResult(ALU), MoveDst::Rf(rr(1))), None, None]),
        // schedule padding
        TtaInst::nop(3),
        // limm #1234 -> imm reg 0 (blanks `limm.bus_slots` buses)
        TtaInst {
            slots: vec![None, None, None],
            limm: Some((0, 1234)),
        },
        // r1 -> lsu.o ; #8 -> lsu.t.stw (RF read)
        inst([
            mv(MoveSrc::Rf(rr(1)), MoveDst::FuOperand(LSU)),
            mv(MoveSrc::Imm(8), MoveDst::FuTrigger(LSU, Opcode::Stw)),
            None,
        ]),
        inst([
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(CU, Opcode::Halt)),
            None,
            None,
        ]),
    ]
}

#[test]
fn tta_profile_matches_the_static_schedule() {
    let m = presets::m_tta_1();
    let prog = tta_program();
    let plain = tta_sim::tta::run_tta(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    let (r, p) = tta_sim::tta::run_tta_profiled(&m, &prog, vec![0; 1 << 16], 1000).unwrap();

    assert_same_run(&plain, &r);
    p.check_against(&r.stats).unwrap();

    // Straight-line program: every pc executes exactly once.
    assert_eq!(p.samples, prog.len() as u64);
    assert!(p.pc_counts.iter().all(|&c| c == 1));
    assert_eq!(p.cycles, r.cycles);
    assert_eq!(p.slots, 3);

    // Bus 0 carries a move in every non-NOP, non-limm instruction; bus 2
    // never does.
    assert_eq!(p.slot_moves, vec![4, 2, 0]);
    assert_eq!(p.nop_samples, 1);
    assert_eq!(p.limm_slot_samples, m.limm.bus_slots as u64);

    // One bypassed read, one RF read.
    assert_eq!(p.bypass_reads, 1);
    assert_eq!(p.rf_reads, 1);
    assert!(p.bypass_fraction() > 0.4 && p.bypass_fraction() < 0.6);

    // FU occupancy: one add, one store; no ops on the control unit beyond
    // the halt trigger.
    assert_eq!(p.fu[ALU.0 as usize].ops, 1);
    assert_eq!(p.fu[LSU.0 as usize].ops, 1);
    assert_eq!(p.fu[CU.0 as usize].ops, 1);

    // 1R/1W machine: the hist has buckets {0, 1} and sums to the samples.
    let rf = &p.rf[0];
    assert_eq!(rf.read_hist.len(), 2);
    assert_eq!(rf.read_hist.iter().sum::<u64>(), p.samples);
    assert_eq!(rf.read_hist[1], 1);
    assert_eq!(rf.write_hist[1], 1);

    // Hotspots: all counts are 1, so ties break to the lowest pc.
    assert_eq!(p.hot_pcs(2), vec![(0, 1), (1, 1)]);
}

#[test]
fn vliw_profile_measures_dynamic_write_pressure() {
    let m = presets::m_vliw_2();
    // A 3-cycle load issued at c0 and a 1-cycle add issued at c2 drain
    // onto the register file in the same cycle — 2 simultaneous writes
    // on the 2W file, observable only dynamically (the static per-bundle
    // view sees one write each).
    let nop = || VliwBundle {
        slots: vec![None, None],
    };
    let prog = vec![
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    Opcode::Ldw,
                    LSU,
                    Some(rr(1)),
                    None,
                    Some(OpSrc::Imm(16)),
                )),
            ],
        },
        // limm r3 = 99: occupies both issue slots, the LimmCont slot is
        // encoding padding.
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead {
                    dst: rr(3),
                    value: 99,
                }),
                Some(VliwSlot::LimmCont),
            ],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(
                    Opcode::Add,
                    ALU,
                    Some(rr(2)),
                    Some(OpSrc::Imm(3)),
                    Some(OpSrc::Imm(4)),
                )),
                None,
            ],
        },
        nop(), // r2 written at end of c3, readable c4
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    Opcode::Stw,
                    LSU,
                    None,
                    Some(OpSrc::Reg(rr(2))),
                    Some(OpSrc::Imm(8)),
                )),
            ],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(Opcode::Halt, CU, None, None, Some(OpSrc::Imm(0)))),
                None,
            ],
        },
    ];
    let plain = tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    let (r, p) = tta_sim::vliw::run_vliw_profiled(&m, &prog, vec![0; 1 << 16], 1000).unwrap();

    assert_same_run(&plain, &r);
    p.check_against(&r.stats).unwrap();
    assert_eq!(r.ret, 7);

    // The write histogram is per *cycle* and must account for every cycle.
    let rf = &p.rf[0];
    assert_eq!(rf.write_hist.iter().sum::<u64>(), r.cycles);
    assert_eq!(rf.write_hist[2], 1, "both writebacks land together");
    assert!(rf.mean_writes() > 0.0);

    // The LimmCont slot is padding, not a move.
    assert_eq!(p.limm_slot_samples, 1);
    assert_eq!(p.slot_moves, vec![3, 2]);
    assert_eq!(p.nop_samples, 1);
}

#[test]
fn scalar_profile_samples_are_instructions_not_cycles() {
    let m = presets::mblaze_3();
    let lsu = FuId(1);
    let cu = FuId(2);
    // Load-use dependence: dynamic stalls make cycles > samples.
    let prog = vec![
        ScalarInst::ImmPrefix,
        ScalarInst::Op(Operation {
            op: Opcode::Ldw,
            fu: lsu,
            dst: Some(rr(1)),
            a: None,
            b: Some(OpSrc::Imm(16)),
        }),
        ScalarInst::Op(Operation {
            op: Opcode::Add,
            fu: ALU,
            dst: Some(rr(2)),
            a: Some(OpSrc::Reg(rr(1))),
            b: Some(OpSrc::Imm(2)),
        }),
        ScalarInst::Op(Operation {
            op: Opcode::Stw,
            fu: lsu,
            dst: None,
            a: Some(OpSrc::Reg(rr(2))),
            b: Some(OpSrc::Imm(8)),
        }),
        ScalarInst::Op(Operation {
            op: Opcode::Halt,
            fu: cu,
            dst: None,
            a: None,
            b: Some(OpSrc::Imm(0)),
        }),
    ];
    let plain = tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    let (r, p) = tta_sim::scalar::run_scalar_profiled(&m, &prog, vec![0; 1 << 16], 1000).unwrap();

    assert_same_run(&plain, &r);
    p.check_against(&r.stats).unwrap();

    assert_eq!(p.samples, prog.len() as u64);
    assert!(p.cycles > p.samples, "stall cycles are not samples");
    assert_eq!(p.slots, 0);
    assert_eq!(p.slot_utilization(), 0.0);
    assert_eq!(p.nop_samples, 0);

    // The imm prefix is a 0-read/0-write sample; the three reads (add's
    // r1, store's r2) and two writes land in the 1-port buckets... the
    // mblaze RF has more ports, so just pin totals.
    assert_eq!(p.rf_reads, 2);
    assert_eq!(p.rf_writes, 2);
    assert_eq!(p.rf[0].read_hist.iter().sum::<u64>(), p.samples);
}

#[test]
fn static_activity_times_trace_reproduces_the_stats() {
    let m = presets::m_tta_1();
    let prog = tta_program();
    let program = Program::Tta(prog.clone());
    let activity = tta_sim::static_activity(&program);
    assert_eq!(activity.len(), prog.len());

    let (r, trace) = tta_sim::run_traced(&m, &program, vec![0; 1 << 16], 1000).unwrap();
    assert_eq!(trace.len() as u64, r.stats.instructions);

    // Summing the static per-PC activity over the executed trace must
    // reproduce the dynamic counters — the identity the Perfetto counter
    // tracks are built on.
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut moves = 0u64;
    for &pc in &trace {
        let a = activity[pc as usize];
        reads += a.rf_reads as u64;
        writes += a.rf_writes as u64;
        moves += a.moves as u64;
    }
    assert_eq!(reads, r.stats.rf_reads);
    assert_eq!(writes, r.stats.rf_writes);
    assert_eq!(moves, r.stats.payload);
}

#[test]
fn profiled_dispatcher_agrees_with_plain_run_on_all_styles() {
    // `run_profiled` vs `run` through the style dispatcher, with obs
    // compiled in but disabled (the default): bit-identical results.
    let cases: Vec<(tta_model::Machine, Program)> = vec![
        (presets::m_tta_1(), Program::Tta(tta_program())),
        (
            presets::mblaze_3(),
            Program::Scalar(vec![
                ScalarInst::Op(Operation {
                    op: Opcode::Stw,
                    fu: FuId(1),
                    dst: None,
                    a: Some(OpSrc::Imm(9)),
                    b: Some(OpSrc::Imm(8)),
                }),
                ScalarInst::Op(Operation {
                    op: Opcode::Halt,
                    fu: FuId(2),
                    dst: None,
                    a: None,
                    b: Some(OpSrc::Imm(0)),
                }),
            ]),
        ),
    ];
    for (m, program) in &cases {
        let plain = tta_sim::run(m, program, vec![0; 1 << 16]).unwrap();
        let (r, p) = tta_sim::run_profiled(m, program, vec![0; 1 << 16]).unwrap();
        assert_same_run(&plain, &r);
        p.check_against(&r.stats).unwrap();
    }
}

#[test]
fn check_against_reports_the_first_inconsistency() {
    let m = presets::m_tta_1();
    let prog = tta_program();
    let (r, p) = tta_sim::tta::run_tta_profiled(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    let mut bad = r.stats;
    bad.rf_reads += 1;
    let msg = p.check_against(&bad).unwrap_err();
    assert!(msg.contains("rf_reads"), "got: {msg}");
    assert_eq!(p.check_against(&SimStats::default()), {
        Err(format!("samples: profile {} vs stats 0", p.samples))
    });
}
