//! Regression cases distilled from proptest failures.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::interp::Interpreter;
use tta_ir::Module;
use tta_model::presets;

fn check(module: &Module, machine: &tta_model::Machine, dump: bool) {
    let golden = Interpreter::new(module).run(&[]).unwrap();
    let compiled = compile(module, machine).unwrap();
    if dump {
        eprintln!("=== IR ===\n{}", module.entry_func());
        if let tta_isa::Program::Tta(insts) = &compiled.program {
            eprintln!("=== block starts: {:?}", compiled.block_starts);
            for (i, inst) in insts.iter().enumerate() {
                eprintln!("{i:4}: {inst}");
            }
        }
    }
    let result = tta_sim::run(machine, &compiled.program, module.initial_memory()).unwrap();
    assert_eq!(Some(result.ret), golden.ret, "on {}", machine.name);
}

/// Distilled from the first proptest failure: a diamond followed by a
/// 2-iteration loop whose body holds a wide constant, a load and a
/// sign-extension.
#[test]
fn wide_const_in_loop_body() {
    let mut mb = ModuleBuilder::new("regress1");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let v0 = fb.copy(42);
    // diamond
    let res = fb.vreg();
    let tb = fb.new_block();
    let eb = fb.new_block();
    let m1 = fb.new_block();
    fb.branch(v0, tb, eb);
    fb.switch_to(tb);
    let a = fb.add(v0, v0);
    let w = fb.copy(509804834);
    let o = fb.ior(a, w);
    fb.copy_to(res, o);
    fb.jump(m1);
    fb.switch_to(eb);
    let x = fb.ior(v0, v0);
    fb.copy_to(res, x);
    fb.jump(m1);
    fb.switch_to(m1);
    // loop with wide const + load + sxhw in the body
    let i = fb.copy(0);
    let acc = fb.copy(1);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 2);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let k = fb.copy(195494744);
    let ld = fb.ldw(buf.word(3), buf.region);
    let sx = fb.sxhw(k);
    let t1 = fb.add(acc, k);
    let t2 = fb.add(t1, ld);
    let t3 = fb.add(t2, sx);
    fb.copy_to(acc, t3);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    let r = fb.xor(res, acc);
    fb.ret(r);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    let m = mb.finish();
    check(&m, &presets::m_tta_1(), std::env::var("DUMP").is_ok());
}
