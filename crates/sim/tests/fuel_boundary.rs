//! Fuel-exhaustion boundary semantics under fused-block dispatch.
//!
//! The engines check fuel once per superblock entry and clamp the block's
//! dispatch length to the remaining budget, so a program exhausting fuel
//! *mid-superblock* must behave exactly like the per-cycle reference: for
//! every budget below the program's exact cost the run fails with
//! [`SimError::OutOfFuel`], and at or above it the result is identical to
//! the unconstrained run — on all three styles. The sweep is exhaustive
//! over every fuel value up to the boundary, so every possible mid-block
//! cut point (including inside jump delay-slot windows) is exercised.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::inst::MemRegion;
use tta_ir::Module;
use tta_model::io::{IoSpec, IrqAt, IRQ_CTRL_ADDR, SOFT_LINE};
use tta_model::{presets, Machine};
use tta_sim::{SimError, SimResult, TierConfig, Tiers};

/// A small looping kernel: two dependent loops with stores and loads, so
/// the compiled programs have several superblocks, taken and fall-through
/// branches, and (on the TTA/VLIW machines) delay slots in play.
fn loop_module() -> Module {
    let mut mb = ModuleBuilder::new("fuelloop");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let i = fb.copy(0);
    let acc = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 9);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let sq = fb.mul(i, i);
    let off = fb.shl(i, 2);
    let addr = fb.add(off, buf.base());
    fb.stw(sq, addr, buf.region);
    let back = fb.ldw(addr, buf.region);
    let acc2 = fb.add(acc, back);
    fb.copy_to(acc, acc2);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

fn assert_same(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.ret, b.ret, "{what}: return value");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.memory, b.memory, "{what}: memory image");
}

/// The exact fuel boundary of a style: the minimum budget that lets the
/// program finish. TTA/VLIW fuel counts cycles; scalar fuel counts
/// executed instructions.
fn boundary(m: &Machine, full: &SimResult) -> u64 {
    if m.scalar.is_some() {
        full.stats.instructions
    } else {
        full.cycles
    }
}

fn sweep(machine: &Machine) {
    let module = loop_module();
    let compiled =
        compile(&module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
    let run = |fuel: u64| {
        tta_sim::run_with_fuel(machine, &compiled.program, module.initial_memory(), fuel)
    };

    let full =
        run(tta_sim::DEFAULT_FUEL).unwrap_or_else(|e| panic!("full run on {}: {e}", machine.name));
    let b = boundary(machine, &full);
    // Keep the exhaustive sweep meaningful and cheap: the kernel must loop
    // enough to cross many block boundaries but stay small.
    assert!(
        (50..5000).contains(&b),
        "{}: boundary {b} outside the expected window",
        machine.name
    );

    // Below the boundary: out of fuel at every possible cut point,
    // including mid-superblock and inside delay-slot windows.
    for fuel in 0..b {
        match run(fuel) {
            Err(SimError::OutOfFuel) => {}
            other => panic!(
                "{}: fuel {fuel} of {b} should exhaust, got {other:?}",
                machine.name
            ),
        }
    }
    // At and above the boundary: bit-identical to the unconstrained run.
    for fuel in b..b + 3 {
        let r = run(fuel)
            .unwrap_or_else(|e| panic!("{}: fuel {fuel} of {b} failed: {e}", machine.name));
        assert_same(&r, &full, &format!("{} at fuel {fuel}", machine.name));
    }
}

/// [`loop_module`] plus interrupts: a `__irq` handler bumps a counter
/// that the exit path folds into the return value (shifted clear of the
/// accumulator), and `main` enables interrupts first thing. Two
/// cycle-keyed arrivals land mid-loop, so the sweep below cuts fuel at
/// every point *around a trap* too: mid-drain, between trap entry and
/// the handler, inside the handler, and across the return.
fn reactive_loop_module() -> Module {
    let mut mb = ModuleBuilder::new("fuelloop_irq");
    let buf = mb.buffer(64);
    let ibuf = mb.buffer(8);
    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let old = hb.ldw(ibuf.base(), ibuf.region);
    let n = hb.add(old, 1);
    hb.stw(n, ibuf.base(), ibuf.region);
    hb.ret_void();
    mb.add(hb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let i = fb.copy(0);
    let acc = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 9);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let sq = fb.mul(i, i);
    let off = fb.shl(i, 2);
    let addr = fb.add(off, buf.base());
    fb.stw(sq, addr, buf.region);
    let back = fb.ldw(addr, buf.region);
    let acc2 = fb.add(acc, back);
    fb.copy_to(acc, acc2);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    let hits = fb.ldw(ibuf.base(), ibuf.region);
    let tagged = fb.shl(hits, 16);
    let out = fb.add(acc, tagged);
    fb.ret(out);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

/// The interrupt leg of the boundary sweep: with a fixed schedule, every
/// fuel value below the exact cost errs with `OutOfFuel` and every value
/// at or above it reproduces the unconstrained run bit-for-bit — on the
/// interpreted engine, the eagerly compiled tier, and the default
/// promotion threshold alike, and all three configurations agree with
/// each other on the unconstrained result.
fn reactive_sweep(machine: &Machine) {
    let module = reactive_loop_module();
    let compiled =
        compile(&module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
    let spec = IoSpec {
        schedule: vec![(IrqAt::Cycle(20), SOFT_LINE), (IrqAt::Cycle(60), SOFT_LINE)],
        ..IoSpec::default()
    };
    let configs = [
        (
            "interpreted",
            TierConfig {
                enabled: false,
                threshold: 0,
            },
        ),
        (
            "threshold-0",
            TierConfig {
                enabled: true,
                threshold: 0,
            },
        ),
        (
            "default-threshold",
            TierConfig {
                enabled: true,
                threshold: TierConfig::DEFAULT_THRESHOLD,
            },
        ),
    ];
    let mut baseline: Option<SimResult> = None;
    for (what, cfg) in &configs {
        // Shared across the whole sweep, so blocks promoted by earlier
        // runs serve later fuel values fully compiled — the steady state.
        let tiers = Tiers::with_config(&compiled.program, cfg);
        let run = |fuel: u64| {
            tta_sim::run_with_io_tiers(
                machine,
                &compiled.program,
                module.initial_memory(),
                fuel,
                &spec,
                compiled.irq_entry,
                &tiers,
            )
        };
        let full = run(200_000)
            .unwrap_or_else(|e| panic!("{} ({what}): full run failed: {e}", machine.name));
        assert_eq!(
            full.stats.irqs, 2,
            "{} ({what}): both arrivals",
            machine.name
        );
        assert_eq!(
            full.ret >> 16,
            2,
            "{} ({what}): handler ran twice",
            machine.name
        );
        match &baseline {
            None => baseline = Some(full.clone()),
            Some(base) => assert_same(
                &full,
                base,
                &format!("{} ({what}) vs baseline", machine.name),
            ),
        }
        let b = boundary(machine, &full);
        for fuel in 0..b {
            match run(fuel) {
                Err(SimError::OutOfFuel) => {}
                other => panic!(
                    "{} ({what}): fuel {fuel} of {b} should exhaust, got {other:?}",
                    machine.name
                ),
            }
        }
        for fuel in b..b + 3 {
            let r = run(fuel).unwrap_or_else(|e| {
                panic!("{} ({what}): fuel {fuel} of {b} failed: {e}", machine.name)
            });
            assert_same(
                &r,
                &full,
                &format!("{} ({what}) at fuel {fuel}", machine.name),
            );
        }
    }
}

#[test]
fn tta_fuel_boundary_is_exact() {
    sweep(&presets::m_tta_2());
    sweep(&presets::m_tta_1());
}

#[test]
fn tta_fuel_boundary_is_exact_with_interrupts() {
    reactive_sweep(&presets::m_tta_2());
}

#[test]
fn vliw_fuel_boundary_is_exact_with_interrupts() {
    reactive_sweep(&presets::m_vliw_2());
}

#[test]
fn scalar_fuel_boundary_is_exact_with_interrupts() {
    reactive_sweep(&presets::mblaze_3());
}

#[test]
fn vliw_fuel_boundary_is_exact() {
    sweep(&presets::m_vliw_2());
}

#[test]
fn scalar_fuel_boundary_is_exact() {
    sweep(&presets::mblaze_3());
    sweep(&presets::mblaze_5());
}
