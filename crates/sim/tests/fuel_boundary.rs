//! Fuel-exhaustion boundary semantics under fused-block dispatch.
//!
//! The engines check fuel once per superblock entry and clamp the block's
//! dispatch length to the remaining budget, so a program exhausting fuel
//! *mid-superblock* must behave exactly like the per-cycle reference: for
//! every budget below the program's exact cost the run fails with
//! [`SimError::OutOfFuel`], and at or above it the result is identical to
//! the unconstrained run — on all three styles. The sweep is exhaustive
//! over every fuel value up to the boundary, so every possible mid-block
//! cut point (including inside jump delay-slot windows) is exercised.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::Module;
use tta_model::{presets, Machine};
use tta_sim::{SimError, SimResult};

/// A small looping kernel: two dependent loops with stores and loads, so
/// the compiled programs have several superblocks, taken and fall-through
/// branches, and (on the TTA/VLIW machines) delay slots in play.
fn loop_module() -> Module {
    let mut mb = ModuleBuilder::new("fuelloop");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let i = fb.copy(0);
    let acc = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 9);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let sq = fb.mul(i, i);
    let off = fb.shl(i, 2);
    let addr = fb.add(off, buf.base());
    fb.stw(sq, addr, buf.region);
    let back = fb.ldw(addr, buf.region);
    let acc2 = fb.add(acc, back);
    fb.copy_to(acc, acc2);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

fn assert_same(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.ret, b.ret, "{what}: return value");
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.memory, b.memory, "{what}: memory image");
}

/// The exact fuel boundary of a style: the minimum budget that lets the
/// program finish. TTA/VLIW fuel counts cycles; scalar fuel counts
/// executed instructions.
fn boundary(m: &Machine, full: &SimResult) -> u64 {
    if m.scalar.is_some() {
        full.stats.instructions
    } else {
        full.cycles
    }
}

fn sweep(machine: &Machine) {
    let module = loop_module();
    let compiled =
        compile(&module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
    let run = |fuel: u64| {
        tta_sim::run_with_fuel(machine, &compiled.program, module.initial_memory(), fuel)
    };

    let full =
        run(tta_sim::DEFAULT_FUEL).unwrap_or_else(|e| panic!("full run on {}: {e}", machine.name));
    let b = boundary(machine, &full);
    // Keep the exhaustive sweep meaningful and cheap: the kernel must loop
    // enough to cross many block boundaries but stay small.
    assert!(
        (50..5000).contains(&b),
        "{}: boundary {b} outside the expected window",
        machine.name
    );

    // Below the boundary: out of fuel at every possible cut point,
    // including mid-superblock and inside delay-slot windows.
    for fuel in 0..b {
        match run(fuel) {
            Err(SimError::OutOfFuel) => {}
            other => panic!(
                "{}: fuel {fuel} of {b} should exhaust, got {other:?}",
                machine.name
            ),
        }
    }
    // At and above the boundary: bit-identical to the unconstrained run.
    for fuel in b..b + 3 {
        let r = run(fuel)
            .unwrap_or_else(|e| panic!("{}: fuel {fuel} of {b} failed: {e}", machine.name));
        assert_same(&r, &full, &format!("{} at fuel {fuel}", machine.name));
    }
}

#[test]
fn tta_fuel_boundary_is_exact() {
    sweep(&presets::m_tta_2());
    sweep(&presets::m_tta_1());
}

#[test]
fn vliw_fuel_boundary_is_exact() {
    sweep(&presets::m_vliw_2());
}

#[test]
fn scalar_fuel_boundary_is_exact() {
    sweep(&presets::mblaze_3());
    sweep(&presets::mblaze_5());
}
