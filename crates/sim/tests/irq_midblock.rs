//! Regression: an interrupt delivered *mid-block* on a TTA must resume
//! the interrupted transport schedule exactly where it stopped. Found by
//! the schedule fuzzer (seed 2604): values computed after the in-block
//! delivery point were lost on minimal TTA machines.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::inst::MemRegion;
use tta_ir::interp::Interpreter;
use tta_ir::Module;
use tta_model::io::{IoSpec, IoSystem, IrqAt, IRQ_CTRL_ADDR, SOFT_LINE, UART_TX_ADDR};
use tta_model::presets;
use tta_sim::run_with_io;

fn golden(module: &Module, spec: &IoSpec) -> (i32, u64) {
    let mut io = IoSystem::new(spec);
    let r = Interpreter::new(module)
        .run_with_io(&[], &mut io)
        .expect("interpreter");
    (r.ret.unwrap_or(0), io.irqs_delivered)
}

fn assert_reactive_parity(module: &Module, spec: &IoSpec) {
    let (ret, irqs) = golden(module, spec);
    for machine in &presets::all_design_points() {
        let c =
            compile(module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
        let r = run_with_io(
            machine,
            &c.program,
            module.initial_memory(),
            100_000,
            spec,
            c.irq_entry,
        )
        .unwrap_or_else(|e| panic!("run on {}: {e}", machine.name));
        assert_eq!(r.stats.irqs, irqs, "{}: interrupts delivered", machine.name);
        assert_eq!(
            r.ret, ret,
            "{}: return value (tx {:x?}, cycles {}, stats {:?})",
            machine.name, r.uart_tx, r.cycles, r.stats
        );
    }
}

/// Builder mirror of the minimised fuzz repro: the schedule key lands
/// between `stw #68` and the ALU work that follows it *in the same
/// block*, so the trap checkpoint/restore brackets a half-executed
/// block schedule.
fn built_module() -> Module {
    let mut mb = ModuleBuilder::new("midblock");
    let mut hb = FunctionBuilder::new("__irq", 0, false);
    hb.ret_void();
    mb.add(hb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let v5 = fb.copy(0);
    fb.stw(0x43, UART_TX_ADDR as i32, MemRegion::ANY);
    fb.stw(0x44, UART_TX_ADDR as i32, MemRegion::ANY);
    let v23 = fb.and(0, v5);
    fb.stw(0x45, UART_TX_ADDR as i32, MemRegion::ANY);
    let v24 = fb.sxqw(v5);
    let v26 = fb.shl(21, v24);
    let tail = fb.new_block();
    fb.jump(tail);
    fb.switch_to(tail);
    let v40 = fb.xor(0, v26);
    let v42 = fb.xor(v40, v24);
    let v43 = fb.xor(v42, v23);
    fb.ret(v43);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[test]
fn midblock_interrupt_preserves_the_rest_of_the_block() {
    let module = built_module();
    let spec = IoSpec {
        schedule: vec![(IrqAt::MmioStore(3), SOFT_LINE)],
        ..IoSpec::default()
    };
    let (ret, irqs) = golden(&module, &spec);
    assert_eq!((ret, irqs), (21, 1));
    assert_reactive_parity(&module, &spec);
}

/// The verbatim minimised module from fuzz seed 2604 (also committed as
/// a corpus case): jump-delay chains around the interrupted block and
/// the function layout mattered to the original failure, so pin the
/// exact shape here too.
const SEED_2604: &str = "\
module fuzz_irq_2604
memsize 8192
entry 3
func leaf0 2 ret 2
block
  ret v1
func leaf1 2 ret 6
block
  copy v3 #0
  ret v3
func __irq 0 void 3
block
  ret _
func main 0 ret 45
block
  store stw #1 #-65536 r0
  copy v5 #0
  jump 1
block
  jump 3
block
  jump 4
block
  store stw #67 #-65464 r0
  store stw #68 #-65464 r0
  bin and v23 #0 v5
  store stw #69 #-65464 r0
  un sxqw v24 v5
  bin shl v26 #21 v24
  jump 7
block
  jump 6
block
  jump 6
block
  copy v5 #0
  jump 1
block
  jump 9
block
  jump 7
block
  bin xor v40 #0 v26
  bin xor v41 v40 #0
  bin xor v42 v41 v24
  bin xor v43 v42 v23
  bin xor v44 v43 #0
  ret v44
";

#[test]
fn fuzz_seed_2604_midblock_trap_is_exact_on_every_design_point() {
    let module = tta_ir::text::parse_module(SEED_2604).expect("parse");
    let spec = IoSpec {
        schedule: vec![(IrqAt::MmioStore(3), SOFT_LINE)],
        ..IoSpec::default()
    };
    let (ret, irqs) = golden(&module, &spec);
    assert_eq!((ret, irqs), (21, 1));
    assert_reactive_parity(&module, &spec);
}
