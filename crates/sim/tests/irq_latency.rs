//! Interrupt-latency snapshots: the cycle-exact trap entry/return cost
//! of every design point, pinned per style.
//!
//! The paper's interrupt argument is microarchitectural: a TTA exposes
//! its datapath (in-flight FU results, the transport buses, immediate
//! registers) in the architectural state, so a precise trap must drain or
//! save more state than a scalar core whose only exposed state is the
//! register file. The simulators charge that cost explicitly — the
//! statically scheduled cores drain the writeback wheel (one cycle per
//! residual bucket) and then pay a fixed two-cycle trap entry plus a
//! two-cycle return, while the scalar core pays one issue cycle plus its
//! branch-refill penalty each way and drains nothing. This suite pins
//! those numbers exactly so the latency table in EXPERIMENTS.md cannot
//! rot silently.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::inst::MemRegion;
use tta_ir::Module;
use tta_model::io::{IoSpec, IrqAt, IRQ_CTRL_ADDR, SOFT_LINE};
use tta_model::presets;
use tta_sim::{run_with_io, SimResult};

const FUEL: u64 = 100_000;

/// A guest with a minimal handler (bump a counter) and a spin-loop main
/// that enables interrupts and returns the counter.
fn guest() -> Module {
    let mut mb = ModuleBuilder::new("latency_guest");
    let buf = mb.buffer(8);
    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let old = hb.ldw(buf.base(), buf.region);
    let n = hb.add(old, 1);
    hb.stw(n, buf.base(), buf.region);
    hb.ret_void();
    mb.add(hb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let i = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, 40);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    let v = fb.ldw(buf.base(), buf.region);
    fb.ret(v);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

fn reactive(machine: &tta_model::Machine, module: &Module, spec: &IoSpec) -> SimResult {
    let c = compile(module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
    run_with_io(
        machine,
        &c.program,
        module.initial_memory(),
        FUEL,
        spec,
        c.irq_entry,
    )
    .unwrap_or_else(|e| panic!("reactive run on {}: {e}", machine.name))
}

/// One interrupt mid-spin at a fixed cycle: pin the exact trap overhead
/// (drain + entry + return) each design point charges.
#[test]
fn trap_overhead_is_cycle_exact_per_design_point() {
    let module = guest();
    let spec = IoSpec {
        schedule: vec![(IrqAt::Cycle(60), SOFT_LINE)],
        ..IoSpec::default()
    };
    // (design point, pinned irq_cycles for one delivery + return).
    // Scalar cores pay 2 * (1 issue + branch_penalty) and never drain;
    // TTA/VLIW cores pay wheel-drain + 2 cycles each way.
    let pinned: &[(&str, u64)] = &[
        ("mblaze-3", 6),
        ("mblaze-5", 4),
        ("m-tta-1", 4),
        ("m-vliw-2", 5),
        ("p-vliw-2", 5),
        ("m-tta-2", 4),
        ("p-tta-2", 5),
        ("bm-tta-2", 5),
        ("m-vliw-3", 5),
        ("p-vliw-3", 5),
        ("m-tta-3", 5),
        ("p-tta-3", 4),
        ("bm-tta-3", 5),
    ];
    let machines = presets::all_design_points();
    assert_eq!(machines.len(), pinned.len(), "design-point list changed");
    for (machine, &(name, want)) in machines.iter().zip(pinned) {
        assert_eq!(machine.name, name, "design-point order changed");
        let r = reactive(machine, &module, &spec);
        assert_eq!(r.stats.irqs, 1, "{name}: exactly one delivery");
        assert_eq!(r.ret, 1, "{name}: handler ran once");
        assert_eq!(
            r.stats.irq_cycles, want,
            "{name}: trap overhead changed (got {}, pinned {want})",
            r.stats.irq_cycles
        );
        // Scalar trap overhead is pure stall; the statically scheduled
        // cores never charge less than the fixed 2+2 entry/return.
        if let Some(scalar) = &machine.scalar {
            let pen = scalar.branch_penalty as u64;
            assert_eq!(
                r.stats.irq_cycles,
                2 * (1 + pen),
                "{name}: scalar trap model"
            );
        } else {
            assert!(r.stats.irq_cycles >= 4, "{name}: fixed trap floor");
        }
    }
}

/// The interrupt tax is visible end-to-end: the same guest with the same
/// schedule costs exactly `irq_cycles` more than the undisturbed run
/// plus the handler's own execution — i.e. total cycles grow when the
/// interrupt fires, and by a deterministic amount (run twice).
#[test]
fn interrupt_cost_is_deterministic_and_additive() {
    let module = guest();
    let quiet_spec = IoSpec::default();
    let spec = IoSpec {
        schedule: vec![(IrqAt::Cycle(60), SOFT_LINE)],
        ..IoSpec::default()
    };
    for machine in &presets::all_design_points() {
        let quiet = reactive(machine, &module, &quiet_spec);
        let a = reactive(machine, &module, &spec);
        let b = reactive(machine, &module, &spec);
        assert_eq!(a, b, "{}: reactive run must be deterministic", machine.name);
        assert_eq!(quiet.stats.irqs, 0, "{}", machine.name);
        assert!(
            a.cycles >= quiet.cycles + a.stats.irq_cycles,
            "{}: interrupted run ({}) must pay at least the quiet run ({}) plus trap tax ({})",
            machine.name,
            a.cycles,
            quiet.cycles,
            a.stats.irq_cycles
        );
    }
}
