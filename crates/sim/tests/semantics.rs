//! Direct tests of the simulators' timing semantics with hand-built
//! machine programs — the contract the schedulers plan against, pinned
//! down independently of the compiler.

use tta_isa::{
    Move, MoveDst, MoveSrc, OpSrc, Operation, ScalarInst, TtaInst, VliwBundle, VliwSlot,
};
use tta_model::{presets, FuId, Opcode, RegRef, RfId};
use tta_sim::{SimError, SimResult};

const ALU: FuId = FuId(0);
// In the single-ALU presets the LSU is unit 1 and the control unit 2.
const LSU: FuId = FuId(1);
const CU: FuId = FuId(2);

fn rr(i: u16) -> RegRef {
    RegRef {
        rf: RfId(0),
        index: i,
    }
}

fn mv(src: MoveSrc, dst: MoveDst) -> Option<Move> {
    Some(Move { src, dst })
}

/// Run a TTA program on m-tta-1 with 64 KiB of memory.
fn run_tta(insts: Vec<TtaInst>) -> Result<SimResult, SimError> {
    let m = presets::m_tta_1();
    tta_sim::tta::run_tta(&m, &insts, vec![0; 1 << 16], 10_000)
}

/// Build an m-tta-1 instruction from up to three slot moves.
fn inst(slots: [Option<Move>; 3]) -> TtaInst {
    TtaInst {
        slots: slots.to_vec(),
        limm: None,
    }
}

fn store_and_halt(value_src: MoveSrc) -> Vec<TtaInst> {
    vec![
        // value -> lsu.o ; #8 -> lsu.t.stw  (RETVAL_ADDR = 8)
        inst([
            mv(value_src, MoveDst::FuOperand(LSU)),
            mv(MoveSrc::Imm(8), MoveDst::FuTrigger(LSU, Opcode::Stw)),
            None,
        ]),
        inst([
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(CU, Opcode::Halt)),
            None,
            None,
        ]),
    ]
}

#[test]
fn alu_result_is_readable_exactly_at_latency() {
    // add(5, 7) triggered at cycle 0; result port readable at cycle 1.
    let mut prog = vec![inst([
        mv(MoveSrc::Imm(5), MoveDst::FuOperand(ALU)),
        mv(MoveSrc::Imm(7), MoveDst::FuTrigger(ALU, Opcode::Add)),
        None,
    ])];
    prog.extend(store_and_halt(MoveSrc::FuResult(ALU)));
    let r = run_tta(prog).unwrap();
    assert_eq!(r.ret, 12);
    assert_eq!(r.cycles, 3);
}

#[test]
fn reading_a_result_port_too_early_is_a_machine_error() {
    // Read the ALU result port in cycle 0, before any operation completed.
    let prog = vec![inst([
        mv(MoveSrc::FuResult(ALU), MoveDst::FuOperand(LSU)),
        None,
        None,
    ])];
    match run_tta(prog) {
        Err(SimError::Machine(msg)) => assert!(msg.contains("result port"), "{msg}"),
        other => panic!("expected a machine error, got {other:?}"),
    }
}

#[test]
fn rf_write_is_visible_one_cycle_later() {
    // Write r3 = 42 at cycle 0; read it at cycle 1 (gets 42). A same-cycle
    // read at cycle 0 would read the reset value 0 — check both paths.
    let mut prog = vec![
        inst([mv(MoveSrc::Imm(42), MoveDst::Rf(rr(3))), None, None]),
        // cycle 1: r3 -> alu.o ; 0 -> alu trigger add => 42
        inst([
            mv(MoveSrc::Rf(rr(3)), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
    ];
    prog.extend(store_and_halt(MoveSrc::FuResult(ALU)));
    assert_eq!(run_tta(prog).unwrap().ret, 42);

    // Same-cycle read sees the old (zero) value.
    let mut prog2 = vec![inst([
        mv(MoveSrc::Imm(42), MoveDst::Rf(rr(3))),
        mv(MoveSrc::Rf(rr(3)), MoveDst::FuOperand(ALU)),
        mv(MoveSrc::Imm(0), MoveDst::FuTrigger(ALU, Opcode::Add)),
    ])];
    prog2.extend(store_and_halt(MoveSrc::FuResult(ALU)));
    assert_eq!(run_tta(prog2).unwrap().ret, 0);
}

#[test]
fn operand_port_storage_persists_across_triggers() {
    // Load the operand port once (10), trigger two adds with different
    // trigger values; the port value is reused (operand sharing).
    let mut prog = vec![
        inst([
            mv(MoveSrc::Imm(10), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(1), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
        // Second trigger, no operand move: still a = 10.
        inst([
            mv(MoveSrc::Imm(2), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
            None,
        ]),
    ];
    prog.extend(store_and_halt(MoveSrc::FuResult(ALU)));
    assert_eq!(run_tta(prog).unwrap().ret, 12);
}

#[test]
fn long_immediate_becomes_visible_next_cycle() {
    let mut limm = TtaInst::nop(3);
    limm.limm = Some((0, 123_456_789));
    let mut prog = vec![limm];
    prog.extend(store_and_halt(MoveSrc::ImmReg(0)));
    assert_eq!(run_tta(prog).unwrap().ret, 123_456_789);
}

#[test]
fn reading_an_unwritten_imm_register_is_a_machine_error() {
    let prog = vec![inst([
        mv(MoveSrc::ImmReg(0), MoveDst::FuOperand(ALU)),
        None,
        None,
    ])];
    assert!(matches!(run_tta(prog), Err(SimError::Machine(_))));
}

#[test]
fn jump_executes_exactly_two_delay_slots() {
    // jump to the halt at index 5, triggered at cycle 0; the two delay
    // slots write r1 and r2; the skipped instruction would write r3.
    let mut limm = TtaInst::nop(3);
    limm.limm = Some((0, 5));
    let prog = vec![
        limm, // 0
        inst([
            mv(MoveSrc::ImmReg(0), MoveDst::FuTrigger(CU, Opcode::Jump)),
            None,
            None,
        ]), // 1
        inst([mv(MoveSrc::Imm(1), MoveDst::Rf(rr(1))), None, None]), // 2 (delay)
        inst([mv(MoveSrc::Imm(2), MoveDst::Rf(rr(2))), None, None]), // 3 (delay)
        inst([mv(MoveSrc::Imm(3), MoveDst::Rf(rr(3))), None, None]), // 4 (skipped)
        // 5: r1+r2 -> store
        inst([
            mv(MoveSrc::Rf(rr(1)), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Rf(rr(2)), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
        inst([
            mv(MoveSrc::FuResult(ALU), MoveDst::FuOperand(LSU)),
            mv(MoveSrc::Imm(8), MoveDst::FuTrigger(LSU, Opcode::Stw)),
            None,
        ]),
        inst([
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(CU, Opcode::Halt)),
            None,
            None,
        ]),
    ];
    let r = run_tta(prog).unwrap();
    // Delay slots executed: r1 + r2 = 3; the skipped store of r3 never ran.
    assert_eq!(r.ret, 3);
    assert_eq!(r.stats.branches_taken, 1);
}

#[test]
fn runaway_programs_exhaust_fuel() {
    // An infinite self-loop.
    let mut limm = TtaInst::nop(3);
    limm.limm = Some((0, 0));
    let prog = vec![
        limm,
        inst([
            mv(MoveSrc::ImmReg(0), MoveDst::FuTrigger(CU, Opcode::Jump)),
            None,
            None,
        ]),
        TtaInst::nop(3),
        TtaInst::nop(3),
    ];
    assert!(matches!(run_tta(prog), Err(SimError::OutOfFuel)));
}

#[test]
fn same_cycle_completions_on_one_unit_are_rejected() {
    // mul (latency 3) at cycle 0 and add (latency 1) at cycle 2 both
    // complete at cycle 3 — a hazard the scheduler must never emit.
    let prog = vec![
        inst([
            mv(MoveSrc::Imm(2), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(3), MoveDst::FuTrigger(ALU, Opcode::Mul)),
            None,
        ]),
        TtaInst::nop(3),
        inst([
            mv(MoveSrc::Imm(1), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(1), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
        TtaInst::nop(3),
        TtaInst::nop(3),
    ];
    match run_tta(prog) {
        Err(SimError::Machine(msg)) => assert!(msg.contains("results"), "{msg}"),
        other => panic!("expected a machine error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// VLIW timing.
// ---------------------------------------------------------------------

/// m-vliw-2: slot 0 hosts ALU+CU, slot 1 the LSU.
fn vliw_op(
    op: Opcode,
    fu: FuId,
    dst: Option<RegRef>,
    a: Option<OpSrc>,
    b: Option<OpSrc>,
) -> VliwSlot {
    VliwSlot::Op(Operation { op, fu, dst, a, b })
}

#[test]
fn vliw_writeback_visible_after_latency_plus_one() {
    let m = presets::m_vliw_2();
    let lsu = FuId(1);
    let cu = FuId(2);
    // c0: r1 = 5 + 7 (visible from cycle 2)
    // c1: store r1 (reads the OLD r1 = 0)
    // c2: store r1 to another address (reads 12)
    let prog = vec![
        VliwBundle {
            slots: vec![
                Some(vliw_op(
                    Opcode::Add,
                    ALU,
                    Some(rr(1)),
                    Some(OpSrc::Imm(5)),
                    Some(OpSrc::Imm(7)),
                )),
                None,
            ],
        },
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    Opcode::Stw,
                    lsu,
                    None,
                    Some(OpSrc::Reg(rr(1))),
                    Some(OpSrc::Imm(16)),
                )),
            ],
        },
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    Opcode::Stw,
                    lsu,
                    None,
                    Some(OpSrc::Reg(rr(1))),
                    Some(OpSrc::Imm(8)),
                )),
            ],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0)))),
                None,
            ],
        },
    ];
    let r = tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    assert_eq!(r.ret, 12); // cycle-2 store saw the new value
    assert_eq!(
        i32::from_le_bytes(r.memory[16..20].try_into().unwrap()),
        0,
        "cycle-1 store must see the pre-writeback value"
    );
}

#[test]
fn vliw_limm_head_behaves_like_a_one_cycle_op() {
    let m = presets::m_vliw_2();
    let lsu = FuId(1);
    let cu = FuId(2);
    let prog = vec![
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead {
                    dst: rr(2),
                    value: 1 << 30,
                }),
                Some(VliwSlot::LimmCont),
            ],
        },
        VliwBundle {
            slots: vec![None, None],
        },
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    Opcode::Stw,
                    lsu,
                    None,
                    Some(OpSrc::Reg(rr(2))),
                    Some(OpSrc::Imm(8)),
                )),
            ],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0)))),
                None,
            ],
        },
    ];
    let r = tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    assert_eq!(r.ret, 1 << 30);
    assert_eq!(r.stats.limms, 1);
}

// ---------------------------------------------------------------------
// Scalar pipeline timing.
// ---------------------------------------------------------------------

fn scalar_op(
    op: Opcode,
    fu: FuId,
    dst: Option<RegRef>,
    a: Option<OpSrc>,
    b: Option<OpSrc>,
) -> ScalarInst {
    ScalarInst::Op(Operation { op, fu, dst, a, b })
}

#[test]
fn scalar_load_use_stall_is_charged() {
    let m = presets::mblaze_3();
    let lsu = FuId(1);
    let cu = FuId(2);
    // Independent instructions: no stalls → 4 cycles. With a load-use
    // dependence the consumer waits for the 3-cycle load.
    let independent = vec![
        scalar_op(Opcode::Ldw, lsu, Some(rr(1)), None, Some(OpSrc::Imm(16))),
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(2)),
            Some(OpSrc::Imm(1)),
            Some(OpSrc::Imm(2)),
        ),
        scalar_op(
            Opcode::Stw,
            lsu,
            None,
            Some(OpSrc::Reg(rr(2))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let r1 = tta_sim::scalar::run_scalar(&m, &independent, vec![0; 1 << 16], 1000).unwrap();
    assert_eq!(r1.stats.stall_cycles, 0);

    let dependent = vec![
        scalar_op(Opcode::Ldw, lsu, Some(rr(1)), None, Some(OpSrc::Imm(16))),
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(2)),
            Some(OpSrc::Reg(rr(1))),
            Some(OpSrc::Imm(2)),
        ),
        scalar_op(
            Opcode::Stw,
            lsu,
            None,
            Some(OpSrc::Reg(rr(2))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let r2 = tta_sim::scalar::run_scalar(&m, &dependent, vec![0; 1 << 16], 1000).unwrap();
    assert!(
        r2.stats.stall_cycles >= 2,
        "load-use must stall: {:?}",
        r2.stats
    );
    assert!(r2.cycles > r1.cycles);
}

#[test]
fn scalar_taken_branch_pays_the_pipeline_penalty() {
    let cu = FuId(2);
    let make = |m: &tta_model::Machine| {
        let prog = vec![
            // Jump over one instruction.
            scalar_op(Opcode::Jump, cu, None, None, Some(OpSrc::Imm(2))),
            scalar_op(
                Opcode::Add,
                ALU,
                Some(rr(1)),
                Some(OpSrc::Imm(1)),
                Some(OpSrc::Imm(1)),
            ),
            scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
        ];
        tta_sim::scalar::run_scalar(m, &prog, vec![0; 1 << 16], 1000).unwrap()
    };
    let r3 = make(&presets::mblaze_3());
    let r5 = make(&presets::mblaze_5());
    // 3-stage penalty 2, 5-stage (branch-target cache) penalty 1.
    assert_eq!(r3.cycles - r5.cycles, 1);
    assert_eq!(r3.stats.branches_taken, 1);
}

#[test]
fn scalar_imm_prefix_costs_one_cycle() {
    let m = presets::mblaze_3();
    let cu = FuId(2);
    let with_prefix = vec![
        ScalarInst::ImmPrefix,
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(1)),
            Some(OpSrc::Imm(1 << 20)),
            Some(OpSrc::Imm(0)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let without = vec![
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(1)),
            Some(OpSrc::Imm(7)),
            Some(OpSrc::Imm(0)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let r1 = tta_sim::scalar::run_scalar(&m, &with_prefix, vec![0; 1 << 16], 100).unwrap();
    let r2 = tta_sim::scalar::run_scalar(&m, &without, vec![0; 1 << 16], 100).unwrap();
    assert_eq!(r1.cycles - r2.cycles, 1);
}

#[test]
fn scalar_without_forwarding_pays_an_extra_cycle_per_dependence() {
    // A custom pipeline with forwarding disabled: back-to-back dependent
    // adds stall one extra cycle each.
    let mut m = presets::mblaze_3();
    m.scalar = Some(tta_model::ScalarPipeline {
        stages: 3,
        branch_penalty: 2,
        forwarding: false,
        imm_bits: 16,
    });
    let cu = FuId(2);
    let prog = vec![
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(1)),
            Some(OpSrc::Imm(1)),
            Some(OpSrc::Imm(1)),
        ),
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(2)),
            Some(OpSrc::Reg(rr(1))),
            Some(OpSrc::Imm(1)),
        ),
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(3)),
            Some(OpSrc::Reg(rr(2))),
            Some(OpSrc::Imm(1)),
        ),
        scalar_op(
            Opcode::Stw,
            LSU,
            None,
            Some(OpSrc::Reg(rr(3))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let slow = tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 100).unwrap();
    let fast =
        tta_sim::scalar::run_scalar(&presets::mblaze_3(), &prog, vec![0; 1 << 16], 100).unwrap();
    assert_eq!(slow.ret, 4); // ((1+1)+1)+1
    assert_eq!(fast.ret, 4);
    assert!(
        slow.cycles > fast.cycles,
        "{} vs {}",
        slow.cycles,
        fast.cycles
    );
    assert!(slow.stats.stall_cycles >= fast.stats.stall_cycles + 3);
}

// ---------------------------------------------------------------------
// Directed ALU edge cases, pinned identically on all three styles.
//
// The opcode set has no Div/Rem, so the classic `i32::MIN / -1` trap is
// represented by its overflow analogues that do exist: wrapping Mul/Add/
// Sub at the integer extremes, plus shift amounts at and beyond the
// register width (hardware masks the amount to 5 bits) and signed/
// unsigned comparisons straddling `i32::MIN`/`i32::MAX`.
// ---------------------------------------------------------------------

/// Evaluate `op(a, b)` on m-tta-1 with both operands carried by long
/// immediates (edge values never fit the short bus immediates).
fn tta_alu(op: Opcode, a: i32, b: i32) -> i32 {
    let mut la = TtaInst::nop(3);
    la.limm = Some((0, a));
    let mut lb = TtaInst::nop(3);
    lb.limm = Some((1, b));
    let mut prog = vec![
        la,
        lb,
        // a -> alu.o ; b -> alu.t (operand port is the first input).
        inst([
            mv(MoveSrc::ImmReg(0), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::ImmReg(1), MoveDst::FuTrigger(ALU, op)),
            None,
        ]),
    ];
    // The result port is readable exactly `latency` cycles after trigger.
    for _ in 1..op.latency() {
        prog.push(TtaInst::nop(3));
    }
    prog.extend(store_and_halt(MoveSrc::FuResult(ALU)));
    run_tta(prog).unwrap().ret
}

/// Evaluate `op(a, b)` on m-vliw-2, operands loaded via limm heads.
fn vliw_alu(op: Opcode, a: i32, b: i32) -> i32 {
    let m = presets::m_vliw_2();
    let lsu = FuId(1);
    let cu = FuId(2);
    let nop = || VliwBundle {
        slots: vec![None, None],
    };
    let mut prog = vec![
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead {
                    dst: rr(1),
                    value: a,
                }),
                Some(VliwSlot::LimmCont),
            ],
        },
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead {
                    dst: rr(2),
                    value: b,
                }),
                Some(VliwSlot::LimmCont),
            ],
        },
        nop(), // r2 written at c1 becomes visible at c3
        VliwBundle {
            slots: vec![
                Some(vliw_op(
                    op,
                    ALU,
                    Some(rr(3)),
                    Some(OpSrc::Reg(rr(1))),
                    Some(OpSrc::Reg(rr(2))),
                )),
                None,
            ],
        },
    ];
    // Writeback is visible `latency + 1` cycles after issue.
    for _ in 0..op.latency() {
        prog.push(nop());
    }
    prog.push(VliwBundle {
        slots: vec![
            None,
            Some(vliw_op(
                Opcode::Stw,
                lsu,
                None,
                Some(OpSrc::Reg(rr(3))),
                Some(OpSrc::Imm(8)),
            )),
        ],
    });
    prog.push(VliwBundle {
        slots: vec![
            Some(vliw_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0)))),
            None,
        ],
    });
    tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000)
        .unwrap()
        .ret
}

/// Evaluate `op(a, b)` on mblaze-3 (the interlocked pipeline resolves
/// hazards itself; the imm prefix models the wide-immediate encoding).
fn scalar_alu(op: Opcode, a: i32, b: i32) -> i32 {
    let m = presets::mblaze_3();
    let cu = FuId(2);
    let prog = vec![
        ScalarInst::ImmPrefix,
        scalar_op(
            op,
            ALU,
            Some(rr(1)),
            Some(OpSrc::Imm(a)),
            Some(OpSrc::Imm(b)),
        ),
        scalar_op(
            Opcode::Stw,
            LSU,
            None,
            Some(OpSrc::Reg(rr(1))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 1000)
        .unwrap()
        .ret
}

/// All three styles must agree with the shared reference semantics.
fn check_alu_edge(op: Opcode, a: i32, b: i32) {
    let want = op.eval_alu(a, b);
    assert_eq!(tta_alu(op, a, b), want, "tta: {op:?}({a}, {b})");
    assert_eq!(vliw_alu(op, a, b), want, "vliw: {op:?}({a}, {b})");
    assert_eq!(scalar_alu(op, a, b), want, "scalar: {op:?}({a}, {b})");
}

#[test]
fn reference_semantics_of_edge_cases_are_the_expected_constants() {
    // Shift amounts are masked to the low 5 bits (b & 31), like the FPGA
    // barrel shifter.
    assert_eq!(Opcode::Shl.eval_alu(1, 31), i32::MIN);
    assert_eq!(Opcode::Shl.eval_alu(1, 32), 1);
    assert_eq!(Opcode::Shl.eval_alu(1, 33), 2);
    assert_eq!(Opcode::Shl.eval_alu(1, -1), i32::MIN); // -1 & 31 == 31
    assert_eq!(Opcode::Shr.eval_alu(i32::MIN, 31), -1);
    assert_eq!(Opcode::Shr.eval_alu(i32::MIN, 32), i32::MIN);
    assert_eq!(Opcode::Shru.eval_alu(i32::MIN, 31), 1);
    assert_eq!(Opcode::Shru.eval_alu(-1, 32), -1);
    // Wrapping arithmetic at the extremes (the Div-overflow analogues).
    assert_eq!(Opcode::Mul.eval_alu(i32::MIN, -1), i32::MIN);
    assert_eq!(Opcode::Mul.eval_alu(i32::MAX, i32::MAX), 1);
    assert_eq!(Opcode::Add.eval_alu(i32::MAX, 1), i32::MIN);
    assert_eq!(Opcode::Sub.eval_alu(i32::MIN, 1), i32::MAX);
    // Comparisons straddling the sign boundary.
    assert_eq!(Opcode::Gt.eval_alu(i32::MIN, i32::MAX), 0);
    assert_eq!(Opcode::Gt.eval_alu(i32::MAX, i32::MIN), 1);
    assert_eq!(Opcode::Gtu.eval_alu(i32::MIN, i32::MAX), 1);
    assert_eq!(Opcode::Gtu.eval_alu(i32::MAX, i32::MIN), 0);
    assert_eq!(Opcode::Eq.eval_alu(i32::MIN, i32::MIN), 1);
}

#[test]
fn shift_amounts_at_and_beyond_width_on_all_styles() {
    for op in [Opcode::Shl, Opcode::Shr, Opcode::Shru] {
        for b in [31, 32, 33, 63, -1] {
            for a in [i32::MIN, -2, 0x4000_0001] {
                check_alu_edge(op, a, b);
            }
        }
    }
}

#[test]
fn wrapping_arithmetic_at_extremes_on_all_styles() {
    for (a, b) in [
        (i32::MIN, -1),
        (i32::MAX, i32::MAX),
        (i32::MIN, i32::MIN),
        (0x10000, 0x10000),
        (48271, 2_147_483_629),
    ] {
        check_alu_edge(Opcode::Mul, a, b);
    }
    check_alu_edge(Opcode::Add, i32::MAX, 1);
    check_alu_edge(Opcode::Add, i32::MIN, i32::MIN);
    check_alu_edge(Opcode::Sub, i32::MIN, 1);
    check_alu_edge(Opcode::Sub, 0, i32::MIN);
}

#[test]
fn comparisons_at_integer_extremes_on_all_styles() {
    for op in [Opcode::Gt, Opcode::Gtu, Opcode::Eq] {
        for (a, b) in [
            (i32::MIN, i32::MAX),
            (i32::MAX, i32::MIN),
            (i32::MIN, i32::MIN),
            (i32::MAX, i32::MAX),
            (i32::MIN, 0),
            (0, i32::MIN),
        ] {
            check_alu_edge(op, a, b);
        }
    }
}

// ---------------------------------------------------------------------
// Sub-word memory accesses at word-unaligned (but width-aligned)
// addresses, on all three styles.
// ---------------------------------------------------------------------

/// Store `value` with `store_op` at `addr`, load it back with `load_op`,
/// on m-tta-1.
fn tta_subword(store_op: Opcode, load_op: Opcode, value: i32, addr: i32) -> i32 {
    let mut limm = TtaInst::nop(3);
    limm.limm = Some((0, value));
    let prog = vec![
        limm,
        inst([
            mv(MoveSrc::ImmReg(0), MoveDst::FuOperand(LSU)),
            mv(MoveSrc::Imm(addr), MoveDst::FuTrigger(LSU, store_op)),
            None,
        ]),
        inst([
            mv(MoveSrc::Imm(addr), MoveDst::FuTrigger(LSU, load_op)),
            None,
            None,
        ]),
        TtaInst::nop(3),
        TtaInst::nop(3),
        // Load result ready (latency 3); route through the ALU so the
        // store trigger below does not race the LSU result port.
        inst([
            mv(MoveSrc::FuResult(LSU), MoveDst::FuOperand(ALU)),
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(ALU, Opcode::Add)),
            None,
        ]),
        inst([
            mv(MoveSrc::FuResult(ALU), MoveDst::FuOperand(LSU)),
            mv(MoveSrc::Imm(8), MoveDst::FuTrigger(LSU, Opcode::Stw)),
            None,
        ]),
        inst([
            mv(MoveSrc::Imm(0), MoveDst::FuTrigger(CU, Opcode::Halt)),
            None,
            None,
        ]),
    ];
    run_tta(prog).unwrap().ret
}

/// The same round trip on m-vliw-2.
fn vliw_subword(store_op: Opcode, load_op: Opcode, value: i32, addr: i32) -> i32 {
    let m = presets::m_vliw_2();
    let lsu = FuId(1);
    let cu = FuId(2);
    let nop = || VliwBundle {
        slots: vec![None, None],
    };
    let mut prog = vec![
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead { dst: rr(1), value }),
                Some(VliwSlot::LimmCont),
            ],
        },
        nop(), // r1 visible at c2
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    store_op,
                    lsu,
                    None,
                    Some(OpSrc::Reg(rr(1))),
                    Some(OpSrc::Imm(addr)),
                )),
            ],
        },
        VliwBundle {
            slots: vec![
                None,
                Some(vliw_op(
                    load_op,
                    lsu,
                    Some(rr(2)),
                    None,
                    Some(OpSrc::Imm(addr)),
                )),
            ],
        },
    ];
    for _ in 0..Opcode::Ldw.latency() {
        prog.push(nop());
    }
    prog.push(VliwBundle {
        slots: vec![
            None,
            Some(vliw_op(
                Opcode::Stw,
                lsu,
                None,
                Some(OpSrc::Reg(rr(2))),
                Some(OpSrc::Imm(8)),
            )),
        ],
    });
    prog.push(VliwBundle {
        slots: vec![
            Some(vliw_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0)))),
            None,
        ],
    });
    tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000)
        .unwrap()
        .ret
}

/// The same round trip on mblaze-3.
fn scalar_subword(store_op: Opcode, load_op: Opcode, value: i32, addr: i32) -> i32 {
    let m = presets::mblaze_3();
    let cu = FuId(2);
    let prog = vec![
        ScalarInst::ImmPrefix,
        scalar_op(
            store_op,
            LSU,
            None,
            Some(OpSrc::Imm(value)),
            Some(OpSrc::Imm(addr)),
        ),
        scalar_op(load_op, LSU, Some(rr(1)), None, Some(OpSrc::Imm(addr))),
        scalar_op(
            Opcode::Stw,
            LSU,
            None,
            Some(OpSrc::Reg(rr(1))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 1000)
        .unwrap()
        .ret
}

fn check_subword(store_op: Opcode, load_op: Opcode, value: i32, addr: i32, want: i32) {
    assert_eq!(
        tta_subword(store_op, load_op, value, addr),
        want,
        "tta: {store_op:?}/{load_op:?} {value:#x} @ {addr}"
    );
    assert_eq!(
        vliw_subword(store_op, load_op, value, addr),
        want,
        "vliw: {store_op:?}/{load_op:?} {value:#x} @ {addr}"
    );
    assert_eq!(
        scalar_subword(store_op, load_op, value, addr),
        want,
        "scalar: {store_op:?}/{load_op:?} {value:#x} @ {addr}"
    );
}

#[test]
fn unaligned_subword_round_trips_on_all_styles() {
    // Half at addr 18: half-aligned but not word-aligned. The store
    // truncates to 16 bits; Ldh sign-extends, Ldhu zero-extends.
    let half = 0xDEAD_8765u32 as i32;
    check_subword(Opcode::Sth, Opcode::Ldh, half, 18, 0xFFFF_8765u32 as i32);
    check_subword(Opcode::Sth, Opcode::Ldhu, half, 18, 0x8765);
    // Byte at addr 19: any alignment is legal for bytes.
    let byte = 0xCAFE_FE99u32 as i32;
    check_subword(Opcode::Stq, Opcode::Ldq, byte, 19, 0xFFFF_FF99u32 as i32);
    check_subword(Opcode::Stq, Opcode::Ldqu, byte, 19, 0x99);
    // Positive sub-word values survive signed loads unchanged.
    check_subword(Opcode::Sth, Opcode::Ldh, 0x1234, 22, 0x1234);
    check_subword(Opcode::Stq, Opcode::Ldq, 0x56, 21, 0x56);
}

#[test]
fn word_access_at_unaligned_address_faults_on_all_styles() {
    // Word load at addr 18 violates the alignment contract everywhere.
    let m = presets::mblaze_3();
    let cu = FuId(2);
    let prog = vec![
        scalar_op(Opcode::Ldw, LSU, Some(rr(1)), None, Some(OpSrc::Imm(18))),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    assert!(matches!(
        tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 1000),
        Err(SimError::Mem(_))
    ));

    let tta_prog = vec![
        inst([
            mv(MoveSrc::Imm(18), MoveDst::FuTrigger(LSU, Opcode::Ldw)),
            None,
            None,
        ]),
        TtaInst::nop(3),
    ];
    assert!(matches!(run_tta(tta_prog), Err(SimError::Mem(_))));

    let mv2 = presets::m_vliw_2();
    let vliw_prog = vec![VliwBundle {
        slots: vec![
            None,
            Some(vliw_op(
                Opcode::Ldw,
                FuId(1),
                Some(rr(1)),
                None,
                Some(OpSrc::Imm(18)),
            )),
        ],
    }];
    assert!(matches!(
        tta_sim::vliw::run_vliw(&mv2, &vliw_prog, vec![0; 1 << 16], 1000),
        Err(SimError::Mem(_))
    ));
}

// ---------------------------------------------------------------------
// stall_cycles semantics: dynamic stalls are a scalar-pipeline concept.
// ---------------------------------------------------------------------

/// `SimStats::stall_cycles` counts *dynamic* interlock and refill cycles,
/// which only the in-order scalar pipeline has. The statically scheduled
/// styles encode all waiting as explicit NOP instructions/slots — visible
/// as NOP/padding density in `tta_sim::GuestProfile`, never as stalls —
/// so their counter must stay zero even for padding-heavy schedules.
#[test]
fn stall_cycles_semantics_are_scalar_only() {
    // TTA: pure padding ahead of the store still costs one *instruction*
    // per waited cycle, never a stall.
    let mut tta_prog = vec![TtaInst::nop(3), TtaInst::nop(3)];
    tta_prog.extend(store_and_halt(MoveSrc::Imm(5)));
    let r = run_tta(tta_prog).unwrap();
    assert_eq!(r.ret, 5);
    assert_eq!(r.stats.stall_cycles, 0);
    assert_eq!(r.cycles, r.stats.instructions);

    // VLIW: the scheduler's NOP bundle between the long immediate's
    // writeback and its consumer is likewise an instruction, not a stall.
    let m = presets::m_vliw_2();
    let prog = vec![
        VliwBundle {
            slots: vec![
                Some(VliwSlot::LimmHead {
                    dst: rr(1),
                    value: 5,
                }),
                Some(VliwSlot::LimmCont),
            ],
        },
        VliwBundle {
            slots: vec![None, None],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(
                    Opcode::Stw,
                    LSU,
                    None,
                    Some(OpSrc::Reg(rr(1))),
                    Some(OpSrc::Imm(8)),
                )),
                None,
            ],
        },
        VliwBundle {
            slots: vec![
                Some(vliw_op(Opcode::Halt, CU, None, None, Some(OpSrc::Imm(0)))),
                None,
            ],
        },
    ];
    let r = tta_sim::vliw::run_vliw(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    assert_eq!(r.ret, 5);
    assert_eq!(r.stats.stall_cycles, 0);
    assert_eq!(r.cycles, r.stats.instructions);

    // Scalar: a load-use dependence stalls dynamically, and the cycle
    // count decomposes exactly into issue slots plus stalls.
    let m = presets::mblaze_3();
    let lsu = FuId(1);
    let cu = FuId(2);
    let prog = vec![
        scalar_op(Opcode::Ldw, lsu, Some(rr(1)), None, Some(OpSrc::Imm(16))),
        scalar_op(
            Opcode::Add,
            ALU,
            Some(rr(2)),
            Some(OpSrc::Reg(rr(1))),
            Some(OpSrc::Imm(2)),
        ),
        scalar_op(
            Opcode::Stw,
            lsu,
            None,
            Some(OpSrc::Reg(rr(2))),
            Some(OpSrc::Imm(8)),
        ),
        scalar_op(Opcode::Halt, cu, None, None, Some(OpSrc::Imm(0))),
    ];
    let r = tta_sim::scalar::run_scalar(&m, &prog, vec![0; 1 << 16], 1000).unwrap();
    assert!(
        r.stats.stall_cycles > 0,
        "load-use must stall: {:?}",
        r.stats
    );
    assert_eq!(r.cycles, r.stats.instructions + r.stats.stall_cycles);
}
