//! Differential tests: for every design point, compiling a program and
//! running it on the cycle-accurate simulator must produce exactly the
//! return value and memory image of the IR reference interpreter.
//!
//! This is the correctness backbone of the whole reproduction: the
//! interpreter shares only the ALU/memory *semantics* with the simulator
//! (via `tta-model`), so agreement exercises the inliner, constant
//! legalisation, register allocator, all three schedulers and all three
//! simulators end to end.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::interp::Interpreter;
use tta_ir::{Module, Operand, VReg};
use tta_isa::RETVAL_ADDR;
use tta_model::presets;
use tta_testutil::Rng;

/// Compare a module's interpreted execution against compile+simulate on one
/// machine. Memory is compared outside the reserved low area and the spill
/// scratch area.
fn check_machine(module: &Module, machine: &tta_model::Machine) {
    let golden = Interpreter::new(module)
        .run(&[])
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", module.name));
    let compiled = compile(module, machine)
        .unwrap_or_else(|e| panic!("{} on {}: compile failed: {e}", module.name, machine.name));
    let result =
        tta_sim::run(machine, &compiled.program, module.initial_memory()).unwrap_or_else(|e| {
            panic!(
                "{} on {}: simulation failed: {e}",
                module.name, machine.name
            )
        });

    if let Some(expected) = golden.ret {
        assert_eq!(
            result.ret, expected,
            "{} on {}: return value mismatch",
            module.name, machine.name
        );
    }
    // Compare data memory: skip the reserved head (return-value slot) and
    // the compiler's spill scratch area at the top.
    let lo = 16usize;
    let hi = module.mem_size.saturating_sub(4096) as usize;
    assert_eq!(
        &golden.memory[lo..hi],
        &result.memory[lo..hi],
        "{} on {}: memory mismatch",
        module.name,
        machine.name
    );
    assert!(result.cycles > 0);
    let _ = RETVAL_ADDR;
}

fn check_all(module: &Module) {
    for machine in presets::all_design_points() {
        check_machine(module, &machine);
    }
}

// ---------------------------------------------------------------------
// Hand-written scenarios.
// ---------------------------------------------------------------------

#[test]
fn straight_line_arithmetic() {
    let mut mb = ModuleBuilder::new("arith");
    let mut fb = FunctionBuilder::new("main", 0, true);
    let a = fb.copy(1234);
    let b = fb.mul(a, -57);
    let c = fb.xor(b, 0x00ff_00ffu32 as i32);
    let d = fb.shr(c, 3);
    let e = fb.shru(c, 3);
    let f = fb.sub(d, e);
    let g = fb.sxhw(f);
    let h = fb.sxqw(c);
    let i = fb.add(g, h);
    let j = fb.gtu(i, 100);
    let k = fb.ior(i, j);
    fb.ret(k);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn memory_widths_and_extensions() {
    let mut mb = ModuleBuilder::new("memwidth");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(0x8091_a2b3u32 as i32, buf.word(0), buf.region);
    fb.sth(-2, buf.at(8), buf.region);
    fb.stq(0x99u8 as i32, buf.at(12), buf.region);
    let w = fb.ldw(buf.word(0), buf.region);
    let h = fb.ldh(buf.at(8), buf.region);
    let hu = fb.ldhu(buf.at(8), buf.region);
    let q = fb.ldq(buf.at(12), buf.region);
    let qu = fb.ldqu(buf.at(12), buf.region);
    let s1 = fb.add(w, h);
    let s2 = fb.add(hu, q);
    let s3 = fb.add(s1, s2);
    let s4 = fb.add(s3, qu);
    fb.ret(s4);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn loop_with_memory_traffic() {
    let mut mb = ModuleBuilder::new("loopmem");
    let buf = mb.buffer(256);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let i = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let sum_head = fb.new_block();
    let sum_body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    // fill buf[i] = i*i - 3
    fb.switch_to(head);
    let c = fb.lt(i, 64);
    fb.branch(c, body, sum_head);
    fb.switch_to(body);
    let sq = fb.mul(i, i);
    let v = fb.sub(sq, 3);
    let off = fb.shl(i, 2);
    let addr = fb.add(off, buf.base());
    fb.stw(v, addr, buf.region);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    // sum pass
    fb.switch_to(sum_head);
    let j = fb.copy(0);
    let acc = fb.copy(0);
    let sh = fb.new_block();
    fb.jump(sh);
    fb.switch_to(sh);
    let c2 = fb.lt(j, 64);
    fb.branch(c2, sum_body, exit);
    fb.switch_to(sum_body);
    let off2 = fb.shl(j, 2);
    let addr2 = fb.add(off2, buf.base());
    let lv = fb.ldw(addr2, buf.region);
    let acc2 = fb.add(acc, lv);
    fb.copy_to(acc, acc2);
    let j2 = fb.add(j, 1);
    fb.copy_to(j, j2);
    fb.jump(sh);
    fb.switch_to(exit);
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn nested_branches_and_wide_constants() {
    let mut mb = ModuleBuilder::new("branches");
    let mut fb = FunctionBuilder::new("main", 0, true);
    let x = fb.copy(0x1234_5678);
    let y = fb.copy(0x1234_0000);
    let t1 = fb.new_block();
    let f1 = fb.new_block();
    let m1 = fb.new_block();
    let c = fb.gt(x, y);
    let res = fb.vreg();
    fb.branch(c, t1, f1);
    fb.switch_to(t1);
    let a = fb.and(x, 0xffff);
    fb.copy_to(res, a);
    fb.jump(m1);
    fb.switch_to(f1);
    let b = fb.ior(y, 0x55aa);
    fb.copy_to(res, b);
    fb.jump(m1);
    fb.switch_to(m1);
    // another diamond with both targets not-fallthrough ordering
    let t2 = fb.new_block();
    let f2 = fb.new_block();
    let m2 = fb.new_block();
    let c2 = fb.eq(res, 0x5678);
    fb.branch(c2, m2, f2); // if_true jumps forward past f2
    fb.switch_to(t2);
    fb.jump(m2);
    fb.switch_to(f2);
    let r2 = fb.add(res, 0x1234_5678); // reuse the wide constant
    fb.copy_to(res, r2);
    fb.jump(m2);
    fb.switch_to(m2);
    fb.ret(res);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn deep_dependence_chain_vs_wide_parallelism() {
    // Half the block is one long chain (bypass heaven), half is wide and
    // independent (port pressure).
    let mut mb = ModuleBuilder::new("chainwide");
    let mut fb = FunctionBuilder::new("main", 0, true);
    let mut chain = fb.copy(7);
    for k in 0..24 {
        chain = fb.add(chain, k);
        chain = fb.xor(chain, 3);
    }
    let wides: Vec<VReg> = (0..16).map(|k| fb.mul(k, k + 1)).collect();
    let mut acc = fb.copy(0);
    for w in wides {
        acc = fb.add(acc, w);
    }
    let r = fb.sub(chain, acc);
    fb.ret(r);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn spill_pressure_program() {
    // More simultaneously-live values than any machine has registers.
    let mut mb = ModuleBuilder::new("spill");
    let mut fb = FunctionBuilder::new("main", 0, true);
    let vals: Vec<VReg> = (0..100).map(|k| fb.mul(k, k + 3)).collect();
    let mut acc = fb.copy(0);
    for v in vals {
        acc = fb.add(acc, v);
    }
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

#[test]
fn calls_are_inlined_correctly() {
    let mut mb = ModuleBuilder::new("calls");
    let buf = mb.buffer(32);
    let mut gb = FunctionBuilder::new("store_sq", 2, false);
    let sq = gb.mul(gb.param(0), gb.param(0));
    let off = gb.shl(gb.param(1), 2);
    let addr = gb.add(off, buf.base());
    gb.stw(sq, addr, buf.region);
    gb.ret_void();
    let store_sq = mb.add(gb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    for k in 0..6 {
        fb.call_void(store_sq, &[Operand::Imm(k + 2), Operand::Imm(k)]);
    }
    let v0 = fb.ldw(buf.word(0), buf.region);
    let v5 = fb.ldw(buf.word(5), buf.region);
    let r = fb.add(v0, v5);
    fb.ret(r);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    check_all(&mb.finish());
}

// ---------------------------------------------------------------------
// Property-based differential testing with random structured programs.
// ---------------------------------------------------------------------

/// A recipe for a random but well-formed program.
#[derive(Debug, Clone)]
enum Stmt {
    /// dst = op(v[i], v[j]) over existing values.
    Bin(u8, usize, usize),
    /// dst = un-op(v[i]).
    Un(u8, usize),
    /// store v[i] to slot k of the buffer.
    Store(usize, u8),
    /// load slot k of the buffer.
    Load(u8),
    /// dst = constant.
    Const(i32),
    /// if v[i] != 0 { then-stmts } else { else-stmts } (merged value).
    If(usize, Vec<Stmt>, Vec<Stmt>),
    /// bounded loop: repeat body `n` times, accumulating.
    Loop(u8, Vec<Stmt>),
}

/// Generate one random statement. `depth` bounds If/Loop nesting exactly
/// as the old proptest `prop_recursive` strategy did.
fn random_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    // At positive depth, half the draws pick a branching construct.
    if depth > 0 && rng.chance(1, 2) {
        return if rng.next_bool() {
            Stmt::If(
                rng.below(1_000_000),
                random_stmts(rng, depth - 1, 1, 4),
                random_stmts(rng, depth - 1, 1, 4),
            )
        } else {
            Stmt::Loop(rng.range(1, 5) as u8, random_stmts(rng, depth - 1, 1, 4))
        };
    }
    match rng.below(5) {
        0 => Stmt::Bin(
            rng.below(10) as u8,
            rng.below(1_000_000),
            rng.below(1_000_000),
        ),
        1 => Stmt::Un(rng.below(2) as u8, rng.below(1_000_000)),
        2 => Stmt::Store(rng.below(1_000_000), rng.below(16) as u8),
        3 => Stmt::Load(rng.below(16) as u8),
        _ => Stmt::Const(rng.next_i32()),
    }
}

/// Generate `lo..hi` random statements.
fn random_stmts(rng: &mut Rng, depth: u32, lo: usize, hi: usize) -> Vec<Stmt> {
    let n = rng.range(lo, hi);
    (0..n).map(|_| random_stmt(rng, depth)).collect()
}

/// Emit a statement list; returns the value representing the sequence.
fn emit(
    fb: &mut FunctionBuilder,
    buf: &tta_ir::Buffer,
    stmts: &[Stmt],
    vals: &mut Vec<VReg>,
) -> VReg {
    use tta_model::Opcode;
    let pick = |vals: &[VReg], i: usize| vals[i % vals.len()];
    let mut last = pick(vals, 0);
    for s in stmts {
        let v = match s {
            Stmt::Bin(op, i, j) => {
                let ops = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::And,
                    Opcode::Ior,
                    Opcode::Xor,
                    Opcode::Mul,
                    Opcode::Eq,
                    Opcode::Gt,
                    Opcode::Gtu,
                    Opcode::Shl,
                ];
                let a = pick(vals, *i);
                let b = pick(vals, *j);
                fb.bin(ops[*op as usize % ops.len()], a, b)
            }
            Stmt::Un(op, i) => {
                let ops = [Opcode::Sxhw, Opcode::Sxqw];
                let a = pick(vals, *i);
                fb.un(ops[*op as usize % ops.len()], a)
            }
            Stmt::Store(i, k) => {
                let a = pick(vals, *i);
                fb.stw(a, buf.word(*k as u32), buf.region);
                a
            }
            Stmt::Load(k) => fb.ldw(buf.word(*k as u32), buf.region),
            Stmt::Const(c) => fb.copy(*c),
            Stmt::If(ci, t, e) => {
                let cond = pick(vals, *ci);
                let res = fb.vreg();
                let tb = fb.new_block();
                let eb = fb.new_block();
                let mb_ = fb.new_block();
                fb.branch(cond, tb, eb);
                let n_before = vals.len();
                fb.switch_to(tb);
                let tv = emit(fb, buf, t, vals);
                fb.copy_to(res, tv);
                fb.jump(mb_);
                vals.truncate(n_before); // values from one arm are not
                                         // visible after the merge
                fb.switch_to(eb);
                let ev = emit(fb, buf, e, vals);
                fb.copy_to(res, ev);
                fb.jump(mb_);
                vals.truncate(n_before);
                fb.switch_to(mb_);
                res
            }
            Stmt::Loop(n, body) => {
                let i = fb.copy(0);
                let acc = fb.copy(1);
                let head = fb.new_block();
                let bodyb = fb.new_block();
                let exit = fb.new_block();
                fb.jump(head);
                fb.switch_to(head);
                let c = fb.lt(i, *n as i32);
                fb.branch(c, bodyb, exit);
                fb.switch_to(bodyb);
                let n_before = vals.len();
                vals.push(i);
                vals.push(acc);
                let bv = emit(fb, buf, body, vals);
                let acc2 = fb.add(acc, bv);
                fb.copy_to(acc, acc2);
                vals.truncate(n_before);
                let i2 = fb.add(i, 1);
                fb.copy_to(i, i2);
                fb.jump(head);
                fb.switch_to(exit);
                acc
            }
        };
        vals.push(v);
        last = v;
    }
    last
}

fn build_random_module(stmts: &[Stmt]) -> Module {
    let mut mb = ModuleBuilder::new("random");
    let buf = mb.buffer(64);
    let mut fb = FunctionBuilder::new("main", 0, true);
    let seed = fb.copy(42);
    let mut vals = vec![seed];
    let last = emit(&mut fb, &buf, stmts, &mut vals);
    // Fold everything into the result so dead-code effects still matter.
    let mut acc = last;
    for v in vals.iter().rev().take(4) {
        acc = fb.xor(acc, *v);
    }
    fb.ret(acc);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[test]
fn random_programs_match_interpreter() {
    for case in 0u64..48 {
        let mut rng = Rng::new(case);
        let stmts = random_stmts(&mut rng, 2, 1, 10);
        let module = build_random_module(&stmts);
        tta_ir::verify::verify_module(&module).expect("generated programs are well-formed");
        check_all(&module);
    }
}

/// Exact shrunken module from the first proptest failure, kept as a fast
/// regression.
#[test]
fn regression_if_then_loop_wide_consts() {
    let stmts = vec![
        Stmt::If(
            0,
            vec![
                Stmt::Bin(0, 0, 0),
                Stmt::Const(509804834),
                Stmt::Bin(3, 283569, 10808),
            ],
            vec![
                Stmt::Bin(3, 29180, 562253),
                Stmt::Un(1, 779754),
                Stmt::Bin(0, 598282, 187422),
            ],
        ),
        Stmt::Loop(
            2,
            vec![Stmt::Const(195494744), Stmt::Load(3), Stmt::Un(0, 783974)],
        ),
    ];
    let module = build_random_module(&stmts);
    if std::env::var("DUMP").is_ok() {
        eprintln!("=== IR ===\n{}", module.entry_func());
        let machine = presets::m_tta_1();
        let compiled = compile(&module, &machine).unwrap();
        if let tta_isa::Program::Tta(insts) = &compiled.program {
            eprintln!("=== block starts: {:?}", compiled.block_starts);
            for (i, inst) in insts.iter().enumerate() {
                eprintln!("{i:4}: {inst}");
            }
        }
        let golden = Interpreter::new(&module).run(&[]).unwrap();
        eprintln!("golden ret = {:?}", golden.ret);
    }
    check_machine(&module, &presets::m_tta_1());
}

#[test]
fn preset_list_is_exactly_the_thirteen_paper_design_points() {
    // The paper's Table: two MicroBlaze-like scalars, then the TTA/VLIW
    // grid over {2,3} issue widths and the m/p/bm resource mixes. Order
    // matters: fuzzing, benchmarks, and snapshots all index this list.
    let names: Vec<String> = presets::all_design_points()
        .into_iter()
        .map(|m| m.name)
        .collect();
    assert_eq!(
        names,
        [
            "mblaze-3", "mblaze-5", "m-tta-1", "m-vliw-2", "p-vliw-2", "m-tta-2", "p-tta-2",
            "bm-tta-2", "m-vliw-3", "p-vliw-3", "m-tta-3", "p-tta-3", "bm-tta-3",
        ],
        "the design-point list must stay exactly the 13 paper cores"
    );
    // And every name resolves back through the by-name lookup.
    for n in &names {
        let m = presets::by_name(n).unwrap_or_else(|| panic!("{n} not resolvable by name"));
        assert_eq!(&m.name, n);
    }
}
