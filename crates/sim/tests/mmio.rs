//! Memory-mapped I/O end-to-end through the cycle-accurate simulators.
//!
//! The device-semantics unit tests live next to [`tta_model::io`]; this
//! suite drives the same machinery through real compiled guests on every
//! design point: UART bytes round-trip rx → handler → tx bit-identically
//! across the three styles (and the IR reference interpreter), the timer
//! edge cases (period 0 never fires, period 1 storms, arming near the
//! fuel boundary) behave the same compiled as interpreted, and the
//! compiled tier produces bit-identical reactive runs at every `TTA_JIT`
//! setting under a fixed schedule.

use tta_compiler::compile;
use tta_ir::builder::{FunctionBuilder, ModuleBuilder};
use tta_ir::inst::MemRegion;
use tta_ir::interp::Interpreter;
use tta_ir::Module;
use tta_model::io::{
    IoSpec, IoSystem, IrqAt, IRQ_CTRL_ADDR, SOFT_LINE, TIMER_CTRL_ADDR, TIMER_PERIOD_ADDR,
    UART_RX_ADDR, UART_TX_ADDR,
};
use tta_model::presets;
use tta_sim::{run_with_io, run_with_io_tiers, SimResult, TierConfig, Tiers};

const FUEL: u64 = 200_000;

/// A reactive guest: `main` enables interrupts, transmits `markers`
/// sentinel bytes over the UART, and returns the accumulator the handler
/// maintains at `buf[0]`. The handler pops one rx byte, adds it into the
/// accumulator, and echoes it to the tx log.
fn echo_module(markers: u32) -> Module {
    let mut mb = ModuleBuilder::new("uart_echo");
    let buf = mb.buffer(8);
    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let rx = hb.ldw(UART_RX_ADDR as i32, MemRegion::ANY);
    let old = hb.ldw(buf.base(), buf.region);
    let sum = hb.add(old, rx);
    hb.stw(sum, buf.base(), buf.region);
    hb.stw(rx, UART_TX_ADDR as i32, MemRegion::ANY);
    hb.ret_void();
    mb.add(hb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    for k in 0..markers {
        fb.stw(0x41 + k as i32, UART_TX_ADDR as i32, MemRegion::ANY);
    }
    let v = fb.ldw(buf.base(), buf.region);
    fb.ret(v);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

/// Interrupt after the guest's 2nd and 4th MMIO store. Handler echoes
/// count as MMIO stores too, so with the IE store as #1: marker 'A' (#2)
/// fires irq 1, its echo is #3, marker 'B' (#4) fires irq 2, echo #5,
/// markers 'C'/'D' follow — `A a B b C D` on the wire.
fn echo_spec() -> IoSpec {
    IoSpec {
        schedule: vec![
            (IrqAt::MmioStore(2), SOFT_LINE),
            (IrqAt::MmioStore(4), SOFT_LINE),
        ],
        uart_rx: vec![(0, b'a'), (0, b'b')],
        ..IoSpec::default()
    }
}

fn interp_oracle(module: &Module, spec: &IoSpec) -> (i32, Vec<u8>, u64) {
    let mut io = IoSystem::new(spec);
    let r = Interpreter::new(module)
        .run_with_io(&[], &mut io)
        .expect("interpreter");
    (r.ret.unwrap_or(0), io.uart_tx(), io.irqs_delivered)
}

fn sim_reactive(machine: &tta_model::Machine, module: &Module, spec: &IoSpec) -> SimResult {
    let c = compile(module, machine).unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
    run_with_io(
        machine,
        &c.program,
        module.initial_memory(),
        FUEL,
        spec,
        c.irq_entry,
    )
    .unwrap_or_else(|e| panic!("reactive run on {}: {e}", machine.name))
}

#[test]
fn uart_bytes_round_trip_identically_on_every_design_point() {
    let module = echo_module(4);
    let spec = echo_spec();
    let (oracle_ret, oracle_tx, oracle_irqs) = interp_oracle(&module, &spec);
    assert_eq!(oracle_tx, vec![b'A', b'a', b'B', b'b', b'C', b'D']);
    assert_eq!(oracle_ret, (b'a' + b'b') as i32);

    for machine in &presets::all_design_points() {
        let r = sim_reactive(machine, &module, &spec);
        assert_eq!(r.ret, oracle_ret, "{}: return value", machine.name);
        assert_eq!(r.uart_tx, oracle_tx, "{}: uart tx stream", machine.name);
        assert_eq!(
            r.stats.irqs, oracle_irqs,
            "{}: interrupts delivered",
            machine.name
        );
        assert!(
            r.stats.irq_cycles > 0,
            "{}: trap overhead must be charged",
            machine.name
        );
        // 1 IE + 4 markers + 2 handler echoes; EOI stores never count.
        assert_eq!(r.stats.mmio_stores, 7, "{}: mmio store clock", machine.name);
    }
}

#[test]
fn reactive_runs_are_bit_identical_across_jit_modes() {
    let module = echo_module(4);
    let spec = echo_spec();
    for machine in &presets::all_design_points() {
        let c = compile(&module, machine)
            .unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
        let run = |cfg: TierConfig| {
            let tiers = Tiers::with_config(&c.program, &cfg);
            let go = || {
                run_with_io_tiers(
                    machine,
                    &c.program,
                    module.initial_memory(),
                    FUEL,
                    &spec,
                    c.irq_entry,
                    &tiers,
                )
                .unwrap_or_else(|e| panic!("{} ({cfg:?}): {e}", machine.name))
            };
            // Steady state too: the second run through the same shared
            // tier table executes fully compiled.
            let first = go();
            (first, go())
        };
        let (interp, interp2) = run(TierConfig {
            enabled: false,
            threshold: 0,
        });
        let (eager, eager2) = run(TierConfig {
            enabled: true,
            threshold: 0,
        });
        let (deferred, _) = run(TierConfig {
            enabled: true,
            threshold: TierConfig::DEFAULT_THRESHOLD,
        });
        for (r, what) in [
            (&interp2, "interpreted re-run"),
            (&eager, "threshold-0 first run"),
            (&eager2, "threshold-0 steady state"),
            (&deferred, "default-threshold run"),
        ] {
            assert_eq!(r, &interp, "{}: {what} diverged", machine.name);
        }
    }
}

/// Timer guest: program `period`, enable the timer, spin `spins` empty
/// loop iterations, and return the interrupt count the handler keeps at
/// `buf[0]`.
fn timer_module(period: i32, spins: i32) -> Module {
    let mut mb = ModuleBuilder::new("timer_guest");
    let buf = mb.buffer(8);
    let mut hb = FunctionBuilder::new("__irq", 0, false);
    let old = hb.ldw(buf.base(), buf.region);
    let n = hb.add(old, 1);
    hb.stw(n, buf.base(), buf.region);
    hb.ret_void();
    mb.add(hb.finish());
    let mut fb = FunctionBuilder::new("main", 0, true);
    fb.stw(period, TIMER_PERIOD_ADDR as i32, MemRegion::ANY);
    fb.stw(1, TIMER_CTRL_ADDR as i32, MemRegion::ANY);
    fb.stw(1, IRQ_CTRL_ADDR as i32, MemRegion::ANY);
    let i = fb.copy(0);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(head);
    fb.switch_to(head);
    let c = fb.lt(i, spins);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let i2 = fb.add(i, 1);
    fb.copy_to(i, i2);
    fb.jump(head);
    fb.switch_to(exit);
    let v = fb.ldw(buf.base(), buf.region);
    fb.ret(v);
    let id = mb.add(fb.finish());
    mb.set_entry(id);
    mb.finish()
}

#[test]
fn timer_period_zero_never_fires_on_any_style() {
    let module = timer_module(0, 50);
    for machine in &presets::all_design_points() {
        let r = sim_reactive(machine, &module, &IoSpec::default());
        assert_eq!(r.ret, 0, "{}: period-0 timer fired", machine.name);
        assert_eq!(r.stats.irqs, 0, "{}", machine.name);
    }
}

#[test]
fn timer_period_one_storms_deterministically_into_the_fuel_limit() {
    // The handler takes more than one cycle, so a period-1 timer re-fires
    // before the interrupted program can make progress: a livelocked
    // interrupt storm whose defined behaviour on *every* engine —
    // including the reference interpreter, whose boundary delivery drains
    // re-raised lines back-to-back — is a deterministic out-of-fuel
    // error. The storm is still excluded from the style-invariant
    // differential oracle because each style reaches the fuel limit at a
    // different point in the guest (see `IrqAt`).
    let module = timer_module(1, 30);
    let mut io = IoSystem::new(&IoSpec::default());
    let interp = Interpreter::new(&module)
        .with_fuel(FUEL)
        .run_with_io(&[], &mut io);
    assert!(
        matches!(interp, Err(tta_ir::interp::IrError::FuelExhausted)),
        "interpreter storms into the fuel limit by design: {interp:?}"
    );
    for machine in &presets::all_design_points() {
        let c = compile(&module, machine)
            .unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
        let run = || {
            run_with_io(
                machine,
                &c.program,
                module.initial_memory(),
                FUEL,
                &IoSpec::default(),
                c.irq_entry,
            )
        };
        match run() {
            Err(tta_sim::SimError::OutOfFuel) => {}
            other => panic!("{}: expected OutOfFuel, got {other:?}", machine.name),
        }
        // Deterministic: the second run fails identically.
        assert!(
            matches!(run(), Err(tta_sim::SimError::OutOfFuel)),
            "{}",
            machine.name
        );
    }
}

#[test]
fn timer_interrupt_straddling_the_fuel_boundary_is_exact() {
    // A long-period timer guest whose only interrupt lands near the end:
    // sweep every fuel value across the full run's boundary and require
    // clean OutOfFuel below it and the unconstrained result at/above it
    // (the trap's own drain cycles are fuel-checked too).
    let module = timer_module(200, 80);
    for machine in &presets::all_design_points() {
        let c = compile(&module, machine)
            .unwrap_or_else(|e| panic!("compile on {}: {e}", machine.name));
        let run = |fuel: u64| {
            run_with_io(
                machine,
                &c.program,
                module.initial_memory(),
                fuel,
                &IoSpec::default(),
                c.irq_entry,
            )
        };
        let full = run(FUEL).unwrap_or_else(|e| panic!("full run on {}: {e}", machine.name));
        let boundary = if machine.scalar.is_some() {
            full.stats.instructions
        } else {
            full.cycles
        };
        for fuel in boundary.saturating_sub(40)..boundary {
            match run(fuel) {
                Err(tta_sim::SimError::OutOfFuel) => {}
                other => panic!("{}: fuel {fuel} of {boundary}: {other:?}", machine.name),
            }
        }
        for fuel in boundary..boundary + 3 {
            let r = run(fuel)
                .unwrap_or_else(|e| panic!("{}: fuel {fuel} of {boundary}: {e}", machine.name));
            assert_eq!(r, full, "{}: fuel {fuel}", machine.name);
        }
    }
}
