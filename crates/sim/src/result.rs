//! Common result and statistics types for the simulators.

use tta_model::mem::MemError;

/// Dynamic statistics of a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Instructions (TTA instructions / VLIW bundles / scalar instructions)
    /// fetched and executed.
    pub instructions: u64,
    /// Data transports (TTA) or operations (VLIW/scalar) executed.
    pub payload: u64,
    /// Register-file reads performed.
    pub rf_reads: u64,
    /// Register-file writes performed.
    pub rf_writes: u64,
    /// Reads satisfied from FU result ports (TTA software bypassing).
    pub bypass_reads: u64,
    /// Long immediates executed.
    pub limms: u64,
    /// Taken control transfers.
    pub branches_taken: u64,
    /// Dynamic pipeline stall cycles charged by the in-order *scalar*
    /// model: dependence interlocks plus the taken-branch refill penalty.
    /// Always zero for the TTA and VLIW cores — their compile-time
    /// schedules encode all waiting as explicit NOP instructions/slots
    /// (counted in `instructions`, and reported as NOP/padding density by
    /// [`crate::GuestProfile`]), never as dynamic stalls. Pinned by
    /// `stall_cycles_semantics_are_scalar_only` in the sim test suite.
    pub stall_cycles: u64,
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Interrupts delivered to the guest handler.
    pub irqs: u64,
    /// Cycles spent on interrupt entry/return overhead: in-flight-state
    /// drain plus the fixed trap cost per style (see `crate::run_with_io`).
    /// Included in `SimResult::cycles`; reported separately so the
    /// interrupt-latency experiments can isolate the trap tax.
    pub irq_cycles: u64,
    /// Loads routed to the memory-mapped I/O region.
    pub mmio_loads: u64,
    /// Stores routed to the memory-mapped I/O region (the
    /// [`tta_model::io::IrqAt::MmioStore`] clock; compiler-injected
    /// end-of-interrupt stores excluded).
    pub mmio_stores: u64,
}

impl SimStats {
    /// Add every field of `d` into `self`. Compiled superblocks batch
    /// their statically-known statistics into one per-block delta applied
    /// at block exit; every counter is a plain sum, so batching cannot
    /// change the totals.
    pub fn accumulate(&mut self, d: &SimStats) {
        self.instructions += d.instructions;
        self.payload += d.payload;
        self.rf_reads += d.rf_reads;
        self.rf_writes += d.rf_writes;
        self.bypass_reads += d.bypass_reads;
        self.limms += d.limms;
        self.branches_taken += d.branches_taken;
        self.stall_cycles += d.stall_cycles;
        self.loads += d.loads;
        self.stores += d.stores;
        self.irqs += d.irqs;
        self.irq_cycles += d.irq_cycles;
        self.mmio_loads += d.mmio_loads;
        self.mmio_stores += d.mmio_stores;
    }
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles until (and including) the halt.
    pub cycles: u64,
    /// The 32-bit word at [`tta_isa::RETVAL_ADDR`] when the core halted.
    pub ret: i32,
    /// Final data-memory image.
    pub memory: Vec<u8>,
    /// Dynamic statistics.
    pub stats: SimStats,
    /// Bytes the guest transmitted over the UART (empty for runs without
    /// an I/O system) — a device-output stream the differential oracle
    /// compares across styles.
    pub uart_tx: Vec<u8>,
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cycle budget was exhausted (runaway program).
    OutOfFuel,
    /// A memory access faulted.
    Mem(MemError),
    /// The program violated a machine rule the static validator cannot see
    /// (e.g. reading a result port before any operation completed). These
    /// indicate compiler bugs.
    Machine(String),
    /// The program ran off the end of the instruction memory.
    PcOutOfRange(u32),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfFuel => write!(f, "cycle budget exhausted"),
            SimError::Mem(e) => write!(f, "{e}"),
            SimError::Machine(m) => write!(f, "machine rule violated: {m}"),
            SimError::PcOutOfRange(pc) => write!(f, "pc {pc} outside instruction memory"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}
