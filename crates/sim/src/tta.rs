//! Cycle-accurate simulator for the transport-triggered cores.
//!
//! Implements exactly the timing contract the scheduler plans against
//! (documented in `tta-compiler::tta_sched`): per cycle, (1) function-unit
//! completions land in result ports, (2) all move sources are sampled, (3)
//! operand-port and RF writes apply (RF reads of the same cycle already
//! sampled → writes become visible next cycle; operand ports feed triggers
//! of the *same* cycle), (4) triggers start operations, loads sampling
//! memory and stores committing immediately, (5) the long immediate and
//! control effects apply.
//!
//! The simulator is deliberately paranoid: reading a result port that never
//! received a completion, simultaneous completions on one unit, or a jump
//! during an in-flight jump raise [`SimError::Machine`] — each of these is
//! a scheduler bug that static validation cannot see.
//!
//! The program is predecoded once per run: empty slots are dropped, moves
//! are split into source/write/trigger classes, and every register
//! reference is resolved to a flat index, so the cycle loop touches only
//! dense arrays and performs no heap allocation.

use crate::profile::{finish_tta, Collector, GuestProfile, NoProfile, ProfileSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{trace_capacity, FlatRf};
use tta_isa::{MoveDst, MoveSrc, TtaInst, RETVAL_ADDR};
use tta_model::{mem, FuKind, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// In-flight result slots per function unit. The deepest pipeline is the
/// longest op latency (3) per trigger move, and a well-formed instruction
/// triggers a unit at most once, so 8 leaves ample headroom; the
/// same-cycle-completion check below still rejects overfull schedules.
const MAX_INFLIGHT: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct InFlight {
    done: u64,
    value: i32,
}

/// Runtime state of one function unit: its shared operand port, result
/// port, and a fixed-capacity in-flight buffer (no per-trigger allocation).
#[derive(Debug, Clone)]
struct FuSim {
    operand: i32,
    result: Option<i32>,
    pipeline: [InFlight; MAX_INFLIGHT],
    live: u8,
}

impl Default for FuSim {
    fn default() -> Self {
        FuSim {
            operand: 0,
            result: None,
            pipeline: [InFlight::default(); MAX_INFLIGHT],
            live: 0,
        }
    }
}

/// A decoded move source: register references resolved to flat indices.
#[derive(Debug, Clone, Copy)]
enum DecSrc {
    Rf(u32),
    FuResult(u16),
    Imm(i32),
    ImmReg(u8),
}

/// A decoded non-trigger destination. The `u16` pairs each write with the
/// sampled value of its move (index into the per-instruction value window).
#[derive(Debug, Clone, Copy)]
enum DecWrite {
    Rf(u32),
    FuOperand(u16),
}

/// A decoded trigger: value index, unit, opcode.
#[derive(Debug, Clone, Copy)]
struct DecTrig {
    vi: u16,
    fu: u16,
    op: Opcode,
}

/// One instruction as ranges into the flat per-class move arrays.
#[derive(Debug, Clone, Copy)]
struct DecInst {
    srcs: (u32, u32),
    writes: (u32, u32),
    trigs: (u32, u32),
    limm: Option<(u8, i32)>,
}

/// The whole program, predecoded into dense per-class arrays.
struct Decoded {
    srcs: Vec<DecSrc>,
    writes: Vec<(u16, DecWrite)>,
    trigs: Vec<DecTrig>,
    insts: Vec<DecInst>,
    /// Widest instruction (sizes the reusable sampled-value scratch).
    max_moves: usize,
}

fn decode(rf: &FlatRf, program: &[TtaInst]) -> Decoded {
    let mut d = Decoded {
        srcs: Vec::new(),
        writes: Vec::new(),
        trigs: Vec::new(),
        insts: Vec::with_capacity(program.len()),
        max_moves: 0,
    };
    for inst in program {
        let s0 = d.srcs.len() as u32;
        let w0 = d.writes.len() as u32;
        let t0 = d.trigs.len() as u32;
        let mut vi: u16 = 0;
        for slot in &inst.slots {
            let Some(mv) = slot else { continue };
            d.srcs.push(match mv.src {
                MoveSrc::Rf(r) => DecSrc::Rf(rf.flat(r)),
                MoveSrc::FuResult(f) => DecSrc::FuResult(f.0),
                MoveSrc::Imm(v) => DecSrc::Imm(v),
                MoveSrc::ImmReg(k) => DecSrc::ImmReg(k),
            });
            match mv.dst {
                MoveDst::Rf(r) => d.writes.push((vi, DecWrite::Rf(rf.flat(r)))),
                MoveDst::FuOperand(f) => d.writes.push((vi, DecWrite::FuOperand(f.0))),
                MoveDst::FuTrigger(f, op) => d.trigs.push(DecTrig { vi, fu: f.0, op }),
            }
            vi += 1;
        }
        d.max_moves = d.max_moves.max(vi as usize);
        d.insts.push(DecInst {
            srcs: (s0, d.srcs.len() as u32),
            writes: (w0, d.writes.len() as u32),
            trigs: (t0, d.trigs.len() as u32),
            limm: inst.limm,
        });
    }
    d
}

/// Run a TTA program.
pub fn run_tta(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_tta_inner(m, program, memory, fuel, None, &mut NoProfile)
}

/// Like [`run_tta`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_tta_traced(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut trace = Vec::with_capacity(trace_capacity(program.len()));
    let r = run_tta_inner(m, program, memory, fuel, Some(&mut trace), &mut NoProfile)?;
    Ok((r, trace))
}

/// Like [`run_tta`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_tta_profiled(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_tta_inner(m, program, memory, fuel, None, &mut sink)?;
    let mut p = finish_tta(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

fn run_tta_inner<S: ProfileSink>(
    m: &Machine,
    program: &[TtaInst],
    mut memory: Vec<u8>,
    fuel: u64,
    mut trace: Option<&mut Vec<u32>>,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let mut rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    let mut fus: Vec<FuSim> = vec![FuSim::default(); m.funits.len()];
    let mut immregs: Vec<Option<i32>> = vec![None; m.limm.imm_regs as usize];
    // Sampled move values of the current instruction, reused every cycle.
    let mut values: Vec<i32> = vec![0; dec.max_moves];
    let mut stats = SimStats::default();
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        let Some(inst) = dec.insts.get(pc as usize) else {
            return Err(SimError::PcOutOfRange(pc));
        };
        stats.instructions += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(pc);
        }
        sink.retire(pc);

        // (1) Completions.
        for (fi, fu) in fus.iter_mut().enumerate() {
            let mut completed = 0;
            let mut k = 0;
            while k < fu.live as usize {
                if fu.pipeline[k].done == cycle {
                    fu.result = Some(fu.pipeline[k].value);
                    fu.live -= 1;
                    fu.pipeline[k] = fu.pipeline[fu.live as usize];
                    completed += 1;
                } else {
                    k += 1;
                }
            }
            if completed > 1 {
                return Err(SimError::Machine(format!(
                    "{} delivered {completed} results in cycle {cycle}",
                    m.funits[fi].name
                )));
            }
        }

        // (2) Sample sources.
        for (vi, src) in dec.srcs[inst.srcs.0 as usize..inst.srcs.1 as usize]
            .iter()
            .enumerate()
        {
            let v = match *src {
                DecSrc::Rf(i) => {
                    stats.rf_reads += 1;
                    rf.vals[i as usize]
                }
                DecSrc::FuResult(f) => {
                    stats.bypass_reads += 1;
                    fus[f as usize].result.ok_or_else(|| {
                        SimError::Machine(format!(
                            "read of {}'s result port before any completion (pc {pc})",
                            m.funits[f as usize].name
                        ))
                    })?
                }
                DecSrc::Imm(v) => v,
                DecSrc::ImmReg(k) => immregs[k as usize].ok_or_else(|| {
                    SimError::Machine(format!(
                        "read of long-immediate register {k} before any write (pc {pc})"
                    ))
                })?,
            };
            values[vi] = v;
            stats.payload += 1;
        }

        // (3) Apply operand-port and RF writes.
        for &(vi, w) in &dec.writes[inst.writes.0 as usize..inst.writes.1 as usize] {
            let v = values[vi as usize];
            match w {
                DecWrite::Rf(i) => {
                    stats.rf_writes += 1;
                    rf.vals[i as usize] = v;
                }
                DecWrite::FuOperand(f) => fus[f as usize].operand = v,
            }
        }

        // (4) Triggers.
        let mut halt = false;
        for trig in &dec.trigs[inst.trigs.0 as usize..inst.trigs.1 as usize] {
            let trig_v = values[trig.vi as usize];
            let op = trig.op;
            let fu = &mut fus[trig.fu as usize];
            let launch = |fu: &mut FuSim, value: i32| -> Result<(), SimError> {
                if fu.live as usize == MAX_INFLIGHT {
                    return Err(SimError::Machine(format!(
                        "more than {MAX_INFLIGHT} in-flight results on {} (pc {pc})",
                        m.funits[trig.fu as usize].name
                    )));
                }
                fu.pipeline[fu.live as usize] = InFlight {
                    done: cycle + op.latency() as u64,
                    value,
                };
                fu.live += 1;
                Ok(())
            };
            match op.class() {
                OpClass::Alu => {
                    let result = if op.num_inputs() == 1 {
                        op.eval_alu(trig_v, 0)
                    } else {
                        op.eval_alu(fu.operand, trig_v)
                    };
                    launch(fu, result)?;
                }
                OpClass::Lsu => {
                    if op.is_load() {
                        stats.loads += 1;
                        let v = mem::load(&memory, op, trig_v as u32)?;
                        launch(fu, v)?;
                    } else {
                        stats.stores += 1;
                        mem::store(&mut memory, op, trig_v as u32, fu.operand)?;
                    }
                }
                OpClass::Ctrl => match op {
                    Opcode::Halt => halt = true,
                    Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                        let (taken, target) = match op {
                            Opcode::Jump => (true, trig_v as u32),
                            Opcode::CJnz => (trig_v != 0, fu.operand as u32),
                            Opcode::CJz => (trig_v == 0, fu.operand as u32),
                            _ => unreachable!(),
                        };
                        if taken {
                            if pending_jump.is_some() {
                                return Err(SimError::Machine(format!(
                                    "jump triggered during an in-flight jump (pc {pc})"
                                )));
                            }
                            stats.branches_taken += 1;
                            pending_jump = Some((m.jump_delay_slots, target));
                        }
                    }
                    _ => unreachable!(),
                },
            }
        }

        // (5) Long immediate (visible next cycle — applied after sampling).
        if let Some((k, v)) = inst.limm {
            stats.limms += 1;
            immregs[k as usize] = Some(v);
        }

        cycle += 1;
        if halt {
            let ret = mem::load(&memory, Opcode::Ldw, RETVAL_ADDR)?;
            return Ok(SimResult {
                cycles: cycle,
                ret,
                memory,
                stats,
            });
        }
        // Control transfer bookkeeping.
        match pending_jump.take() {
            Some((0, target)) => pc = target,
            Some((n, target)) => {
                pending_jump = Some((n - 1, target));
                pc += 1;
            }
            None => pc += 1,
        }
    }
}

/// Convenience wrapper asserting the LSU exists and the program is
/// non-empty; mirrors [`run_tta`] with the default fuel.
pub fn run_tta_default(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    debug_assert!(m.funits.iter().any(|f| f.kind == FuKind::Lsu));
    run_tta(m, program, memory, DEFAULT_FUEL)
}
