//! Cycle-accurate simulator for the transport-triggered cores.
//!
//! Implements exactly the timing contract the scheduler plans against
//! (documented in `tta-compiler::tta_sched`): per cycle, (1) function-unit
//! completions land in result ports, (2) all move sources are sampled, (3)
//! operand-port and RF writes apply (RF reads of the same cycle already
//! sampled → writes become visible next cycle; operand ports feed triggers
//! of the *same* cycle), (4) triggers start operations, loads sampling
//! memory and stores committing immediately, (5) the long immediate and
//! control effects apply.
//!
//! The simulator is deliberately paranoid: reading a result port that never
//! received a completion, simultaneous completions on one unit, or a jump
//! during an in-flight jump raise [`SimError::Machine`] — each of these is
//! a scheduler bug that static validation cannot see.

use crate::result::{SimError, SimResult, SimStats};
use tta_isa::{MoveDst, MoveSrc, TtaInst, RETVAL_ADDR};
use tta_model::{mem, FuKind, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
struct InFlight {
    done: u64,
    value: i32,
}

#[derive(Debug, Clone, Default)]
struct FuSim {
    operand: i32,
    result: Option<i32>,
    pipeline: Vec<InFlight>,
}

/// Run a TTA program.
pub fn run_tta(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_tta_inner(m, program, memory, fuel, None)
}

/// Like [`run_tta`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_tta_traced(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut trace = Vec::new();
    let r = run_tta_inner(m, program, memory, fuel, Some(&mut trace))?;
    Ok((r, trace))
}

fn run_tta_inner(
    m: &Machine,
    program: &[TtaInst],
    mut memory: Vec<u8>,
    fuel: u64,
    mut trace: Option<&mut Vec<u32>>,
) -> Result<SimResult, SimError> {
    let mut rf: Vec<Vec<i32>> = m.rfs.iter().map(|r| vec![0; r.regs as usize]).collect();
    let mut fus: Vec<FuSim> = vec![FuSim::default(); m.funits.len()];
    let mut immregs: Vec<Option<i32>> = vec![None; m.limm.imm_regs as usize];
    let mut stats = SimStats::default();
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        let Some(inst) = program.get(pc as usize) else {
            return Err(SimError::PcOutOfRange(pc));
        };
        stats.instructions += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(pc);
        }

        // (1) Completions.
        for (fi, fu) in fus.iter_mut().enumerate() {
            let mut completed = 0;
            let mut k = 0;
            while k < fu.pipeline.len() {
                if fu.pipeline[k].done == cycle {
                    fu.result = Some(fu.pipeline[k].value);
                    fu.pipeline.swap_remove(k);
                    completed += 1;
                } else {
                    k += 1;
                }
            }
            if completed > 1 {
                return Err(SimError::Machine(format!(
                    "{} delivered {completed} results in cycle {cycle}",
                    m.funits[fi].name
                )));
            }
        }

        // (2) Sample sources.
        let mut values: Vec<Option<i32>> = vec![None; inst.slots.len()];
        for (si, slot) in inst.slots.iter().enumerate() {
            let Some(mv) = slot else { continue };
            let v = match mv.src {
                MoveSrc::Rf(r) => {
                    stats.rf_reads += 1;
                    rf[r.rf.0 as usize][r.index as usize]
                }
                MoveSrc::FuResult(f) => {
                    stats.bypass_reads += 1;
                    fus[f.0 as usize].result.ok_or_else(|| {
                        SimError::Machine(format!(
                            "read of {}'s result port before any completion (pc {pc})",
                            m.funits[f.0 as usize].name
                        ))
                    })?
                }
                MoveSrc::Imm(v) => v,
                MoveSrc::ImmReg(k) => immregs[k as usize].ok_or_else(|| {
                    SimError::Machine(format!(
                        "read of long-immediate register {k} before any write (pc {pc})"
                    ))
                })?,
            };
            values[si] = Some(v);
            stats.payload += 1;
        }

        // (3) Apply operand-port and RF writes.
        for (si, slot) in inst.slots.iter().enumerate() {
            let Some(mv) = slot else { continue };
            let v = values[si].unwrap();
            match mv.dst {
                MoveDst::Rf(r) => {
                    stats.rf_writes += 1;
                    rf[r.rf.0 as usize][r.index as usize] = v;
                }
                MoveDst::FuOperand(f) => fus[f.0 as usize].operand = v,
                MoveDst::FuTrigger(..) => {} // handled below
            }
        }

        // (4) Triggers.
        let mut halt = false;
        for (si, slot) in inst.slots.iter().enumerate() {
            let Some(mv) = slot else { continue };
            let MoveDst::FuTrigger(f, op) = mv.dst else { continue };
            let trig = values[si].unwrap();
            let fu = &mut fus[f.0 as usize];
            match op.class() {
                OpClass::Alu => {
                    let result = if op.num_inputs() == 1 {
                        op.eval_alu(trig, 0)
                    } else {
                        op.eval_alu(fu.operand, trig)
                    };
                    fu.pipeline.push(InFlight {
                        done: cycle + op.latency() as u64,
                        value: result,
                    });
                }
                OpClass::Lsu => {
                    if op.is_load() {
                        stats.loads += 1;
                        let v = mem::load(&memory, op, trig as u32)?;
                        fu.pipeline.push(InFlight {
                            done: cycle + op.latency() as u64,
                            value: v,
                        });
                    } else {
                        stats.stores += 1;
                        mem::store(&mut memory, op, trig as u32, fu.operand)?;
                    }
                }
                OpClass::Ctrl => match op {
                    Opcode::Halt => halt = true,
                    Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                        let (taken, target) = match op {
                            Opcode::Jump => (true, trig as u32),
                            Opcode::CJnz => (trig != 0, fu.operand as u32),
                            Opcode::CJz => (trig == 0, fu.operand as u32),
                            _ => unreachable!(),
                        };
                        if taken {
                            if pending_jump.is_some() {
                                return Err(SimError::Machine(format!(
                                    "jump triggered during an in-flight jump (pc {pc})"
                                )));
                            }
                            stats.branches_taken += 1;
                            pending_jump = Some((m.jump_delay_slots, target));
                        }
                    }
                    _ => unreachable!(),
                },
            }
        }

        // (5) Long immediate (visible next cycle — applied after sampling).
        if let Some((k, v)) = inst.limm {
            stats.limms += 1;
            immregs[k as usize] = Some(v);
        }

        cycle += 1;
        if halt {
            let ret = mem::load(&memory, Opcode::Ldw, RETVAL_ADDR)?;
            return Ok(SimResult { cycles: cycle, ret, memory, stats });
        }
        // Control transfer bookkeeping.
        match pending_jump.take() {
            Some((0, target)) => pc = target,
            Some((n, target)) => {
                pending_jump = Some((n - 1, target));
                pc += 1;
            }
            None => pc += 1,
        }
    }
}

/// Convenience wrapper asserting the LSU exists and the program is
/// non-empty; mirrors [`run_tta`] with the default fuel.
pub fn run_tta_default(m: &Machine, program: &[TtaInst], memory: Vec<u8>) -> Result<SimResult, SimError> {
    debug_assert!(m.funits.iter().any(|f| f.kind == FuKind::Lsu));
    run_tta(m, program, memory, DEFAULT_FUEL)
}
