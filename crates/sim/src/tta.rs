//! Cycle-accurate simulator for the transport-triggered cores.
//!
//! Implements exactly the timing contract the scheduler plans against
//! (documented in `tta-compiler::tta_sched`): per cycle, (1) function-unit
//! completions land in result ports, (2) all move sources are sampled, (3)
//! operand-port and RF writes apply (RF reads of the same cycle already
//! sampled → writes become visible next cycle; operand ports feed triggers
//! of the *same* cycle), (4) triggers start operations, loads sampling
//! memory and stores committing immediately, (5) the long immediate and
//! control effects apply.
//!
//! The simulator is deliberately paranoid: reading a result port that never
//! received a completion, simultaneous completions on one unit, or a jump
//! during an in-flight jump raise [`SimError::Machine`] — each of these is
//! a scheduler bug that static validation cannot see.
//!
//! ## Fused-block dispatch
//!
//! The program is predecoded once per run: empty slots are dropped, moves
//! are split into source/write/trigger classes, every register reference
//! is resolved to a flat index, and the program is segmented into
//! superblocks ([`tta_isa::BlockMap`]). The cycle loop then dispatches a
//! superblock at a time: the fuel check, the pc bounds check and the
//! delay-slot bookkeeping happen once per block entry, and the interior of
//! a block runs as a tight loop over the contiguous per-class move arrays
//! in a monomorphisation whose control arm is compiled out (`CTRL =
//! false` in [`TtaEngine::step`]). Cycle counts, statistics and error
//! behaviour are bit-identical to per-cycle execution; the fuel-exhaustion
//! boundary is pinned by `tests/fuel_boundary.rs`.

use crate::profile::{finish_tta, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::FlatRf;
use tta_isa::{BlockMap, MoveDst, MoveSrc, TtaInst, RETVAL_ADDR};
use tta_model::{mem, FuKind, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// In-flight result slots per function unit. The deepest pipeline is the
/// longest op latency (3) per trigger move, and a well-formed instruction
/// triggers a unit at most once, so 8 leaves ample headroom; the
/// same-cycle-completion check below still rejects overfull schedules.
const MAX_INFLIGHT: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct InFlight {
    done: u64,
    value: i32,
}

/// Runtime state of one function unit: its shared operand port, result
/// port, and a fixed-capacity in-flight buffer (no per-trigger allocation).
#[derive(Debug, Clone)]
struct FuSim {
    operand: i32,
    result: Option<i32>,
    pipeline: [InFlight; MAX_INFLIGHT],
    live: u8,
}

impl Default for FuSim {
    fn default() -> Self {
        FuSim {
            operand: 0,
            result: None,
            pipeline: [InFlight::default(); MAX_INFLIGHT],
            live: 0,
        }
    }
}

/// A decoded move source: register references resolved to flat indices.
#[derive(Debug, Clone, Copy)]
enum DecSrc {
    Rf(u32),
    FuResult(u16),
    Imm(i32),
    ImmReg(u8),
}

/// A decoded non-trigger destination. The `u16` pairs each write with the
/// sampled value of its move (index into the per-instruction value window).
#[derive(Debug, Clone, Copy)]
enum DecWrite {
    Rf(u32),
    FuOperand(u16),
}

/// A decoded trigger: value index, unit, opcode.
#[derive(Debug, Clone, Copy)]
struct DecTrig {
    vi: u16,
    fu: u16,
    op: Opcode,
}

/// One instruction as ranges into the flat per-class move arrays.
#[derive(Debug, Clone, Copy)]
struct DecInst {
    srcs: (u32, u32),
    writes: (u32, u32),
    trigs: (u32, u32),
    limm: Option<(u8, i32)>,
}

/// The whole program, predecoded into dense per-class arrays. Because the
/// per-class arrays are filled in program order, the moves of a
/// superblock's instructions are contiguous in memory and block dispatch
/// streams straight through them.
struct Decoded {
    srcs: Vec<DecSrc>,
    writes: Vec<(u16, DecWrite)>,
    trigs: Vec<DecTrig>,
    insts: Vec<DecInst>,
    /// Widest instruction (sizes the reusable sampled-value scratch).
    max_moves: usize,
}

fn decode(rf: &FlatRf, program: &[TtaInst]) -> Decoded {
    let mut d = Decoded {
        srcs: Vec::new(),
        writes: Vec::new(),
        trigs: Vec::new(),
        insts: Vec::with_capacity(program.len()),
        max_moves: 0,
    };
    for inst in program {
        let s0 = d.srcs.len() as u32;
        let w0 = d.writes.len() as u32;
        let t0 = d.trigs.len() as u32;
        let mut vi: u16 = 0;
        for slot in &inst.slots {
            let Some(mv) = slot else { continue };
            d.srcs.push(match mv.src {
                MoveSrc::Rf(r) => DecSrc::Rf(rf.flat(r)),
                MoveSrc::FuResult(f) => DecSrc::FuResult(f.0),
                MoveSrc::Imm(v) => DecSrc::Imm(v),
                MoveSrc::ImmReg(k) => DecSrc::ImmReg(k),
            });
            match mv.dst {
                MoveDst::Rf(r) => d.writes.push((vi, DecWrite::Rf(rf.flat(r)))),
                MoveDst::FuOperand(f) => d.writes.push((vi, DecWrite::FuOperand(f.0))),
                MoveDst::FuTrigger(f, op) => d.trigs.push(DecTrig { vi, fu: f.0, op }),
            }
            vi += 1;
        }
        d.max_moves = d.max_moves.max(vi as usize);
        d.insts.push(DecInst {
            srcs: (s0, d.srcs.len() as u32),
            writes: (w0, d.writes.len() as u32),
            trigs: (t0, d.trigs.len() as u32),
            limm: inst.limm,
        });
    }
    d
}

/// Run a TTA program.
pub fn run_tta(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_tta_with(m, program, memory, fuel, &mut NoProfile)
}

/// Like [`run_tta`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_tta_traced(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_tta_with(m, program, memory, fuel, &mut sink)?;
    Ok((r, sink.trace))
}

/// Like [`run_tta`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_tta_profiled(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_tta_with(m, program, memory, fuel, &mut sink)?;
    let mut p = finish_tta(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop.
struct TtaEngine<'a> {
    m: &'a Machine,
    dec: &'a Decoded,
    fus: Vec<FuSim>,
    /// Operations in flight across all units; lets quiet cycles skip the
    /// completion scan entirely.
    live_total: u32,
    rf: FlatRf,
    immregs: Vec<Option<i32>>,
    /// Sampled move values of the current instruction, reused every cycle.
    values: Vec<i32>,
    memory: Vec<u8>,
    stats: SimStats,
}

impl TtaEngine<'_> {
    /// One architectural cycle at `pc`. With `CTRL = false` the caller
    /// guarantees (via the block map) that the instruction carries no
    /// control trigger, and the whole control arm is compiled out of the
    /// monomorphisation. Returns whether the core halted.
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: u64,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<bool, SimError> {
        let dec = self.dec;
        let m = self.m;
        let inst = dec.insts[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        // (1) Completions.
        if self.live_total > 0 {
            for (fi, fu) in self.fus.iter_mut().enumerate() {
                if fu.live == 0 {
                    continue;
                }
                let mut completed = 0;
                let mut k = 0;
                while k < fu.live as usize {
                    if fu.pipeline[k].done == cycle {
                        fu.result = Some(fu.pipeline[k].value);
                        fu.live -= 1;
                        self.live_total -= 1;
                        fu.pipeline[k] = fu.pipeline[fu.live as usize];
                        completed += 1;
                    } else {
                        k += 1;
                    }
                }
                if completed > 1 {
                    return Err(SimError::Machine(format!(
                        "{} delivered {completed} results in cycle {cycle}",
                        m.funits[fi].name
                    )));
                }
            }
        }

        // (2) Sample sources.
        for (vi, src) in dec.srcs[inst.srcs.0 as usize..inst.srcs.1 as usize]
            .iter()
            .enumerate()
        {
            let v = match *src {
                DecSrc::Rf(i) => {
                    self.stats.rf_reads += 1;
                    self.rf.vals[i as usize]
                }
                DecSrc::FuResult(f) => {
                    self.stats.bypass_reads += 1;
                    self.fus[f as usize].result.ok_or_else(|| {
                        SimError::Machine(format!(
                            "read of {}'s result port before any completion (pc {pc})",
                            m.funits[f as usize].name
                        ))
                    })?
                }
                DecSrc::Imm(v) => v,
                DecSrc::ImmReg(k) => self.immregs[k as usize].ok_or_else(|| {
                    SimError::Machine(format!(
                        "read of long-immediate register {k} before any write (pc {pc})"
                    ))
                })?,
            };
            self.values[vi] = v;
            self.stats.payload += 1;
        }

        // (3) Apply operand-port and RF writes.
        for &(vi, w) in &dec.writes[inst.writes.0 as usize..inst.writes.1 as usize] {
            let v = self.values[vi as usize];
            match w {
                DecWrite::Rf(i) => {
                    self.stats.rf_writes += 1;
                    self.rf.vals[i as usize] = v;
                }
                DecWrite::FuOperand(f) => self.fus[f as usize].operand = v,
            }
        }

        // (4) Triggers.
        let mut halt = false;
        for trig in &dec.trigs[inst.trigs.0 as usize..inst.trigs.1 as usize] {
            let trig_v = self.values[trig.vi as usize];
            let op = trig.op;
            let fu = &mut self.fus[trig.fu as usize];
            let launch =
                |fu: &mut FuSim, live_total: &mut u32, value: i32| -> Result<(), SimError> {
                    if fu.live as usize == MAX_INFLIGHT {
                        return Err(SimError::Machine(format!(
                            "more than {MAX_INFLIGHT} in-flight results on {} (pc {pc})",
                            m.funits[trig.fu as usize].name
                        )));
                    }
                    fu.pipeline[fu.live as usize] = InFlight {
                        done: cycle + op.latency() as u64,
                        value,
                    };
                    fu.live += 1;
                    *live_total += 1;
                    Ok(())
                };
            match op.class() {
                OpClass::Alu => {
                    let result = if op.num_inputs() == 1 {
                        op.eval_alu(trig_v, 0)
                    } else {
                        op.eval_alu(fu.operand, trig_v)
                    };
                    launch(fu, &mut self.live_total, result)?;
                }
                OpClass::Lsu => {
                    if op.is_load() {
                        self.stats.loads += 1;
                        let v = mem::load(&self.memory, op, trig_v as u32)?;
                        launch(fu, &mut self.live_total, v)?;
                    } else {
                        self.stats.stores += 1;
                        mem::store(&mut self.memory, op, trig_v as u32, fu.operand)?;
                    }
                }
                OpClass::Ctrl if CTRL => match op {
                    Opcode::Halt => halt = true,
                    Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                        let (taken, target) = match op {
                            Opcode::Jump => (true, trig_v as u32),
                            Opcode::CJnz => (trig_v != 0, fu.operand as u32),
                            Opcode::CJz => (trig_v == 0, fu.operand as u32),
                            _ => unreachable!(),
                        };
                        if taken {
                            if pending_jump.is_some() {
                                return Err(SimError::Machine(format!(
                                    "jump triggered during an in-flight jump (pc {pc})"
                                )));
                            }
                            self.stats.branches_taken += 1;
                            *pending_jump = Some((m.jump_delay_slots, target));
                        }
                    }
                    _ => unreachable!(),
                },
                OpClass::Ctrl => unreachable!("control trigger inside a superblock interior"),
            }
        }

        // (5) Long immediate (visible next cycle — applied after sampling).
        if let Some((k, v)) = inst.limm {
            self.stats.limms += 1;
            self.immregs[k as usize] = Some(v);
        }
        Ok(halt)
    }
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink.
pub(crate) fn run_tta_with<S: ProfileSink>(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    let blocks = BlockMap::of_tta(program);
    let mut eng = TtaEngine {
        m,
        dec: &dec,
        fus: vec![FuSim::default(); m.funits.len()],
        live_total: 0,
        rf,
        immregs: vec![None; m.limm.imm_regs as usize],
        values: vec![0; dec.max_moves],
        memory,
        stats: SimStats::default(),
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        // Superblock entry: the only place fuel, the pc bound and the
        // delay-slot budget are examined.
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= dec.insts.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        let full = blocks.run_len(pc) as u64;
        let mut len = full;
        if let Some((k, _)) = pending_jump {
            // k delay slots remain, then the redirect: at most k + 1 more
            // instructions execute on the fall-through path.
            len = len.min(k as u64 + 1);
        }
        len = len.min(fuel - cycle);
        // Only the run's terminal instruction can carry control triggers,
        // and it is part of this dispatch iff nothing clamped `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, cycle, &mut pending_jump)?;
            pc += 1;
            cycle += 1;
        }
        // The per-cycle engine decrements the delay-slot count at each
        // cycle's end; batch the `straight` decrements here. A redirect
        // inside the straight portion (straight == k + 1) can only happen
        // when the terminal instruction was clamped away.
        if let Some((k, target)) = pending_jump {
            if k as u64 + 1 == straight {
                pc = target;
                pending_jump = None;
            } else {
                pending_jump = Some((k - straight as u32, target));
            }
        }

        if terminal {
            let halt = eng.step::<S, true>(sink, pc, cycle, &mut pending_jump)?;
            cycle += 1;
            if halt {
                let ret = mem::load(&eng.memory, Opcode::Ldw, RETVAL_ADDR)?;
                return Ok(SimResult {
                    cycles: cycle,
                    ret,
                    memory: eng.memory,
                    stats: eng.stats,
                });
            }
            // Control transfer bookkeeping for the terminal cycle.
            match pending_jump.take() {
                Some((0, target)) => pc = target,
                Some((n, target)) => {
                    pending_jump = Some((n - 1, target));
                    pc += 1;
                }
                None => pc += 1,
            }
        }
    }
}

/// Convenience wrapper asserting the LSU exists and the program is
/// non-empty; mirrors [`run_tta`] with the default fuel.
pub fn run_tta_default(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    debug_assert!(m.funits.iter().any(|f| f.kind == FuKind::Lsu));
    run_tta(m, program, memory, DEFAULT_FUEL)
}
