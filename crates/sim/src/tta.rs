//! Cycle-accurate simulator for the transport-triggered cores.
//!
//! Implements exactly the timing contract the scheduler plans against
//! (documented in `tta-compiler::tta_sched`): per cycle, (1) function-unit
//! completions land in result ports, (2) all move sources are sampled, (3)
//! operand-port and RF writes apply (RF reads of the same cycle already
//! sampled → writes become visible next cycle; operand ports feed triggers
//! of the *same* cycle), (4) triggers start operations, loads sampling
//! memory and stores committing immediately, (5) the long immediate and
//! control effects apply.
//!
//! The simulator is deliberately paranoid: reading a result port that never
//! received a completion, simultaneous completions on one unit, or a jump
//! during an in-flight jump raise [`SimError::Machine`] — each of these is
//! a scheduler bug that static validation cannot see.
//!
//! ## Fused-block dispatch and the compiled tier
//!
//! The program is predecoded once per run: empty slots are dropped, moves
//! are split into source/write/trigger classes, every register reference
//! is resolved to a flat index, and the program is segmented into
//! superblocks ([`tta_isa::BlockMap`]). The cycle loop then dispatches a
//! superblock at a time: the fuel check, the pc bounds check and the
//! delay-slot bookkeeping happen once per block entry, and the interior of
//! a block runs as a tight loop over the contiguous per-class move arrays
//! in a monomorphisation whose control arm is compiled out (`CTRL =
//! false` in [`TtaEngine::step`]). Cycle counts, statistics and error
//! behaviour are bit-identical to per-cycle execution; the fuel-exhaustion
//! boundary is pinned by `tests/fuel_boundary.rs`.
//!
//! Hot superblocks are additionally *promoted* into compiled blocks
//! (DESIGN.md §14): [`compile_tta_block`] matches every decoded move once
//! and emits a flat chain of resolved thunks ([`TtaOp`]) with the run's
//! static `SimStats` contribution precomputed, so steady-state execution
//! pays neither the per-move decode match nor the per-move statistics
//! traffic. Completions ride a four-deep wheel (`wheel[cycle & 3]`, valid
//! because every pipelined latency is 1–3 cycles and the wheel is drained
//! every cycle) shared by both tiers, so a block entered with results in
//! flight from interpreted code delivers them on exactly the right cycle.

use crate::profile::{finish_tta, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{FlatRf, IoCtx, TRAP_CYCLES};
use crate::tier::TierCounts;
use tta_isa::{BlockMap, MoveDst, MoveSrc, TierEntry, TierTable, TtaInst, RETVAL_ADDR};
use tta_model::io::MMIO_BASE;
use tta_model::{mem, FuKind, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// In-flight result budget per function unit. The deepest pipeline is the
/// longest op latency (3) per trigger move, and a well-formed instruction
/// triggers a unit at most once, so 8 leaves ample headroom; the
/// same-cycle-completion check below still rejects overfull schedules.
const MAX_INFLIGHT: usize = 8;

/// Runtime state of one function unit: its shared operand port and result
/// port. In-flight results live on the engine's completion wheel; `live`
/// only enforces the per-unit in-flight budget.
#[derive(Debug, Clone, Default)]
struct FuSim {
    operand: i32,
    result: Option<i32>,
    live: u8,
}

/// A decoded move source: register references resolved to flat indices.
#[derive(Debug, Clone, Copy)]
enum DecSrc {
    Rf(u32),
    FuResult(u16),
    Imm(i32),
    ImmReg(u8),
}

/// A decoded non-trigger destination. The `u16` pairs each write with the
/// sampled value of its move (index into the per-instruction value window).
#[derive(Debug, Clone, Copy)]
enum DecWrite {
    Rf(u32),
    FuOperand(u16),
}

/// A decoded trigger: value index, unit, opcode.
#[derive(Debug, Clone, Copy)]
struct DecTrig {
    vi: u16,
    fu: u16,
    op: Opcode,
}

/// One instruction as ranges into the flat per-class move arrays.
#[derive(Debug, Clone, Copy)]
struct DecInst {
    srcs: (u32, u32),
    writes: (u32, u32),
    trigs: (u32, u32),
    limm: Option<(u8, i32)>,
}

/// The whole program, predecoded into dense per-class arrays. Because the
/// per-class arrays are filled in program order, the moves of a
/// superblock's instructions are contiguous in memory and block dispatch
/// streams straight through them.
struct Decoded {
    srcs: Vec<DecSrc>,
    writes: Vec<(u16, DecWrite)>,
    trigs: Vec<DecTrig>,
    insts: Vec<DecInst>,
    /// Widest instruction (sizes the reusable sampled-value scratch).
    max_moves: usize,
}

fn decode(rf: &FlatRf, program: &[TtaInst]) -> Decoded {
    let mut d = Decoded {
        srcs: Vec::new(),
        writes: Vec::new(),
        trigs: Vec::new(),
        insts: Vec::with_capacity(program.len()),
        max_moves: 0,
    };
    for inst in program {
        let s0 = d.srcs.len() as u32;
        let w0 = d.writes.len() as u32;
        let t0 = d.trigs.len() as u32;
        let mut vi: u16 = 0;
        for slot in &inst.slots {
            let Some(mv) = slot else { continue };
            d.srcs.push(match mv.src {
                MoveSrc::Rf(r) => DecSrc::Rf(rf.flat(r)),
                MoveSrc::FuResult(f) => DecSrc::FuResult(f.0),
                MoveSrc::Imm(v) => DecSrc::Imm(v),
                MoveSrc::ImmReg(k) => DecSrc::ImmReg(k),
            });
            match mv.dst {
                MoveDst::Rf(r) => d.writes.push((vi, DecWrite::Rf(rf.flat(r)))),
                MoveDst::FuOperand(f) => d.writes.push((vi, DecWrite::FuOperand(f.0))),
                MoveDst::FuTrigger(f, op) => d.trigs.push(DecTrig { vi, fu: f.0, op }),
            }
            vi += 1;
        }
        d.max_moves = d.max_moves.max(vi as usize);
        d.insts.push(DecInst {
            srcs: (s0, d.srcs.len() as u32),
            writes: (w0, d.writes.len() as u32),
            trigs: (t0, d.trigs.len() as u32),
            limm: inst.limm,
        });
    }
    d
}

/// Run a TTA program. The compiled superblock tier is configured from the
/// environment ([`tta_isa::TierConfig::from_env`]) with a fresh per-run
/// promotion table; share one across runs with [`crate::run_with_tiers`].
pub fn run_tta(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    let cfg = tta_isa::TierConfig::from_env();
    if cfg.enabled {
        let tier = TtaTiers::new(program.len(), cfg.threshold);
        run_tta_with(m, program, memory, fuel, &mut NoProfile, Some(&tier), None)
    } else {
        run_tta_with(m, program, memory, fuel, &mut NoProfile, None, None)
    }
}

/// Like [`run_tta`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_tta_traced(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_tta_with(m, program, memory, fuel, &mut sink, None, None)?;
    Ok((r, sink.trace))
}

/// Like [`run_tta`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_tta_profiled(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_tta_with(m, program, memory, fuel, &mut sink, None, None)?;
    let mut p = finish_tta(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop and by compiled blocks.
pub(crate) struct TtaEngine<'a> {
    m: &'a Machine,
    dec: &'a Decoded,
    fus: Vec<FuSim>,
    /// Completion wheel: results due at cycle `c` sit in `wheel[c & 3]`
    /// as `(unit, value)` in launch order. Sound because every pipelined
    /// latency is 1..=3 and the wheel is drained every cycle.
    wheel: [Vec<(u16, i32)>; 4],
    rf: FlatRf,
    immregs: Vec<Option<i32>>,
    /// Sampled move values of the current instruction, reused every cycle.
    values: Vec<i32>,
    /// Scratch slots for statically scheduled completions of compiled
    /// blocks ([`TtaOp::A1Sc`] etc.), grown on demand at block entry.
    jit_tmp: Vec<i32>,
    memory: Vec<u8>,
    stats: SimStats,
    /// Memory-mapped I/O and interrupt state, present only for reactive
    /// runs ([`crate::run_with_io`]); `None` keeps plain runs untouched.
    io: Option<IoCtx<'a>>,
}

/// The datapath checkpoint a TTA trap must save. A transport-triggered
/// core exposes far more architectural state than a pc: the interrupted
/// schedule's values live in FU operand/result ports and long-immediate
/// registers (software bypassing), so handler entry checkpoints all of
/// them — the paper's argument for why TTA interrupt support is costly.
struct TtaShadow {
    pc: u32,
    pending_jump: Option<(u32, u32)>,
    rf: Vec<i32>,
    fus: Vec<FuSim>,
    immregs: Vec<Option<i32>>,
    /// In-flight completions, indexed by *remaining* latency (0 = due at
    /// the resume cycle). Saved rather than force-landed: landing early
    /// would overwrite result ports the interrupted schedule has not
    /// read yet (software bypassing keeps values live in ports), which
    /// is exactly the exposed-datapath state the paper's trap-cost
    /// argument is about. Re-armed relative to the resume cycle by
    /// [`TtaEngine::iret`].
    wheel: [Vec<(u16, i32)>; 4],
}

impl TtaEngine<'_> {
    /// Phase 1: land the completions due this cycle in their result
    /// ports. Shared by the interpreted step and compiled blocks — both
    /// must call it exactly once per architectural cycle.
    #[inline(always)]
    fn deliver(&mut self, cycle: u64) -> Result<(), SimError> {
        let bucket = (cycle & 3) as usize;
        match self.wheel[bucket].len() {
            0 => Ok(()),
            1 => {
                let (fi, v) = self.wheel[bucket][0];
                self.wheel[bucket].clear();
                let fu = &mut self.fus[fi as usize];
                fu.result = Some(v);
                fu.live -= 1;
                Ok(())
            }
            n => self.deliver_many(bucket, n, cycle),
        }
    }

    /// Multi-completion delivery: apply in launch order, then enforce the
    /// at-most-one-completion-per-unit rule, reporting the lowest-indexed
    /// offending unit exactly as the per-unit scan of the original engine.
    fn deliver_many(&mut self, bucket: usize, n: usize, cycle: u64) -> Result<(), SimError> {
        for k in 0..n {
            let (fi, v) = self.wheel[bucket][k];
            let fu = &mut self.fus[fi as usize];
            fu.result = Some(v);
            fu.live -= 1;
        }
        let mut offender: Option<(u16, usize)> = None;
        for k in 0..n {
            let fi = self.wheel[bucket][k].0;
            let completed = self.wheel[bucket][..n].iter().filter(|e| e.0 == fi).count();
            if completed > 1 && offender.is_none_or(|(of, _)| fi < of) {
                offender = Some((fi, completed));
            }
        }
        self.wheel[bucket].clear();
        if let Some((fi, completed)) = offender {
            return Err(SimError::Machine(format!(
                "{} delivered {completed} results in cycle {cycle}",
                self.m.funits[fi as usize].name
            )));
        }
        Ok(())
    }

    /// Start an operation on unit `fi`, its result due `lat` cycles out.
    #[inline(always)]
    fn launch(
        &mut self,
        fi: u16,
        lat: u32,
        value: i32,
        cycle: u64,
        pc: u32,
    ) -> Result<(), SimError> {
        if self.fus[fi as usize].live as usize == MAX_INFLIGHT {
            return Err(err_inflight(self.m, fi, pc));
        }
        self.fus[fi as usize].live += 1;
        debug_assert!(
            (1..=3).contains(&lat),
            "completion wheel covers latencies 1..=3"
        );
        self.wheel[((cycle + lat as u64) & 3) as usize].push((fi, value));
        Ok(())
    }

    /// Arm a control transfer (the taken-jump tail of phase 4).
    #[inline(always)]
    fn take_jump(
        &mut self,
        pc: u32,
        target: u32,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<(), SimError> {
        if pending_jump.is_some() {
            return Err(err_nested_jump(pc));
        }
        self.stats.branches_taken += 1;
        *pending_jump = Some((self.m.jump_delay_slots, target));
        Ok(())
    }

    /// Phases 2–5 of one architectural cycle at `pc` (everything except
    /// completion delivery). With `CTRL = false` the caller guarantees
    /// (via the block map) that the instruction carries no control
    /// trigger, and the whole control arm is compiled out of the
    /// monomorphisation. Returns whether the core halted.
    #[inline(always)]
    fn exec_inst<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: u64,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<bool, SimError> {
        let dec = self.dec;
        let m = self.m;
        let inst = dec.insts[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        // (2) Sample sources.
        for (vi, src) in dec.srcs[inst.srcs.0 as usize..inst.srcs.1 as usize]
            .iter()
            .enumerate()
        {
            let v = match *src {
                DecSrc::Rf(i) => {
                    self.stats.rf_reads += 1;
                    self.rf.vals[i as usize]
                }
                DecSrc::FuResult(f) => {
                    self.stats.bypass_reads += 1;
                    match self.fus[f as usize].result {
                        Some(v) => v,
                        None => return Err(err_result_port(m, f, pc)),
                    }
                }
                DecSrc::Imm(v) => v,
                DecSrc::ImmReg(k) => match self.immregs[k as usize] {
                    Some(v) => v,
                    None => return Err(err_immreg(k, pc)),
                },
            };
            self.values[vi] = v;
            self.stats.payload += 1;
        }

        // (3) Apply operand-port and RF writes.
        for &(vi, w) in &dec.writes[inst.writes.0 as usize..inst.writes.1 as usize] {
            let v = self.values[vi as usize];
            match w {
                DecWrite::Rf(i) => {
                    self.stats.rf_writes += 1;
                    self.rf.vals[i as usize] = v;
                }
                DecWrite::FuOperand(f) => self.fus[f as usize].operand = v,
            }
        }

        // (4) Triggers.
        let mut halt = false;
        for trig in &dec.trigs[inst.trigs.0 as usize..inst.trigs.1 as usize] {
            let trig_v = self.values[trig.vi as usize];
            let op = trig.op;
            match op.class() {
                OpClass::Alu => {
                    let result = if op.num_inputs() == 1 {
                        op.eval_alu(trig_v, 0)
                    } else {
                        op.eval_alu(self.fus[trig.fu as usize].operand, trig_v)
                    };
                    self.launch(trig.fu, op.latency(), result, cycle, pc)?;
                }
                OpClass::Lsu => {
                    if op.is_load() {
                        self.stats.loads += 1;
                        let v = self.mem_load(op, trig_v as u32, cycle)?;
                        self.launch(trig.fu, op.latency(), v, cycle, pc)?;
                    } else {
                        self.stats.stores += 1;
                        let operand = self.fus[trig.fu as usize].operand;
                        self.mem_store(op, trig_v as u32, operand, cycle)?;
                    }
                }
                OpClass::Ctrl if CTRL => match op {
                    Opcode::Halt => halt = true,
                    Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                        let (taken, target) = match op {
                            Opcode::Jump => (true, trig_v as u32),
                            Opcode::CJnz => {
                                (trig_v != 0, self.fus[trig.fu as usize].operand as u32)
                            }
                            Opcode::CJz => (trig_v == 0, self.fus[trig.fu as usize].operand as u32),
                            _ => unreachable!(),
                        };
                        if taken {
                            self.take_jump(pc, target, pending_jump)?;
                        }
                    }
                    _ => unreachable!(),
                },
                OpClass::Ctrl => unreachable!("control trigger inside a superblock interior"),
            }
        }

        // (5) Long immediate (visible next cycle — applied after sampling).
        if let Some((k, v)) = inst.limm {
            self.stats.limms += 1;
            self.immregs[k as usize] = Some(v);
        }
        Ok(halt)
    }

    /// One full architectural cycle at `pc` (the interpreted tier).
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: u64,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<bool, SimError> {
        self.deliver(cycle)?;
        self.exec_inst::<S, CTRL>(sink, pc, cycle, pending_jump)
    }

    /// Memory load routing: data memory on the fast path, the MMIO bus
    /// for addresses at or above [`MMIO_BASE`] when the run has an I/O
    /// system. Routing keys off the data-memory fault, so io-less runs
    /// pay nothing.
    #[inline(always)]
    fn mem_load(&mut self, op: Opcode, addr: u32, now: u64) -> Result<i32, SimError> {
        match mem::load(&self.memory, op, addr) {
            Ok(v) => Ok(v),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.load(op, addr, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// Memory store routing (see [`TtaEngine::mem_load`]).
    #[inline(always)]
    fn mem_store(&mut self, op: Opcode, addr: u32, value: i32, now: u64) -> Result<(), SimError> {
        match mem::store(&mut self.memory, op, addr, value) {
            Ok(()) => Ok(()),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.store(op, addr, value, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// The per-block-entry I/O boundary: latch risen lines, then either
    /// deliver a pending interrupt (returning `None` — the caller loops
    /// back so its entry checks re-run at the handler pc) or report how
    /// many cycles may safely run before the next boundary.
    ///
    /// Handler entry is the TTA's architecturally expensive trap: the
    /// interrupted transport schedule owns the buses, so the core first
    /// drains every in-flight function-unit result (one cycle per
    /// residual wheel slot, fuel-checked), checkpoints the exposed
    /// datapath, and only then pays the fixed redirect cost.
    fn io_boundary(
        &mut self,
        pc: &mut u32,
        cycle: &mut u64,
        fuel: u64,
        pending_jump: &mut Option<(u32, u32)>,
        shadow: &mut Option<TtaShadow>,
    ) -> Result<Option<u64>, SimError> {
        let (line, entry) = match &mut self.io {
            None => return Ok(Some(u64::MAX)),
            Some(ctx) => {
                ctx.sys.poll(*cycle);
                match (ctx.sys.deliverable(), ctx.irq_entry) {
                    (Some(line), Some(entry)) => (line, entry),
                    _ => return Ok(Some(ctx.sys.window(*cycle))),
                }
            }
        };
        // The core still *waits* for the last in-flight result (one cycle
        // per residual wheel step, fuel-checked) — that is the trap's
        // drain cost — but the completions themselves are checkpointed
        // with their remaining latencies instead of landed: an early
        // landing would clobber result ports whose current values the
        // interrupted schedule still reads (fuzz seed 2604).
        let mut wheel: [Vec<(u16, i32)>; 4] = Default::default();
        let mut drain = 0u64;
        for b in 0..4usize {
            if self.wheel[b].is_empty() {
                continue;
            }
            let rel = (b as u64).wrapping_sub(*cycle) & 3;
            drain = drain.max(rel + 1);
            wheel[rel as usize] = std::mem::take(&mut self.wheel[b]);
        }
        for _ in 0..drain {
            if *cycle >= fuel {
                return Err(SimError::OutOfFuel);
            }
            *cycle += 1;
            self.stats.irq_cycles += 1;
        }
        // The checkpoint keeps the in-flight `live` counts (the restored
        // wheel will decrement them on delivery); the handler starts from
        // idle units, so drop them on the engine's own view.
        let inflight: Vec<u16> = wheel.iter().flatten().map(|&(fi, _)| fi).collect();
        *shadow = Some(TtaShadow {
            pc: *pc,
            pending_jump: pending_jump.take(),
            rf: self.rf.vals.clone(),
            fus: self.fus.clone(),
            immregs: self.immregs.clone(),
            wheel,
        });
        for fi in inflight {
            self.fus[fi as usize].live -= 1;
        }
        let ctx = self.io.as_mut().expect("io presence checked above");
        ctx.sys.begin_delivery(line);
        self.stats.irqs += 1;
        *pc = entry;
        *cycle += TRAP_CYCLES;
        self.stats.irq_cycles += TRAP_CYCLES;
        Ok(None)
    }

    /// Retire a halting handler: consume the end-of-interrupt doorbell
    /// if one is latched and restore the checkpointed datapath (leftover
    /// handler completions are discarded with the wheel). Returns whether
    /// the halt that reached the caller was a handler return rather than
    /// the program's end.
    fn iret(
        &mut self,
        pc: &mut u32,
        cycle: &mut u64,
        pending_jump: &mut Option<(u32, u32)>,
        shadow: &mut Option<TtaShadow>,
    ) -> Result<bool, SimError> {
        let Some(ctx) = &mut self.io else {
            return Ok(false);
        };
        if !ctx.sys.take_eoi() {
            return Ok(false);
        }
        ctx.sys.finish_handler();
        let sh = shadow
            .take()
            .ok_or_else(|| SimError::Machine("end-of-interrupt without a saved context".into()))?;
        for b in &mut self.wheel {
            b.clear();
        }
        self.rf.vals = sh.rf;
        self.fus = sh.fus;
        self.immregs = sh.immregs;
        *pc = sh.pc;
        *pending_jump = sh.pending_jump;
        *cycle += TRAP_CYCLES;
        self.stats.irq_cycles += TRAP_CYCLES;
        // Re-arm the checkpointed in-flight completions relative to the
        // resume cycle: an entry saved with remaining latency `rel` lands
        // `rel` cycles after execution resumes, exactly where the
        // interrupted schedule expects it.
        for (rel, entries) in sh.wheel.into_iter().enumerate() {
            if !entries.is_empty() {
                self.wheel[(*cycle as usize + rel) & 3] = entries;
            }
        }
        Ok(true)
    }

    /// Build the final [`SimResult`] at the halt cycle, folding the I/O
    /// system's counters and device-output stream into it.
    fn finish(mut self, cycles: u64) -> Result<SimResult, SimError> {
        let ret = mem::load(&self.memory, Opcode::Ldw, RETVAL_ADDR)?;
        let mut uart_tx = Vec::new();
        if let Some(ctx) = &self.io {
            self.stats.mmio_loads = ctx.sys.mmio_loads;
            self.stats.mmio_stores = ctx.sys.mmio_stores();
            uart_tx = ctx.sys.uart_tx();
        }
        Ok(SimResult {
            cycles,
            ret,
            memory: self.memory,
            stats: self.stats,
            uart_tx,
        })
    }
}

/// Unchecked datapath accessors for compiled blocks.
///
/// # Safety
/// Callers must have validated every index against the engine's [`Dims`]
/// — [`compile_tta_block`] asserts each emitted index at promotion time
/// and [`exec_tta_block`] checks the engine shape once on entry.
impl TtaEngine<'_> {
    #[inline(always)]
    unsafe fn rf_get(&self, i: u32) -> i32 {
        debug_assert!((i as usize) < self.rf.vals.len());
        unsafe { *self.rf.vals.get_unchecked(i as usize) }
    }

    #[inline(always)]
    unsafe fn rf_set(&mut self, i: u32, v: i32) {
        debug_assert!((i as usize) < self.rf.vals.len());
        unsafe { *self.rf.vals.get_unchecked_mut(i as usize) = v }
    }

    #[inline(always)]
    unsafe fn operand(&self, f: u16) -> i32 {
        debug_assert!((f as usize) < self.fus.len());
        unsafe { self.fus.get_unchecked(f as usize).operand }
    }

    #[inline(always)]
    unsafe fn set_operand(&mut self, f: u16, v: i32) {
        debug_assert!((f as usize) < self.fus.len());
        unsafe { self.fus.get_unchecked_mut(f as usize).operand = v }
    }

    #[inline(always)]
    unsafe fn result(&self, f: u16, pc: u32) -> Result<i32, SimError> {
        debug_assert!((f as usize) < self.fus.len());
        match unsafe { self.fus.get_unchecked(f as usize).result } {
            Some(v) => Ok(v),
            None => Err(err_result_port(self.m, f, pc)),
        }
    }

    #[inline(always)]
    unsafe fn immreg(&self, k: u8, pc: u32) -> Result<i32, SimError> {
        debug_assert!((k as usize) < self.immregs.len());
        match unsafe { *self.immregs.get_unchecked(k as usize) } {
            Some(v) => Ok(v),
            None => Err(err_immreg(k, pc)),
        }
    }

    /// Place a value in a unit's result port directly (a statically
    /// scheduled completion — the wheel was bypassed at promotion time).
    #[inline(always)]
    unsafe fn set_result(&mut self, f: u16, v: i32) {
        debug_assert!((f as usize) < self.fus.len());
        unsafe { self.fus.get_unchecked_mut(f as usize).result = Some(v) }
    }

    /// Whether no completion is in flight (all wheel buckets empty) —
    /// the clean-entry precondition of a block's fast variant.
    #[inline(always)]
    fn wheel_is_empty(&self) -> bool {
        self.wheel.iter().all(|b| b.is_empty())
    }

    /// [`TtaEngine::launch`] without the unit-index bounds check (the
    /// in-flight budget check stays — it is real error semantics).
    #[inline(always)]
    unsafe fn launch_fast(
        &mut self,
        fi: u16,
        op: Opcode,
        value: i32,
        cycle: u64,
        pc: u32,
    ) -> Result<(), SimError> {
        debug_assert!((fi as usize) < self.fus.len());
        let fu = unsafe { self.fus.get_unchecked_mut(fi as usize) };
        if fu.live as usize == MAX_INFLIGHT {
            return Err(err_inflight(self.m, fi, pc));
        }
        fu.live += 1;
        let lat = op.latency();
        debug_assert!(
            (1..=3).contains(&lat),
            "completion wheel covers latencies 1..=3"
        );
        self.wheel[((cycle + lat as u64) & 3) as usize].push((fi, value));
        Ok(())
    }
}

/// Out-of-line constructors for the machine-rule errors: they are the
/// never-taken branches of the hot dispatch loops, and keeping the
/// formatting machinery behind a cold call keeps those loops compact.
#[cold]
#[inline(never)]
fn err_result_port(m: &Machine, f: u16, pc: u32) -> SimError {
    SimError::Machine(format!(
        "read of {}'s result port before any completion (pc {pc})",
        m.funits[f as usize].name
    ))
}

#[cold]
#[inline(never)]
fn err_immreg(k: u8, pc: u32) -> SimError {
    SimError::Machine(format!(
        "read of long-immediate register {k} before any write (pc {pc})"
    ))
}

#[cold]
#[inline(never)]
fn err_inflight(m: &Machine, f: u16, pc: u32) -> SimError {
    SimError::Machine(format!(
        "more than {MAX_INFLIGHT} in-flight results on {} (pc {pc})",
        m.funits[f as usize].name
    ))
}

#[cold]
#[inline(never)]
fn err_nested_jump(pc: u32) -> SimError {
    SimError::Machine(format!("jump triggered during an in-flight jump (pc {pc})"))
}

/// A resolved value source in a compiled block (control thunks only —
/// the straight-line thunks flatten the source into the variant).
#[derive(Debug, Clone, Copy)]
enum Src {
    Rf(u32),
    Fu(u16),
    Imm(i32),
    ImmReg(u8),
}

impl Src {
    /// # Safety
    /// Every index must have been validated against the engine's [`Dims`]
    /// (promotion-time validation + the entry check of `exec_tta_block`).
    #[inline(always)]
    unsafe fn read(self, eng: &TtaEngine, pc: u32) -> Result<i32, SimError> {
        unsafe {
            match self {
                Src::Rf(i) => Ok(eng.rf_get(i)),
                Src::Imm(v) => Ok(v),
                Src::Fu(f) => eng.result(f, pc),
                Src::ImmReg(k) => eng.immreg(k, pc),
            }
        }
    }
}

/// Engine shape a compiled block was validated against. Checked once per
/// block invocation, which makes the unchecked register/unit/limm-reg
/// accesses of the thunks sound even if a caller pairs the tier table
/// with the wrong machine.
#[derive(Debug, Clone, Copy)]
struct Dims {
    rf: usize,
    fus: usize,
    immregs: usize,
}

/// One thunk of a compiled superblock: a decoded move with its opcode
/// match, register resolution and value routing already performed, and
/// the source kind flattened into the variant so dispatch is a single
/// jump. Instruction boundaries are explicit (`Next` advances the cycle
/// and delivers completions), so fuel accounting stays exact.
#[derive(Debug, Clone, Copy)]
enum TtaOp {
    /// End of one instruction: advance `pc`/`cycle`. Emitted only for
    /// cycles whose wheel bucket is provably empty (static scheduling
    /// routed every intra-block landing through [`TtaOp::DeliverS`] or a
    /// direct launch), so it performs no delivery at all.
    Next,
    /// Register-to-register move.
    RfRf {
        s: u32,
        d: u32,
    },
    /// Immediate into a register.
    RfImm {
        v: i32,
        d: u32,
    },
    /// Result port into a register.
    RfFu {
        f: u16,
        d: u32,
    },
    /// Long-immediate register into a register.
    RfIr {
        k: u8,
        d: u32,
    },
    /// Register into a unit's operand port.
    OpRf {
        s: u32,
        f: u16,
    },
    /// Immediate into a unit's operand port.
    OpImm {
        v: i32,
        f: u16,
    },
    /// Result port into a unit's operand port.
    OpFu {
        s: u16,
        f: u16,
    },
    /// Long-immediate register into a unit's operand port.
    OpIr {
        k: u8,
        f: u16,
    },
    /// One-input ALU trigger, by source kind.
    A1Rf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    A1Imm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    A1Fu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    A1Ir {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    /// Two-input ALU trigger (operand port is the first input).
    A2Rf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    A2Imm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    A2Fu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    A2Ir {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    /// Load trigger, by address-source kind.
    LdRf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    LdImm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    LdFu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    LdIr {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    /// Store trigger (operand port carries the value), by address source.
    StRf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    StImm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    StFu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    StIr {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    /// Direct-launch ALU/load triggers: promotion-time scheduling proved
    /// the landing cycle is inside the block with no intervening read of
    /// the unit's result port, so the result is placed directly and the
    /// completion wheel is bypassed entirely.
    A1DRf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    A1DImm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    A1DFu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    A1DIr {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    A2DRf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    A2DImm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    A2DFu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    A2DIr {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    LdDRf {
        s: u32,
        fu: u16,
        op: Opcode,
    },
    LdDImm {
        v: i32,
        fu: u16,
        op: Opcode,
    },
    LdDFu {
        s: u16,
        fu: u16,
        op: Opcode,
    },
    LdDIr {
        k: u8,
        fu: u16,
        op: Opcode,
    },
    /// Scratch-launch: the landing is intra-block but the old port value
    /// is still read before it — compute now into a scratch slot,
    /// surfaced at the landing cycle by [`TtaOp::DeliverS`].
    A1Sc {
        src: Src,
        slot: u16,
        op: Opcode,
    },
    A2Sc {
        src: Src,
        fu: u16,
        slot: u16,
        op: Opcode,
    },
    LdSc {
        src: Src,
        slot: u16,
        op: Opcode,
    },
    /// Phase 1 of a statically scheduled landing cycle: move a scratch
    /// slot into the unit's result port.
    DeliverS {
        slot: u16,
        fu: u16,
    },
    /// Fused operand-move + two-input trigger on one unit (direct
    /// landing): `a` goes to the operand port, `op(a, b)` to the result
    /// port. One dispatch for the dominant TTA cycle shape.
    PairA2D {
        a: Src,
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// [`TtaOp::PairA2D`] with a wheel launch (dynamic landing).
    PairA2W {
        a: Src,
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// Fused value-move + store trigger on one unit.
    PairSt {
        addr: Src,
        val: Src,
        fu: u16,
        op: Opcode,
    },
    /// [`TtaOp::PairA2D`] as a whole cycle (trailing `Next` absorbed).
    CycA2D {
        a: Src,
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// [`TtaOp::PairA2W`] as a whole cycle.
    CycA2W {
        a: Src,
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// [`TtaOp::PairSt`] as a whole cycle.
    CycSt {
        addr: Src,
        val: Src,
        fu: u16,
        op: Opcode,
    },
    /// Fused cycle boundary + scratch delivery (`Next` + `DeliverS`).
    NextDS {
        slot: u16,
        fu: u16,
    },
    /// [`TtaOp::NextDS`] + an operand move: the three-thunk prologue of
    /// the dominant scratch-scheduled ALU loop cycle, in one dispatch.
    NextDSOp {
        slot: u16,
        fu: u16,
        src: Src,
        f: u16,
    },
    /// Fused write-back + scratch launch (`RfFu` + `A2Sc`): the loop-
    /// carried accumulate shape (read old result, launch next op).
    WbA2Sc {
        f: u16,
        d: u32,
        src: Src,
        fu: u16,
        slot: u16,
        op: Opcode,
    },
    /// [`TtaOp::WbA2Sc`] as a whole cycle (trailing `Next` absorbed).
    CycWbA2Sc {
        f: u16,
        d: u32,
        src: Src,
        fu: u16,
        slot: u16,
        op: Opcode,
    },
    /// `A2Sc` as a whole cycle.
    CycA2Sc {
        src: Src,
        fu: u16,
        slot: u16,
        op: Opcode,
    },
    /// `LdSc` as a whole cycle.
    CycLdSc {
        src: Src,
        slot: u16,
        op: Opcode,
    },
    /// Fused operand move + write-back (`Op*` + `RfFu`), the two-move
    /// body of three-move cycles.
    MovOpWb {
        src: Src,
        f: u16,
        wf: u16,
        d: u32,
    },
    /// A lone operand move as a whole cycle.
    CycMovOp {
        src: Src,
        f: u16,
    },
    /// A lone register write as a whole cycle.
    CycMovRf {
        src: Src,
        d: u32,
    },
    /// A lone direct-launch trigger as a whole cycle, by trigger kind.
    CycTrigA1D {
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// Two-input variant of [`TtaOp::CycTrigA1D`].
    CycTrigA2D {
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// Load variant of [`TtaOp::CycTrigA1D`].
    CycTrigLdD {
        b: Src,
        fu: u16,
        op: Opcode,
    },
    /// A lone long-immediate write as a whole cycle.
    CycLimm {
        k: u8,
        v: i32,
    },
    /// Two consecutive pure cycle boundaries (an empty stall cycle).
    Next2,
    /// [`TtaOp::Next`] plus completion delivery, for cycles the wheel
    /// can still be non-empty (entry in-flight lands in the first three
    /// cycles; in-block wheel launches land at recorded cycles).
    NextD,
    /// Long immediate (phase 5: applied after every move of the cycle).
    Limm {
        k: u8,
        v: i32,
    },
    /// Halt trigger (terminal instructions only).
    Halt,
    /// Unconditional jump trigger (terminal instructions only).
    Jump {
        src: Src,
    },
    /// Conditional jump trigger (terminal instructions only).
    CJump {
        src: Src,
        fu: u16,
        nz: bool,
    },
    /// Same-cycle hazard (a move reads a register another move of the
    /// instruction writes): run the reference phase order instead.
    Phased {
        pc: u32,
    },
    /// [`TtaOp::Phased`] for the terminal, control-bearing instruction.
    PhasedCtrl {
        pc: u32,
    },
}

/// A compiled superblock: the promotion product stored in the tier table.
/// Invoked as `block(engine, entry_cycle, pending_jump)`; returns whether
/// the core halted. Callers guarantee an unclamped entry (no pending
/// jump, fuel covers the whole run).
pub(crate) type TtaBlockFn = Box<
    dyn for<'e> Fn(&mut TtaEngine<'e>, u64, &mut Option<(u32, u32)>) -> Result<bool, SimError>
        + Send
        + Sync,
>;

/// Compiled-tier state of one TTA program: whole superblocks, plus the
/// delay-slot segments that execute on the fall-through path of a taken
/// jump. Without the second table every taken branch costs
/// `jump_delay_slots` interpreted cycles — the dominant residual
/// interpreter time in branchy kernels. A delay segment is the head of
/// the fall-through run clamped to the remaining delay budget, so it is
/// keyed by pc like a block but compiled for its own (shorter) length,
/// stored alongside it.
pub(crate) struct TtaTiers {
    pub(crate) main: TierTable<TtaBlockFn>,
    pub(crate) delay: TierTable<(u32, TtaBlockFn)>,
}

impl TtaTiers {
    pub(crate) fn new(len: usize, threshold: u32) -> TtaTiers {
        TtaTiers {
            main: TierTable::new(len, threshold),
            delay: TierTable::new(len, threshold),
        }
    }

    pub(crate) fn compiled_count(&self) -> usize {
        self.main.compiled_count() + self.delay.compiled_count()
    }
}

/// Execute a compiled block: straight-line thunk dispatch with the
/// block's static statistics applied once at the end.
#[allow(clippy::too_many_arguments)]
fn exec_tta_block(
    ops: &[TtaOp],
    delta: &SimStats,
    dims: Dims,
    scratch: u16,
    deliver_entry: bool,
    eng: &mut TtaEngine,
    pc0: u32,
    cycle0: u64,
    pending_jump: &mut Option<(u32, u32)>,
) -> Result<bool, SimError> {
    assert!(
        eng.rf.vals.len() == dims.rf
            && eng.fus.len() == dims.fus
            && eng.immregs.len() == dims.immregs,
        "compiled block executed against a different machine shape"
    );
    if eng.jit_tmp.len() < scratch as usize {
        eng.jit_tmp.resize(scratch as usize, 0);
    }
    let mut pc = pc0;
    let mut cycle = cycle0;
    let mut halt = false;
    if deliver_entry {
        eng.deliver(cycle)?;
    }
    for op in ops {
        // SAFETY: every register, unit, long-immediate-register and
        // scratch index in `ops` was validated against `dims`/`scratch`
        // at promotion time, and the engine was checked against both on
        // entry above.
        unsafe {
            match *op {
                TtaOp::Next => {
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::NextD => {
                    pc += 1;
                    cycle += 1;
                    eng.deliver(cycle)?;
                }
                TtaOp::DeliverS { slot, fu } => {
                    let v = *eng.jit_tmp.get_unchecked(slot as usize);
                    eng.set_result(fu, v);
                }
                TtaOp::PairA2D { a, b, fu, op } => {
                    let av = a.read(eng, pc)?;
                    let bv = b.read(eng, pc)?;
                    eng.set_operand(fu, av);
                    eng.set_result(fu, op.eval_alu(av, bv));
                }
                TtaOp::CycA2D { a, b, fu, op } => {
                    let av = a.read(eng, pc)?;
                    let bv = b.read(eng, pc)?;
                    eng.set_operand(fu, av);
                    eng.set_result(fu, op.eval_alu(av, bv));
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::PairA2W { a, b, fu, op } => {
                    let av = a.read(eng, pc)?;
                    let bv = b.read(eng, pc)?;
                    eng.set_operand(fu, av);
                    eng.launch_fast(fu, op, op.eval_alu(av, bv), cycle, pc)?;
                }
                TtaOp::CycA2W { a, b, fu, op } => {
                    let av = a.read(eng, pc)?;
                    let bv = b.read(eng, pc)?;
                    eng.set_operand(fu, av);
                    eng.launch_fast(fu, op, op.eval_alu(av, bv), cycle, pc)?;
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::PairSt { addr, val, fu, op } => {
                    let v = val.read(eng, pc)?;
                    eng.set_operand(fu, v);
                    let ad = addr.read(eng, pc)? as u32;
                    eng.mem_store(op, ad, v, cycle)?;
                }
                TtaOp::CycSt { addr, val, fu, op } => {
                    let v = val.read(eng, pc)?;
                    eng.set_operand(fu, v);
                    let ad = addr.read(eng, pc)? as u32;
                    eng.mem_store(op, ad, v, cycle)?;
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::NextDS { slot, fu } => {
                    pc += 1;
                    cycle += 1;
                    let v = *eng.jit_tmp.get_unchecked(slot as usize);
                    eng.set_result(fu, v);
                }
                TtaOp::NextDSOp { slot, fu, src, f } => {
                    pc += 1;
                    cycle += 1;
                    let v = *eng.jit_tmp.get_unchecked(slot as usize);
                    eng.set_result(fu, v);
                    let v = src.read(eng, pc)?;
                    eng.set_operand(f, v);
                }
                TtaOp::WbA2Sc {
                    f,
                    d,
                    src,
                    fu,
                    slot,
                    op,
                } => {
                    let v = eng.result(f, pc)?;
                    eng.rf_set(d, v);
                    let v = src.read(eng, pc)?;
                    let a = eng.operand(fu);
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = op.eval_alu(a, v);
                }
                TtaOp::CycWbA2Sc {
                    f,
                    d,
                    src,
                    fu,
                    slot,
                    op,
                } => {
                    let v = eng.result(f, pc)?;
                    eng.rf_set(d, v);
                    let v = src.read(eng, pc)?;
                    let a = eng.operand(fu);
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = op.eval_alu(a, v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycA2Sc { src, fu, slot, op } => {
                    let v = src.read(eng, pc)?;
                    let a = eng.operand(fu);
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = op.eval_alu(a, v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycLdSc { src, slot, op } => {
                    let addr = src.read(eng, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = v;
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::MovOpWb { src, f, wf, d } => {
                    let v = src.read(eng, pc)?;
                    eng.set_operand(f, v);
                    let v = eng.result(wf, pc)?;
                    eng.rf_set(d, v);
                }
                TtaOp::CycMovOp { src, f } => {
                    let v = src.read(eng, pc)?;
                    eng.set_operand(f, v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycMovRf { src, d } => {
                    let v = src.read(eng, pc)?;
                    eng.rf_set(d, v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycTrigA1D { b, fu, op } => {
                    let v = b.read(eng, pc)?;
                    eng.set_result(fu, op.eval_alu(v, 0));
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycTrigA2D { b, fu, op } => {
                    let v = b.read(eng, pc)?;
                    let a = eng.operand(fu);
                    eng.set_result(fu, op.eval_alu(a, v));
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycTrigLdD { b, fu, op } => {
                    let addr = b.read(eng, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.set_result(fu, v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::CycLimm { k, v } => {
                    *eng.immregs.get_unchecked_mut(k as usize) = Some(v);
                    pc += 1;
                    cycle += 1;
                }
                TtaOp::Next2 => {
                    pc += 2;
                    cycle += 2;
                }
                TtaOp::A1DRf { s, fu, op } => {
                    let v = eng.rf_get(s);
                    eng.set_result(fu, op.eval_alu(v, 0));
                }
                TtaOp::A1DImm { v, fu, op } => eng.set_result(fu, op.eval_alu(v, 0)),
                TtaOp::A1DFu { s, fu, op } => {
                    let v = eng.result(s, pc)?;
                    eng.set_result(fu, op.eval_alu(v, 0));
                }
                TtaOp::A1DIr { k, fu, op } => {
                    let v = eng.immreg(k, pc)?;
                    eng.set_result(fu, op.eval_alu(v, 0));
                }
                TtaOp::A2DRf { s, fu, op } => {
                    let v = eng.rf_get(s);
                    let a = eng.operand(fu);
                    eng.set_result(fu, op.eval_alu(a, v));
                }
                TtaOp::A2DImm { v, fu, op } => {
                    let a = eng.operand(fu);
                    eng.set_result(fu, op.eval_alu(a, v));
                }
                TtaOp::A2DFu { s, fu, op } => {
                    let v = eng.result(s, pc)?;
                    let a = eng.operand(fu);
                    eng.set_result(fu, op.eval_alu(a, v));
                }
                TtaOp::A2DIr { k, fu, op } => {
                    let v = eng.immreg(k, pc)?;
                    let a = eng.operand(fu);
                    eng.set_result(fu, op.eval_alu(a, v));
                }
                TtaOp::LdDRf { s, fu, op } => {
                    let addr = eng.rf_get(s) as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.set_result(fu, v);
                }
                TtaOp::LdDImm { v, fu, op } => {
                    let v = eng.mem_load(op, v as u32, cycle)?;
                    eng.set_result(fu, v);
                }
                TtaOp::LdDFu { s, fu, op } => {
                    let addr = eng.result(s, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.set_result(fu, v);
                }
                TtaOp::LdDIr { k, fu, op } => {
                    let addr = eng.immreg(k, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.set_result(fu, v);
                }
                TtaOp::A1Sc { src, slot, op } => {
                    let v = src.read(eng, pc)?;
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = op.eval_alu(v, 0);
                }
                TtaOp::A2Sc { src, fu, slot, op } => {
                    let v = src.read(eng, pc)?;
                    let a = eng.operand(fu);
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = op.eval_alu(a, v);
                }
                TtaOp::LdSc { src, slot, op } => {
                    let addr = src.read(eng, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    *eng.jit_tmp.get_unchecked_mut(slot as usize) = v;
                }
                TtaOp::RfRf { s, d } => {
                    let v = eng.rf_get(s);
                    eng.rf_set(d, v);
                }
                TtaOp::RfImm { v, d } => eng.rf_set(d, v),
                TtaOp::RfFu { f, d } => {
                    let v = eng.result(f, pc)?;
                    eng.rf_set(d, v);
                }
                TtaOp::RfIr { k, d } => {
                    let v = eng.immreg(k, pc)?;
                    eng.rf_set(d, v);
                }
                TtaOp::OpRf { s, f } => {
                    let v = eng.rf_get(s);
                    eng.set_operand(f, v);
                }
                TtaOp::OpImm { v, f } => eng.set_operand(f, v),
                TtaOp::OpFu { s, f } => {
                    let v = eng.result(s, pc)?;
                    eng.set_operand(f, v);
                }
                TtaOp::OpIr { k, f } => {
                    let v = eng.immreg(k, pc)?;
                    eng.set_operand(f, v);
                }
                TtaOp::A1Rf { s, fu, op } => {
                    let v = eng.rf_get(s);
                    eng.launch_fast(fu, op, op.eval_alu(v, 0), cycle, pc)?;
                }
                TtaOp::A1Imm { v, fu, op } => {
                    eng.launch_fast(fu, op, op.eval_alu(v, 0), cycle, pc)?;
                }
                TtaOp::A1Fu { s, fu, op } => {
                    let v = eng.result(s, pc)?;
                    eng.launch_fast(fu, op, op.eval_alu(v, 0), cycle, pc)?;
                }
                TtaOp::A1Ir { k, fu, op } => {
                    let v = eng.immreg(k, pc)?;
                    eng.launch_fast(fu, op, op.eval_alu(v, 0), cycle, pc)?;
                }
                TtaOp::A2Rf { s, fu, op } => {
                    let v = eng.rf_get(s);
                    let a = eng.operand(fu);
                    eng.launch_fast(fu, op, op.eval_alu(a, v), cycle, pc)?;
                }
                TtaOp::A2Imm { v, fu, op } => {
                    let a = eng.operand(fu);
                    eng.launch_fast(fu, op, op.eval_alu(a, v), cycle, pc)?;
                }
                TtaOp::A2Fu { s, fu, op } => {
                    let v = eng.result(s, pc)?;
                    let a = eng.operand(fu);
                    eng.launch_fast(fu, op, op.eval_alu(a, v), cycle, pc)?;
                }
                TtaOp::A2Ir { k, fu, op } => {
                    let v = eng.immreg(k, pc)?;
                    let a = eng.operand(fu);
                    eng.launch_fast(fu, op, op.eval_alu(a, v), cycle, pc)?;
                }
                TtaOp::LdRf { s, fu, op } => {
                    let addr = eng.rf_get(s) as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.launch_fast(fu, op, v, cycle, pc)?;
                }
                TtaOp::LdImm { v, fu, op } => {
                    let v = eng.mem_load(op, v as u32, cycle)?;
                    eng.launch_fast(fu, op, v, cycle, pc)?;
                }
                TtaOp::LdFu { s, fu, op } => {
                    let addr = eng.result(s, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.launch_fast(fu, op, v, cycle, pc)?;
                }
                TtaOp::LdIr { k, fu, op } => {
                    let addr = eng.immreg(k, pc)? as u32;
                    let v = eng.mem_load(op, addr, cycle)?;
                    eng.launch_fast(fu, op, v, cycle, pc)?;
                }
                TtaOp::StRf { s, fu, op } => {
                    let addr = eng.rf_get(s) as u32;
                    let v = eng.operand(fu);
                    eng.mem_store(op, addr, v, cycle)?;
                }
                TtaOp::StImm { v: addr, fu, op } => {
                    let v = eng.operand(fu);
                    eng.mem_store(op, addr as u32, v, cycle)?;
                }
                TtaOp::StFu { s, fu, op } => {
                    let addr = eng.result(s, pc)? as u32;
                    let v = eng.operand(fu);
                    eng.mem_store(op, addr, v, cycle)?;
                }
                TtaOp::StIr { k, fu, op } => {
                    let addr = eng.immreg(k, pc)? as u32;
                    let v = eng.operand(fu);
                    eng.mem_store(op, addr, v, cycle)?;
                }
                TtaOp::Limm { k, v } => *eng.immregs.get_unchecked_mut(k as usize) = Some(v),
                TtaOp::Halt => halt = true,
                TtaOp::Jump { src } => {
                    let target = src.read(eng, pc)? as u32;
                    eng.take_jump(pc, target, pending_jump)?;
                }
                TtaOp::CJump { src, fu, nz } => {
                    let v = src.read(eng, pc)?;
                    if (v != 0) == nz {
                        let target = eng.operand(fu) as u32;
                        eng.take_jump(pc, target, pending_jump)?;
                    }
                }
                TtaOp::Phased { pc: ppc } => {
                    debug_assert_eq!(ppc, pc);
                    eng.exec_inst::<NoProfile, false>(&mut NoProfile, ppc, cycle, pending_jump)?;
                }
                TtaOp::PhasedCtrl { pc: ppc } => {
                    debug_assert_eq!(ppc, pc);
                    halt |=
                        eng.exec_inst::<NoProfile, true>(&mut NoProfile, ppc, cycle, pending_jump)?;
                }
            }
        }
    }
    eng.stats.accumulate(delta);
    Ok(halt)
}

/// Trigger kind of a compile-time trigger record.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TrigKind {
    Alu1,
    Alu2,
    Load,
    Store,
}

/// Compile-time record of one data trigger move.
#[derive(Debug, Clone, Copy)]
struct CTrig {
    src: Src,
    fu: u16,
    op: Opcode,
    kind: TrigKind,
}

impl CTrig {
    /// Dynamic launch through the completion wheel (the reference path).
    fn wheel_op(&self) -> TtaOp {
        let (fu, op) = (self.fu, self.op);
        match (self.kind, self.src) {
            (TrigKind::Alu1, Src::Rf(s)) => TtaOp::A1Rf { s, fu, op },
            (TrigKind::Alu1, Src::Imm(v)) => TtaOp::A1Imm { v, fu, op },
            (TrigKind::Alu1, Src::Fu(s)) => TtaOp::A1Fu { s, fu, op },
            (TrigKind::Alu1, Src::ImmReg(k)) => TtaOp::A1Ir { k, fu, op },
            (TrigKind::Alu2, Src::Rf(s)) => TtaOp::A2Rf { s, fu, op },
            (TrigKind::Alu2, Src::Imm(v)) => TtaOp::A2Imm { v, fu, op },
            (TrigKind::Alu2, Src::Fu(s)) => TtaOp::A2Fu { s, fu, op },
            (TrigKind::Alu2, Src::ImmReg(k)) => TtaOp::A2Ir { k, fu, op },
            (TrigKind::Load, Src::Rf(s)) => TtaOp::LdRf { s, fu, op },
            (TrigKind::Load, Src::Imm(v)) => TtaOp::LdImm { v, fu, op },
            (TrigKind::Load, Src::Fu(s)) => TtaOp::LdFu { s, fu, op },
            (TrigKind::Load, Src::ImmReg(k)) => TtaOp::LdIr { k, fu, op },
            (TrigKind::Store, Src::Rf(s)) => TtaOp::StRf { s, fu, op },
            (TrigKind::Store, Src::Imm(v)) => TtaOp::StImm { v, fu, op },
            (TrigKind::Store, Src::Fu(s)) => TtaOp::StFu { s, fu, op },
            (TrigKind::Store, Src::ImmReg(k)) => TtaOp::StIr { k, fu, op },
        }
    }

    /// Statically scheduled launch: place the result in the port now
    /// (sound only when no one reads the port before the landing cycle).
    fn direct_op(&self) -> TtaOp {
        let (fu, op) = (self.fu, self.op);
        match (self.kind, self.src) {
            (TrigKind::Alu1, Src::Rf(s)) => TtaOp::A1DRf { s, fu, op },
            (TrigKind::Alu1, Src::Imm(v)) => TtaOp::A1DImm { v, fu, op },
            (TrigKind::Alu1, Src::Fu(s)) => TtaOp::A1DFu { s, fu, op },
            (TrigKind::Alu1, Src::ImmReg(k)) => TtaOp::A1DIr { k, fu, op },
            (TrigKind::Alu2, Src::Rf(s)) => TtaOp::A2DRf { s, fu, op },
            (TrigKind::Alu2, Src::Imm(v)) => TtaOp::A2DImm { v, fu, op },
            (TrigKind::Alu2, Src::Fu(s)) => TtaOp::A2DFu { s, fu, op },
            (TrigKind::Alu2, Src::ImmReg(k)) => TtaOp::A2DIr { k, fu, op },
            (TrigKind::Load, Src::Rf(s)) => TtaOp::LdDRf { s, fu, op },
            (TrigKind::Load, Src::Imm(v)) => TtaOp::LdDImm { v, fu, op },
            (TrigKind::Load, Src::Fu(s)) => TtaOp::LdDFu { s, fu, op },
            (TrigKind::Load, Src::ImmReg(k)) => TtaOp::LdDIr { k, fu, op },
            (TrigKind::Store, _) => unreachable!("stores produce no result"),
        }
    }

    /// Statically scheduled launch through a scratch slot (the port is
    /// still read before the landing cycle, so the old value must stay).
    fn scratch_op(&self, slot: u16) -> TtaOp {
        match self.kind {
            TrigKind::Alu1 => TtaOp::A1Sc {
                src: self.src,
                slot,
                op: self.op,
            },
            TrigKind::Alu2 => TtaOp::A2Sc {
                src: self.src,
                fu: self.fu,
                slot,
                op: self.op,
            },
            TrigKind::Load => TtaOp::LdSc {
                src: self.src,
                slot,
                op: self.op,
            },
            TrigKind::Store => unreachable!("stores produce no result"),
        }
    }
}

/// Compile-time record of one instruction (= one cycle) of a superblock.
#[derive(Debug, Default)]
struct CInst {
    /// Flat move thunks (identical in every emitted variant).
    moves: Vec<TtaOp>,
    /// Data triggers, form decided per variant by the static scheduler.
    trigs: Vec<CTrig>,
    /// Control thunks (terminal instruction only).
    ctrl: Vec<TtaOp>,
    limm: Option<TtaOp>,
    /// Same-cycle hazard: run the whole instruction phase-ordered.
    phased: Option<TtaOp>,
}

/// One launch found while building a block: trigger `ti` of instruction
/// `ci` starts `fu`'s pipeline at relative cycle `ci`, landing at `land`.
#[derive(Debug, Clone, Copy)]
struct Launch {
    ci: u32,
    ti: u32,
    fu: u16,
    land: u32,
}

/// Launch form chosen by the static completion scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Form {
    Wheel,
    Direct,
    Scratch(u16),
}

/// Emit one executable variant of a block. `assume_clean` encodes the
/// fast variant's precondition (no in-flight completion at entry):
/// every intra-block landing may then be scheduled statically and no
/// cycle delivers from the wheel. The conservative variant keeps wheel
/// semantics for the first three cycles (entry in-flight lands there)
/// and for every recorded in-block wheel landing. `wheel_only` disables
/// static scheduling entirely (phased instructions launch dynamically,
/// and same-unit landing collisions must fault through the wheel).
fn emit_tta_variant(
    cinsts: &[CInst],
    reads: &[(u32, u16)],
    launches: &[Launch],
    len: u32,
    assume_clean: bool,
    wheel_only: bool,
) -> (Box<[TtaOp]>, u16) {
    let mut forms: Vec<Vec<Form>> = cinsts
        .iter()
        .map(|ci| vec![Form::Wheel; ci.trigs.len()])
        .collect();
    let mut delivers: Vec<Vec<(u16, u16)>> = vec![Vec::new(); len as usize];
    let mut wheel_lands = vec![false; len as usize];
    let mut scratch: u16 = 0;
    for l in launches {
        if wheel_only {
            if l.land < len {
                wheel_lands[l.land as usize] = true;
            }
            continue;
        }
        let eligible = l.land < len && (assume_clean || l.ci >= 3);
        if !eligible {
            if l.land < len {
                wheel_lands[l.land as usize] = true;
            }
            continue;
        }
        // The port holds its previous value until the landing cycle; a
        // read in between (including the launch cycle itself — thunks
        // execute in emission order, not phase order) keeps that value
        // live, so the completion must park in a scratch slot.
        let port_read = reads
            .iter()
            .any(|&(u, f)| f == l.fu && u >= l.ci && u < l.land);
        forms[l.ci as usize][l.ti as usize] = if port_read {
            let slot = scratch;
            scratch += 1;
            delivers[l.land as usize].push((slot, l.fu));
            Form::Scratch(slot)
        } else {
            Form::Direct
        };
    }

    let mut ops: Vec<TtaOp> = Vec::new();
    for c in 0..len {
        if c > 0 {
            // Cycles that can still see a wheel delivery: the first
            // three (entry in-flight) in conservative variants, every
            // cycle in wheel-only blocks, plus recorded wheel landings.
            let dirty = wheel_lands[c as usize] || (!assume_clean && (wheel_only || c <= 3));
            ops.push(if dirty { TtaOp::NextD } else { TtaOp::Next });
        }
        for &(slot, fu) in &delivers[c as usize] {
            ops.push(TtaOp::DeliverS { slot, fu });
        }
        let inst = &cinsts[c as usize];
        if let Some(p) = inst.phased {
            ops.push(p);
            continue;
        }
        ops.extend_from_slice(&inst.moves);
        for (ti, trig) in inst.trigs.iter().enumerate() {
            ops.push(match forms[c as usize][ti] {
                Form::Wheel => trig.wheel_op(),
                Form::Direct => trig.direct_op(),
                Form::Scratch(slot) => trig.scratch_op(slot),
            });
        }
        ops.extend_from_slice(&inst.ctrl);
        if let Some(l) = inst.limm {
            ops.push(l);
        }
    }
    (ops.into_boxed_slice(), scratch)
}

/// Peephole fusion over an emitted thunk stream. Dispatch cost (one
/// indirect branch per thunk) dominates the compiled tier's runtime, so
/// the adjacent shapes that dominate the dynamic digram histogram are
/// folded into single thunks. Every fused thunk executes exactly the
/// component semantics in the original emission order, so the rewrite is
/// behaviour-preserving by construction; the only reorderings are
/// operand-port writes relative to reads that cannot observe them
/// (trigger sources never read operand ports).
///
/// Greedy longest-match, left to right. A pure [`TtaOp::Next`] followed
/// by [`TtaOp::DeliverS`] is reserved for the `NextDS*` rules (never
/// absorbed into the preceding cycle), because fusing the boundary into
/// the delivery covers three thunks instead of two. [`TtaOp::NextD`] is
/// never fused (it delivers from the wheel).
fn fuse_tta(ops: &[TtaOp]) -> Box<[TtaOp]> {
    fn op_move(op: TtaOp) -> Option<(Src, u16)> {
        Some(match op {
            TtaOp::OpRf { s, f } => (Src::Rf(s), f),
            TtaOp::OpImm { v, f } => (Src::Imm(v), f),
            TtaOp::OpFu { s, f } => (Src::Fu(s), f),
            TtaOp::OpIr { k, f } => (Src::ImmReg(k), f),
            _ => return None,
        })
    }
    fn rf_move(op: TtaOp) -> Option<(Src, u32)> {
        Some(match op {
            TtaOp::RfRf { s, d } => (Src::Rf(s), d),
            TtaOp::RfImm { v, d } => (Src::Imm(v), d),
            TtaOp::RfFu { f, d } => (Src::Fu(f), d),
            TtaOp::RfIr { k, d } => (Src::ImmReg(k), d),
            _ => return None,
        })
    }
    /// Fuse the operand move `(a, f)` with a following trigger on the
    /// same unit (two-input ALU forms and stores; one-input forms don't
    /// read the operand port written by the move).
    fn pair(a: Src, f: u16, trig: TtaOp) -> Option<TtaOp> {
        let (b, fu, op, wheel, store) = match trig {
            TtaOp::A2DRf { s, fu, op } => (Src::Rf(s), fu, op, false, false),
            TtaOp::A2DImm { v, fu, op } => (Src::Imm(v), fu, op, false, false),
            TtaOp::A2DFu { s, fu, op } => (Src::Fu(s), fu, op, false, false),
            TtaOp::A2DIr { k, fu, op } => (Src::ImmReg(k), fu, op, false, false),
            TtaOp::A2Rf { s, fu, op } => (Src::Rf(s), fu, op, true, false),
            TtaOp::A2Imm { v, fu, op } => (Src::Imm(v), fu, op, true, false),
            TtaOp::A2Fu { s, fu, op } => (Src::Fu(s), fu, op, true, false),
            TtaOp::A2Ir { k, fu, op } => (Src::ImmReg(k), fu, op, true, false),
            TtaOp::StRf { s, fu, op } => (Src::Rf(s), fu, op, false, true),
            TtaOp::StImm { v, fu, op } => (Src::Imm(v), fu, op, false, true),
            TtaOp::StFu { s, fu, op } => (Src::Fu(s), fu, op, false, true),
            TtaOp::StIr { k, fu, op } => (Src::ImmReg(k), fu, op, false, true),
            _ => return None,
        };
        if fu != f {
            return None;
        }
        Some(if store {
            TtaOp::PairSt {
                addr: b,
                val: a,
                fu,
                op,
            }
        } else if wheel {
            TtaOp::PairA2W { a, b, fu, op }
        } else {
            TtaOp::PairA2D { a, b, fu, op }
        })
    }
    /// Lone direct-launch trigger as a whole cycle.
    fn cyc_trig(trig: TtaOp) -> Option<TtaOp> {
        Some(match trig {
            TtaOp::A1DRf { s, fu, op } => TtaOp::CycTrigA1D {
                b: Src::Rf(s),
                fu,
                op,
            },
            TtaOp::A1DImm { v, fu, op } => TtaOp::CycTrigA1D {
                b: Src::Imm(v),
                fu,
                op,
            },
            TtaOp::A1DFu { s, fu, op } => TtaOp::CycTrigA1D {
                b: Src::Fu(s),
                fu,
                op,
            },
            TtaOp::A1DIr { k, fu, op } => TtaOp::CycTrigA1D {
                b: Src::ImmReg(k),
                fu,
                op,
            },
            TtaOp::A2DRf { s, fu, op } => TtaOp::CycTrigA2D {
                b: Src::Rf(s),
                fu,
                op,
            },
            TtaOp::A2DImm { v, fu, op } => TtaOp::CycTrigA2D {
                b: Src::Imm(v),
                fu,
                op,
            },
            TtaOp::A2DFu { s, fu, op } => TtaOp::CycTrigA2D {
                b: Src::Fu(s),
                fu,
                op,
            },
            TtaOp::A2DIr { k, fu, op } => TtaOp::CycTrigA2D {
                b: Src::ImmReg(k),
                fu,
                op,
            },
            TtaOp::LdDRf { s, fu, op } => TtaOp::CycTrigLdD {
                b: Src::Rf(s),
                fu,
                op,
            },
            TtaOp::LdDImm { v, fu, op } => TtaOp::CycTrigLdD {
                b: Src::Imm(v),
                fu,
                op,
            },
            TtaOp::LdDFu { s, fu, op } => TtaOp::CycTrigLdD {
                b: Src::Fu(s),
                fu,
                op,
            },
            TtaOp::LdDIr { k, fu, op } => TtaOp::CycTrigLdD {
                b: Src::ImmReg(k),
                fu,
                op,
            },
            _ => return None,
        })
    }
    fn absorb_next(p: TtaOp) -> TtaOp {
        match p {
            TtaOp::PairA2D { a, b, fu, op } => TtaOp::CycA2D { a, b, fu, op },
            TtaOp::PairA2W { a, b, fu, op } => TtaOp::CycA2W { a, b, fu, op },
            TtaOp::PairSt { addr, val, fu, op } => TtaOp::CycSt { addr, val, fu, op },
            TtaOp::WbA2Sc {
                f,
                d,
                src,
                fu,
                slot,
                op,
            } => TtaOp::CycWbA2Sc {
                f,
                d,
                src,
                fu,
                slot,
                op,
            },
            TtaOp::A2Sc { src, fu, slot, op } => TtaOp::CycA2Sc { src, fu, slot, op },
            TtaOp::LdSc { src, slot, op } => TtaOp::CycLdSc { src, slot, op },
            TtaOp::Limm { k, v } => TtaOp::CycLimm { k, v },
            TtaOp::Next => TtaOp::Next2,
            _ => unreachable!("absorb_next only sees fusable heads"),
        }
    }

    let mut out: Vec<TtaOp> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let o0 = ops[i];
        let o1 = ops.get(i + 1).copied();
        // A pure boundary whose successor delivers a scratch slot is
        // reserved: `takes_next` refuses it so the NextDS* rules below
        // get the longer (three-thunk) match when the scan reaches it.
        let next_at = |j: usize| {
            matches!(ops.get(j), Some(TtaOp::Next))
                && !matches!(ops.get(j + 1), Some(TtaOp::DeliverS { .. }))
        };

        // Boundary + delivery (+ operand move of the new cycle).
        if let (TtaOp::Next, Some(TtaOp::DeliverS { slot, fu })) = (o0, o1) {
            if let Some((src, f)) = ops.get(i + 2).copied().and_then(op_move) {
                out.push(TtaOp::NextDSOp { slot, fu, src, f });
                i += 3;
            } else {
                out.push(TtaOp::NextDS { slot, fu });
                i += 2;
            }
            continue;
        }
        // Operand move + same-unit trigger, or + write-back.
        if let Some((a, f)) = op_move(o0) {
            if let Some(p) = o1.and_then(|t| pair(a, f, t)) {
                if next_at(i + 2) {
                    out.push(absorb_next(p));
                    i += 3;
                } else {
                    out.push(p);
                    i += 2;
                }
                continue;
            }
            if let Some(TtaOp::RfFu { f: wf, d }) = o1 {
                out.push(TtaOp::MovOpWb { src: a, f, wf, d });
                i += 2;
                continue;
            }
        }
        // Write-back + scratch launch (the loop-carried accumulate).
        if let (TtaOp::RfFu { f, d }, Some(TtaOp::A2Sc { src, fu, slot, op })) = (o0, o1) {
            let p = TtaOp::WbA2Sc {
                f,
                d,
                src,
                fu,
                slot,
                op,
            };
            if next_at(i + 2) {
                out.push(absorb_next(p));
                i += 3;
            } else {
                out.push(p);
                i += 2;
            }
            continue;
        }
        // Single head + pure boundary → whole-cycle thunk.
        if next_at(i + 1) {
            let fused = match o0 {
                TtaOp::A2Sc { .. } | TtaOp::LdSc { .. } | TtaOp::Limm { .. } | TtaOp::Next => {
                    Some(absorb_next(o0))
                }
                _ => op_move(o0)
                    .map(|(src, f)| TtaOp::CycMovOp { src, f })
                    .or_else(|| rf_move(o0).map(|(src, d)| TtaOp::CycMovRf { src, d }))
                    .or_else(|| cyc_trig(o0)),
            };
            if let Some(p) = fused {
                out.push(p);
                i += 2;
                continue;
            }
        }
        out.push(o0);
        i += 1;
    }
    out.into_boxed_slice()
}

/// Compile the superblock `[pc0, pc0 + len)` into a chain of resolved
/// thunks. Each decoded move is matched exactly once, here; per-move
/// statistics are folded into a static per-block delta (taken branches
/// stay dynamic, and hazardous instructions fall back to the reference
/// phase order with their statistics excluded from the delta). Every
/// emitted register/unit/limm-register index is asserted against `dims`,
/// which licenses the unchecked accesses of [`exec_tta_block`].
///
/// Completions are scheduled statically where the block structure allows
/// (see [`emit_tta_variant`]); the block carries two emitted variants
/// and picks per entry: the fast one when no completion is in flight,
/// the conservative one otherwise.
fn compile_tta_block(dec: &Decoded, dims: Dims, pc0: u32, len: u32) -> TtaBlockFn {
    let mut cinsts: Vec<CInst> = Vec::with_capacity(len as usize);
    let mut delta = SimStats::default();
    // Result-port reads as (relative cycle, unit) and pipeline launches,
    // for the static completion scheduler.
    let mut reads: Vec<(u32, u16)> = Vec::new();
    let mut launches: Vec<Launch> = Vec::new();
    let mut any_phased = false;
    for i in 0..len {
        let pc = pc0 + i;
        let terminal = i + 1 == len;
        let inst = dec.insts[pc as usize];
        let srcs = &dec.srcs[inst.srcs.0 as usize..inst.srcs.1 as usize];
        let writes = &dec.writes[inst.writes.0 as usize..inst.writes.1 as usize];
        let trigs = &dec.trigs[inst.trigs.0 as usize..inst.trigs.1 as usize];

        let mut ci = CInst::default();
        let mut d = SimStats::default();
        d.instructions += 1;
        // Registers written so far by this instruction (in emission
        // order). The reference engine samples every source before any
        // write applies; per-move thunks apply writes as they go, so any
        // read of an already-written register is a same-cycle hazard.
        let mut written: Vec<u32> = Vec::new();
        let mut hazard = false;
        // Thunks apply register writes in emission order, so a source is
        // hazardous iff its register was written by a move emitted before
        // it: for write moves that is any earlier write, for triggers
        // (emitted after every write) any write of the instruction.
        let mut resolve = |s: DecSrc, written: &[u32], d: &mut SimStats, hazard: &mut bool| match s
        {
            DecSrc::Rf(r) => {
                assert!((r as usize) < dims.rf, "decoded register out of range");
                d.rf_reads += 1;
                if written.contains(&r) {
                    *hazard = true;
                }
                Src::Rf(r)
            }
            DecSrc::FuResult(f) => {
                assert!((f as usize) < dims.fus, "decoded unit out of range");
                d.bypass_reads += 1;
                reads.push((i, f));
                Src::Fu(f)
            }
            DecSrc::Imm(v) => Src::Imm(v),
            DecSrc::ImmReg(k) => {
                assert!(
                    (k as usize) < dims.immregs,
                    "decoded limm register out of range"
                );
                Src::ImmReg(k)
            }
        };
        let check_fu = |f: u16| {
            assert!((f as usize) < dims.fus, "decoded unit out of range");
            f
        };

        for &(vi, w) in writes {
            d.payload += 1;
            let s = resolve(srcs[vi as usize], &written, &mut d, &mut hazard);
            match w {
                DecWrite::Rf(r) => {
                    assert!((r as usize) < dims.rf, "decoded register out of range");
                    d.rf_writes += 1;
                    written.push(r);
                    ci.moves.push(match s {
                        Src::Rf(si) => TtaOp::RfRf { s: si, d: r },
                        Src::Imm(v) => TtaOp::RfImm { v, d: r },
                        Src::Fu(f) => TtaOp::RfFu { f, d: r },
                        Src::ImmReg(k) => TtaOp::RfIr { k, d: r },
                    });
                }
                DecWrite::FuOperand(f) => {
                    let f = check_fu(f);
                    ci.moves.push(match s {
                        Src::Rf(si) => TtaOp::OpRf { s: si, f },
                        Src::Imm(v) => TtaOp::OpImm { v, f },
                        Src::Fu(sf) => TtaOp::OpFu { s: sf, f },
                        Src::ImmReg(k) => TtaOp::OpIr { k, f },
                    });
                }
            }
        }
        for trig in trigs {
            d.payload += 1;
            let s = resolve(srcs[trig.vi as usize], &written, &mut d, &mut hazard);
            let op = trig.op;
            let fu = check_fu(trig.fu);
            match op.class() {
                OpClass::Alu | OpClass::Lsu => {
                    let kind = match op.class() {
                        OpClass::Alu if op.num_inputs() == 1 => TrigKind::Alu1,
                        OpClass::Alu => TrigKind::Alu2,
                        _ if op.is_load() => TrigKind::Load,
                        _ => TrigKind::Store,
                    };
                    match kind {
                        TrigKind::Load => d.loads += 1,
                        TrigKind::Store => d.stores += 1,
                        _ => {}
                    }
                    if kind != TrigKind::Store {
                        launches.push(Launch {
                            ci: i,
                            ti: ci.trigs.len() as u32,
                            fu,
                            land: i + op.latency(),
                        });
                    }
                    ci.trigs.push(CTrig {
                        src: s,
                        fu,
                        op,
                        kind,
                    });
                }
                OpClass::Ctrl => ci.ctrl.push(match op {
                    Opcode::Halt => TtaOp::Halt,
                    Opcode::Jump => TtaOp::Jump { src: s },
                    Opcode::CJnz => TtaOp::CJump {
                        src: s,
                        fu,
                        nz: true,
                    },
                    Opcode::CJz => TtaOp::CJump {
                        src: s,
                        fu,
                        nz: false,
                    },
                    _ => unreachable!("non-transfer control opcode"),
                }),
            }
        }
        if let Some((k, v)) = inst.limm {
            assert!(
                (k as usize) < dims.immregs,
                "decoded limm register out of range"
            );
            d.limms += 1;
            ci.limm = Some(TtaOp::Limm { k, v });
        }

        if hazard {
            // Reference phase order for this one instruction; its stats
            // are charged live by `exec_inst`, so keep them out of the
            // static delta. Its launches and port reads are dynamic, so
            // the whole block must keep wheel semantics.
            any_phased = true;
            ci.phased = Some(if terminal {
                TtaOp::PhasedCtrl { pc }
            } else {
                TtaOp::Phased { pc }
            });
        } else {
            delta.accumulate(&d);
        }
        cinsts.push(ci);
    }
    // Drop launches of phased instructions (they run through the wheel
    // dynamically) and detect same-unit collisions: two launches of one
    // unit in the same cycle, or landing in the same in-block cycle,
    // must fault (or interleave) exactly as the reference wheel does.
    launches.retain(|l| cinsts[l.ci as usize].phased.is_none());
    let collision = launches.iter().enumerate().any(|(a, la)| {
        launches[..a]
            .iter()
            .any(|lb| lb.fu == la.fu && (lb.ci == la.ci || (lb.land == la.land && la.land < len)))
    });
    let wheel_only = any_phased || collision;

    let (cons_ops, cons_scratch) =
        emit_tta_variant(&cinsts, &reads, &launches, len, false, wheel_only);
    let cons_ops = fuse_tta(&cons_ops);
    if wheel_only {
        return Box::new(move |eng, cycle0, pending_jump| {
            exec_tta_block(
                &cons_ops,
                &delta,
                dims,
                cons_scratch,
                true,
                eng,
                pc0,
                cycle0,
                pending_jump,
            )
        });
    }
    let (fast_ops, fast_scratch) = emit_tta_variant(&cinsts, &reads, &launches, len, true, false);
    let fast_ops = fuse_tta(&fast_ops);
    Box::new(move |eng, cycle0, pending_jump| {
        if eng.wheel_is_empty() {
            exec_tta_block(
                &fast_ops,
                &delta,
                dims,
                fast_scratch,
                false,
                eng,
                pc0,
                cycle0,
                pending_jump,
            )
        } else {
            exec_tta_block(
                &cons_ops,
                &delta,
                dims,
                cons_scratch,
                true,
                eng,
                pc0,
                cycle0,
                pending_jump,
            )
        }
    })
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink. `tier`, if
/// present, is the promotion table of the compiled tier — consulted only
/// on unclamped block entries and only for passive sinks.
pub(crate) fn run_tta_with<S: ProfileSink>(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&TtaTiers>,
    io: Option<IoCtx<'_>>,
) -> Result<SimResult, SimError> {
    let mut tc = TierCounts::default();
    let r = run_tta_inner(m, program, memory, fuel, sink, tier, io, &mut tc);
    tc.flush();
    r
}

#[allow(clippy::too_many_arguments)]
fn run_tta_inner<S: ProfileSink>(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&TtaTiers>,
    io: Option<IoCtx<'_>>,
    tc: &mut TierCounts,
) -> Result<SimResult, SimError> {
    let rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    let blocks = BlockMap::of_tta(program);
    let mut eng = TtaEngine {
        m,
        dec: &dec,
        fus: vec![FuSim::default(); m.funits.len()],
        wheel: Default::default(),
        rf,
        immregs: vec![None; m.limm.imm_regs as usize],
        values: vec![0; dec.max_moves],
        jit_tmp: Vec::new(),
        memory,
        stats: SimStats::default(),
        io,
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;
    // Checkpointed context of the interrupted code while a handler runs.
    let mut shadow: Option<TtaShadow> = None;

    loop {
        // Superblock entry: the only place fuel, the pc bound and the
        // delay-slot budget are examined.
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= dec.insts.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        // I/O boundary: latch lines and either trap into the handler
        // (re-running the entry checks there) or learn how many cycles
        // may run before the next observable boundary. `u64::MAX` (the
        // io-less constant) clamps nothing below.
        let win =
            match eng.io_boundary(&mut pc, &mut cycle, fuel, &mut pending_jump, &mut shadow)? {
                Some(win) => win,
                None => continue,
            };
        let full = blocks.run_len(pc) as u64;

        // Tier-2 dispatch: an unclamped entry (no pending jump, fuel
        // covers the whole run) of a hot block executes compiled; the
        // fall-through window of a taken jump executes as a compiled
        // delay segment; a clamped entry of a compiled pc falls back
        // to interpreted.
        if S::PASSIVE {
            if let Some(tab) = tier {
                match pending_jump {
                    None if fuel - cycle >= full && win >= full => {
                        let block = match tab.main.entry(pc) {
                            TierEntry::Compiled(b) => Some(b),
                            TierEntry::Promote => {
                                tc.promotions += 1;
                                let dims = Dims {
                                    rf: eng.rf.vals.len(),
                                    fus: eng.fus.len(),
                                    immregs: eng.immregs.len(),
                                };
                                tab.main
                                    .install(pc, compile_tta_block(&dec, dims, pc, full as u32));
                                tab.main.get(pc)
                            }
                            TierEntry::Cold => None,
                        };
                        if let Some(b) = block {
                            tc.entries += 1;
                            let halt = b(&mut eng, cycle, &mut pending_jump)?;
                            pc += full as u32 - 1;
                            cycle += full;
                            if halt {
                                if eng.iret(&mut pc, &mut cycle, &mut pending_jump, &mut shadow)? {
                                    continue;
                                }
                                return eng.finish(cycle);
                            }
                            match pending_jump.take() {
                                Some((0, target)) => pc = target,
                                Some((n, target)) => {
                                    pending_jump = Some((n - 1, target));
                                    pc += 1;
                                }
                                None => pc += 1,
                            }
                            continue;
                        }
                    }
                    Some((k, target)) => {
                        // Delay-slot window: min(k + 1, full) instructions
                        // execute on the fall-through path, then the
                        // redirect (or the run's own terminal, whose
                        // nested control transfer faults identically in
                        // both tiers).
                        let dlen = (k as u64 + 1).min(full);
                        if fuel - cycle >= dlen && win >= dlen {
                            let seg = match tab.delay.entry(pc) {
                                TierEntry::Compiled(s) => Some(s),
                                TierEntry::Promote => {
                                    tc.promotions += 1;
                                    let dims = Dims {
                                        rf: eng.rf.vals.len(),
                                        fus: eng.fus.len(),
                                        immregs: eng.immregs.len(),
                                    };
                                    let b = compile_tta_block(&dec, dims, pc, dlen as u32);
                                    tab.delay.install(pc, (dlen as u32, b));
                                    tab.delay.get(pc)
                                }
                                TierEntry::Cold => None,
                            };
                            // A pc can be entered with different residual
                            // delay budgets; only the length the segment
                            // was compiled for may run it.
                            if let Some(b) = seg.filter(|s| s.0 as u64 == dlen).map(|s| &s.1) {
                                tc.entries += 1;
                                let halt = b(&mut eng, cycle, &mut pending_jump)?;
                                cycle += dlen;
                                if halt {
                                    if eng.iret(
                                        &mut pc,
                                        &mut cycle,
                                        &mut pending_jump,
                                        &mut shadow,
                                    )? {
                                        continue;
                                    }
                                    return eng.finish(cycle);
                                }
                                if dlen < full {
                                    // Pure delay window: ends exactly at
                                    // the redirect.
                                    debug_assert_eq!(dlen, k as u64 + 1);
                                    pending_jump = None;
                                    pc = target;
                                } else {
                                    // The whole run fits in the window:
                                    // its terminal ran; mirror the
                                    // interpreted bookkeeping.
                                    let k2 = k - (dlen as u32 - 1);
                                    if k2 == 0 {
                                        pending_jump = None;
                                        pc = target;
                                    } else {
                                        pending_jump = Some((k2 - 1, target));
                                        pc += dlen as u32;
                                    }
                                }
                                continue;
                            }
                            tc.fallbacks += 1;
                        } else if tab.delay.get(pc).is_some() {
                            tc.fallbacks += 1;
                        }
                    }
                    None => {
                        if tab.main.get(pc).is_some() {
                            tc.fallbacks += 1;
                        }
                    }
                }
            }
        }

        let mut len = full;
        if let Some((k, _)) = pending_jump {
            // k delay slots remain, then the redirect: at most k + 1 more
            // instructions execute on the fall-through path.
            len = len.min(k as u64 + 1);
        }
        len = len.min(fuel - cycle).min(win);
        // Only the run's terminal instruction can carry control triggers,
        // and it is part of this dispatch iff nothing clamped `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, cycle, &mut pending_jump)?;
            pc += 1;
            cycle += 1;
        }
        // The per-cycle engine decrements the delay-slot count at each
        // cycle's end; batch the `straight` decrements here. A redirect
        // inside the straight portion (straight == k + 1) can only happen
        // when the terminal instruction was clamped away.
        if let Some((k, target)) = pending_jump {
            if k as u64 + 1 == straight {
                pc = target;
                pending_jump = None;
            } else {
                pending_jump = Some((k - straight as u32, target));
            }
        }

        if terminal {
            let halt = eng.step::<S, true>(sink, pc, cycle, &mut pending_jump)?;
            cycle += 1;
            if halt {
                if eng.iret(&mut pc, &mut cycle, &mut pending_jump, &mut shadow)? {
                    continue;
                }
                return eng.finish(cycle);
            }
            // Control transfer bookkeeping for the terminal cycle.
            match pending_jump.take() {
                Some((0, target)) => pc = target,
                Some((n, target)) => {
                    pending_jump = Some((n - 1, target));
                    pc += 1;
                }
                None => pc += 1,
            }
        }
    }
}

/// Convenience wrapper asserting the LSU exists and the program is
/// non-empty; mirrors [`run_tta`] with the default fuel.
pub fn run_tta_default(
    m: &Machine,
    program: &[TtaInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    debug_assert!(m.funits.iter().any(|f| f.kind == FuKind::Lsu));
    run_tta(m, program, memory, DEFAULT_FUEL)
}
