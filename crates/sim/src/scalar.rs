//! In-order scalar pipeline simulator (the MicroBlaze-like baselines).
//!
//! Functionally the program executes sequentially; the timing model charges
//! the pipeline costs of the configured [`tta_model::ScalarPipeline`]: one base cycle
//! per instruction, dependence stalls when a consumer issues before its
//! producer's functional latency has elapsed (plus one extra cycle when the
//! pipeline lacks forwarding), the taken-branch refill penalty, and one
//! cycle per `imm` prefix.
//!
//! Instructions are predecoded once per run (register references resolved
//! to flat indices, the register scoreboard stored alongside), so the
//! per-instruction loop performs no heap allocation. Dispatch is
//! fused-block: the fuel and pc bounds checks run once per straight-line
//! run, and interior instructions execute in a monomorphisation without
//! the control arm (the scalar model has no delay slots, so block entry
//! needs no delay-slot clamp — see `crate::tta` for the shared dispatch
//! structure). Hot runs are promoted into chains of resolved thunks
//! exactly as in the TTA engine (DESIGN.md §14); dependence stalls and
//! branch penalties stay fully dynamic in the compiled tier — only the
//! per-instruction statistics that are static are batched.

use crate::profile::{finish_scalar, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{DecOpSrc, FlatRf, IoCtx, NO_DST};
use crate::tier::TierCounts;
use tta_isa::{BlockMap, Operation, ScalarInst, TierEntry, TierTable, RETVAL_ADDR};
use tta_model::io::MMIO_BASE;
use tta_model::{mem, Machine, OpClass, Opcode, ScalarPipeline};

/// Maximum simulated instructions before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// One predecoded scalar instruction.
#[derive(Debug, Clone, Copy)]
enum DecInst {
    ImmPrefix,
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
    },
}

fn decode(rf: &FlatRf, program: &[ScalarInst]) -> Vec<DecInst> {
    program
        .iter()
        .map(|inst| match inst {
            ScalarInst::ImmPrefix => DecInst::ImmPrefix,
            ScalarInst::Op(Operation { op, dst, a, b, .. }) => DecInst::Op {
                op: *op,
                a: DecOpSrc::decode(rf, *a),
                b: DecOpSrc::decode(rf, *b),
                dst: dst.map_or(NO_DST, |d| rf.flat(d)),
            },
        })
        .collect()
}

/// Run a scalar program. The compiled superblock tier is configured from
/// the environment with a fresh per-run promotion table; share one across
/// runs with [`crate::run_with_tiers`].
pub fn run_scalar(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    let cfg = tta_isa::TierConfig::from_env();
    if cfg.enabled {
        let tier = TierTable::new(program.len(), cfg.threshold);
        run_scalar_with(m, program, memory, fuel, &mut NoProfile, Some(&tier), None)
    } else {
        run_scalar_with(m, program, memory, fuel, &mut NoProfile, None, None)
    }
}

/// Like [`run_scalar`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_scalar_traced(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_scalar_with(m, program, memory, fuel, &mut sink, None, None)?;
    Ok((r, sink.trace))
}

/// Like [`run_scalar`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_scalar_profiled(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_scalar_with(m, program, memory, fuel, &mut sink, None, None)?;
    let mut p = finish_scalar(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Control outcome of one scalar step.
pub(crate) enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// Taken branch (penalty already charged by the step).
    Jump(u32),
    /// The core halted; the caller builds the [`SimResult`].
    Halt,
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop and by compiled blocks.
pub(crate) struct ScalarEngine<'a> {
    pipe: ScalarPipeline,
    dec: &'a [DecInst],
    rf: FlatRf,
    /// Cycle at which each register's latest value becomes readable.
    ready: Vec<u64>,
    /// Extra scoreboard cycle when the pipeline lacks forwarding.
    extra: u64,
    memory: Vec<u8>,
    stats: SimStats,
    io: Option<IoCtx<'a>>,
}

/// Architectural state saved on interrupt entry and restored on return.
/// The scalar core has no exposed in-flight state to drain: the trap
/// shadows the register file and the scoreboard, and the handler issues
/// against the live scoreboard (interlocking deterministically with
/// whatever loads the main program left in flight).
struct ScalarShadow {
    pc: u32,
    rf: Vec<i32>,
    ready: Vec<u64>,
}

impl ScalarEngine<'_> {
    /// One instruction at `pc`, advancing `cycle` by its issue + stall
    /// cost. With `CTRL = false` the caller guarantees (via the block map)
    /// a non-control instruction and the control arm is compiled out.
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: &mut u64,
    ) -> Result<Flow, SimError> {
        let inst = self.dec[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        match inst {
            DecInst::ImmPrefix => {
                // One fetch/issue cycle; the following instruction carries
                // the full immediate already.
                *cycle += 1;
                Ok(Flow::Next)
            }
            DecInst::Op { op, a, b, dst } => {
                self.stats.payload += 1;
                // Issue no earlier than every source register is ready.
                let mut issue = *cycle;
                let mut src_val = |s: DecOpSrc, issue: &mut u64| match s {
                    DecOpSrc::None => None,
                    DecOpSrc::Reg(i) => {
                        self.stats.rf_reads += 1;
                        *issue = (*issue).max(self.ready[i as usize]);
                        Some(self.rf.vals[i as usize])
                    }
                    DecOpSrc::Imm(v) => Some(v),
                };
                let va = src_val(a, &mut issue);
                let vb = src_val(b, &mut issue);
                self.stats.stall_cycles += issue - *cycle;
                *cycle = issue + 1; // the instruction occupies one issue slot

                let extra = self.extra;
                let write = |v: i32,
                             lat: u32,
                             rf: &mut FlatRf,
                             ready: &mut Vec<u64>,
                             stats: &mut SimStats| {
                    if dst != NO_DST {
                        stats.rf_writes += 1;
                        rf.vals[dst as usize] = v;
                        ready[dst as usize] = issue + lat as u64 + extra;
                    }
                };

                match op.class() {
                    OpClass::Alu => {
                        let r = if op.num_inputs() == 1 {
                            op.eval_alu(vb.unwrap(), 0)
                        } else {
                            op.eval_alu(va.unwrap(), vb.unwrap())
                        };
                        write(
                            r,
                            op.latency(),
                            &mut self.rf,
                            &mut self.ready,
                            &mut self.stats,
                        );
                    }
                    OpClass::Lsu => {
                        if op.is_load() {
                            self.stats.loads += 1;
                            let v = self.mem_load(op, vb.unwrap() as u32, issue)?;
                            write(
                                v,
                                op.latency(),
                                &mut self.rf,
                                &mut self.ready,
                                &mut self.stats,
                            );
                        } else {
                            self.stats.stores += 1;
                            self.mem_store(op, vb.unwrap() as u32, va.unwrap(), issue)?;
                        }
                    }
                    OpClass::Ctrl if CTRL => match op {
                        Opcode::Halt => return Ok(Flow::Halt),
                        Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                            let (taken, target) = match op {
                                Opcode::Jump => (true, vb.unwrap() as u32),
                                Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                _ => unreachable!(),
                            };
                            if taken {
                                self.stats.branches_taken += 1;
                                *cycle += self.pipe.branch_penalty as u64;
                                self.stats.stall_cycles += self.pipe.branch_penalty as u64;
                                return Ok(Flow::Jump(target));
                            }
                        }
                        _ => unreachable!(),
                    },
                    OpClass::Ctrl => {
                        unreachable!("control instruction inside a superblock interior")
                    }
                }
                Ok(Flow::Next)
            }
        }
    }

    /// Load with MMIO fallback: plain memory on the fast path; a fault at
    /// or above [`MMIO_BASE`] routes to the device bus (stamped with the
    /// instruction's issue cycle) when an I/O system is attached.
    #[inline(always)]
    fn mem_load(&mut self, op: Opcode, addr: u32, now: u64) -> Result<i32, SimError> {
        match mem::load(&self.memory, op, addr) {
            Ok(v) => Ok(v),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.load(op, addr, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// Store counterpart of [`Self::mem_load`].
    #[inline(always)]
    fn mem_store(&mut self, op: Opcode, addr: u32, value: i32, now: u64) -> Result<(), SimError> {
        match mem::store(&mut self.memory, op, addr, value) {
            Ok(()) => Ok(()),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.store(op, addr, value, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// Poll the I/O system at a superblock boundary. Returns the open run
    /// window in cycles (`u64::MAX` without I/O), or `None` after
    /// redirecting into the handler. The scalar trap needs no drain: entry
    /// costs one issue cycle plus the branch-refill penalty (like a taken
    /// branch into the handler) and consumes no instruction fuel.
    fn io_boundary(
        &mut self,
        pc: &mut u32,
        cycle: &mut u64,
        shadow: &mut Option<ScalarShadow>,
    ) -> Option<u64> {
        let (line, entry) = match &mut self.io {
            None => return Some(u64::MAX),
            Some(ctx) => {
                ctx.sys.poll(*cycle);
                match (ctx.sys.deliverable(), ctx.irq_entry) {
                    (Some(line), Some(entry)) => (line, entry),
                    _ => return Some(ctx.sys.window(*cycle)),
                }
            }
        };
        *shadow = Some(ScalarShadow {
            pc: *pc,
            rf: self.rf.vals.clone(),
            ready: self.ready.clone(),
        });
        let ctx = self.io.as_mut().expect("io presence checked above");
        ctx.sys.begin_delivery(line);
        self.stats.irqs += 1;
        *pc = entry;
        let cost = 1 + self.pipe.branch_penalty as u64;
        *cycle += cost;
        self.stats.irq_cycles += cost;
        None
    }

    /// Retire a halting handler: if the halt was the compiler-injected
    /// end-of-interrupt, restore the shadowed context and resume the
    /// interrupted program (returning `true`); a real guest halt returns
    /// `false` and the caller finishes the run.
    fn iret(
        &mut self,
        pc: &mut u32,
        cycle: &mut u64,
        shadow: &mut Option<ScalarShadow>,
    ) -> Result<bool, SimError> {
        let Some(ctx) = &mut self.io else {
            return Ok(false);
        };
        if !ctx.sys.take_eoi() {
            return Ok(false);
        }
        ctx.sys.finish_handler();
        let sh = shadow
            .take()
            .ok_or_else(|| SimError::Machine("end-of-interrupt without a saved context".into()))?;
        self.rf.vals = sh.rf;
        self.ready = sh.ready;
        *pc = sh.pc;
        let cost = 1 + self.pipe.branch_penalty as u64;
        *cycle += cost;
        self.stats.irq_cycles += cost;
        Ok(true)
    }

    /// Build the final [`SimResult`] at the halt cycle, folding the I/O
    /// system's counters and UART output into it.
    fn finish(mut self, cycles: u64) -> Result<SimResult, SimError> {
        let ret = mem::load(&self.memory, Opcode::Ldw, RETVAL_ADDR)?;
        let mut uart_tx = Vec::new();
        if let Some(ctx) = &self.io {
            self.stats.mmio_loads = ctx.sys.mmio_loads;
            self.stats.mmio_stores = ctx.sys.mmio_stores();
            uart_tx = ctx.sys.uart_tx();
        }
        Ok(SimResult {
            cycles,
            ret,
            memory: self.memory,
            stats: self.stats,
            uart_tx,
        })
    }
}

/// One thunk of a compiled scalar run. Scoreboard waits, stall charges
/// and branch penalties are inherently dynamic, so thunks keep them; the
/// thunk only removes the per-instruction decode match and the
/// statically-known statistics traffic.
#[derive(Debug, Clone, Copy)]
enum ScalarOp {
    /// `imm` prefix: one issue cycle.
    Prefix,
    /// ALU operation (`one` selects the single-input evaluation form).
    Alu {
        op: Opcode,
        one: bool,
        a: DecOpSrc,
        b: DecOpSrc,
        dst: u32,
        lat: u32,
    },
    /// Load (`b` address).
    Load {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        dst: u32,
        lat: u32,
    },
    /// Store (`a` value, `b` address).
    Store {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
    },
    /// Halt (terminal instructions only; operands still delay issue).
    Halt { a: DecOpSrc, b: DecOpSrc },
    /// Unconditional jump (terminal only; `b` target).
    Jump { a: DecOpSrc, b: DecOpSrc },
    /// Conditional jump (terminal only; `b` condition, `a` target).
    CJump { a: DecOpSrc, b: DecOpSrc, nz: bool },
}

/// A compiled scalar run: `block(engine, &mut cycle)` with fuel accounted
/// by the caller (`executed += len`).
pub(crate) type ScalarBlockFn =
    Box<dyn for<'e> Fn(&mut ScalarEngine<'e>, &mut u64) -> Result<Flow, SimError> + Send + Sync>;

/// Resolve one operand: scoreboard-delay `issue` for register sources and
/// yield the value. Statistics are batched by the block delta.
#[inline(always)]
fn sread(s: DecOpSrc, eng: &ScalarEngine, issue: &mut u64) -> Option<i32> {
    match s {
        DecOpSrc::None => None,
        DecOpSrc::Reg(i) => {
            *issue = (*issue).max(eng.ready[i as usize]);
            Some(eng.rf.vals[i as usize])
        }
        DecOpSrc::Imm(v) => Some(v),
    }
}

/// Execute a compiled run: straight-line thunk dispatch with the block's
/// static statistics applied once at the end.
fn exec_scalar_block(
    ops: &[ScalarOp],
    delta: &SimStats,
    eng: &mut ScalarEngine,
    cycle: &mut u64,
) -> Result<Flow, SimError> {
    let mut c = *cycle;
    let mut flow = Flow::Next;
    for op in ops {
        match *op {
            ScalarOp::Prefix => c += 1,
            ScalarOp::Alu {
                op,
                one,
                a,
                b,
                dst,
                lat,
            } => {
                let mut issue = c;
                let va = sread(a, eng, &mut issue);
                let vb = sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                let r = if one {
                    op.eval_alu(vb.unwrap(), 0)
                } else {
                    op.eval_alu(va.unwrap(), vb.unwrap())
                };
                if dst != NO_DST {
                    eng.rf.vals[dst as usize] = r;
                    eng.ready[dst as usize] = issue + lat as u64 + eng.extra;
                }
            }
            ScalarOp::Load { op, a, b, dst, lat } => {
                let mut issue = c;
                let _va = sread(a, eng, &mut issue);
                let vb = sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                let addr = vb.unwrap() as u32;
                let v = eng.mem_load(op, addr, issue)?;
                if dst != NO_DST {
                    eng.rf.vals[dst as usize] = v;
                    eng.ready[dst as usize] = issue + lat as u64 + eng.extra;
                }
            }
            ScalarOp::Store { op, a, b } => {
                let mut issue = c;
                let va = sread(a, eng, &mut issue);
                let vb = sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                let addr = vb.unwrap() as u32;
                let v = va.unwrap();
                eng.mem_store(op, addr, v, issue)?;
            }
            ScalarOp::Halt { a, b } => {
                let mut issue = c;
                sread(a, eng, &mut issue);
                sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                flow = Flow::Halt;
            }
            ScalarOp::Jump { a, b } => {
                let mut issue = c;
                let _va = sread(a, eng, &mut issue);
                let vb = sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                eng.stats.branches_taken += 1;
                let pen = eng.pipe.branch_penalty as u64;
                c += pen;
                eng.stats.stall_cycles += pen;
                flow = Flow::Jump(vb.unwrap() as u32);
            }
            ScalarOp::CJump { a, b, nz } => {
                let mut issue = c;
                let va = sread(a, eng, &mut issue);
                let vb = sread(b, eng, &mut issue);
                eng.stats.stall_cycles += issue - c;
                c = issue + 1;
                if (vb.unwrap() != 0) == nz {
                    eng.stats.branches_taken += 1;
                    let pen = eng.pipe.branch_penalty as u64;
                    c += pen;
                    eng.stats.stall_cycles += pen;
                    flow = Flow::Jump(va.unwrap() as u32);
                }
            }
        }
    }
    *cycle = c;
    eng.stats.accumulate(delta);
    Ok(flow)
}

/// Compile the run `[pc0, pc0 + len)` into a chain of resolved thunks
/// with its statically-known statistics folded into one per-block delta
/// (taken branches and stall cycles stay dynamic).
fn compile_scalar_block(dec: &[DecInst], pc0: u32, len: u32) -> ScalarBlockFn {
    let mut ops: Vec<ScalarOp> = Vec::new();
    let mut delta = SimStats::default();
    for i in 0..len {
        let pc = pc0 + i;
        delta.instructions += 1;
        match dec[pc as usize] {
            DecInst::ImmPrefix => ops.push(ScalarOp::Prefix),
            DecInst::Op { op, a, b, dst } => {
                delta.payload += 1;
                for s in [a, b] {
                    if matches!(s, DecOpSrc::Reg(_)) {
                        delta.rf_reads += 1;
                    }
                }
                let lat = op.latency();
                match op.class() {
                    OpClass::Alu => {
                        if dst != NO_DST {
                            delta.rf_writes += 1;
                        }
                        ops.push(ScalarOp::Alu {
                            op,
                            one: op.num_inputs() == 1,
                            a,
                            b,
                            dst,
                            lat,
                        });
                    }
                    OpClass::Lsu => {
                        if op.is_load() {
                            delta.loads += 1;
                            if dst != NO_DST {
                                delta.rf_writes += 1;
                            }
                            ops.push(ScalarOp::Load { op, a, b, dst, lat });
                        } else {
                            delta.stores += 1;
                            ops.push(ScalarOp::Store { op, a, b });
                        }
                    }
                    OpClass::Ctrl => ops.push(match op {
                        Opcode::Halt => ScalarOp::Halt { a, b },
                        Opcode::Jump => ScalarOp::Jump { a, b },
                        Opcode::CJnz => ScalarOp::CJump { a, b, nz: true },
                        Opcode::CJz => ScalarOp::CJump { a, b, nz: false },
                        _ => unreachable!("non-transfer control opcode"),
                    }),
                }
            }
        }
    }
    let ops = ops.into_boxed_slice();
    Box::new(move |eng, cycle| exec_scalar_block(&ops, &delta, eng, cycle))
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink. Scalar fuel
/// counts executed instructions (not cycles), so the block-entry clamp is
/// `min(run length, fuel − executed)`.
pub(crate) fn run_scalar_with<S: ProfileSink>(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&TierTable<ScalarBlockFn>>,
    io: Option<IoCtx<'_>>,
) -> Result<SimResult, SimError> {
    let mut tc = TierCounts::default();
    let r = run_scalar_inner(m, program, memory, fuel, sink, tier, io, &mut tc);
    tc.flush();
    r
}

#[allow(clippy::too_many_arguments)]
fn run_scalar_inner<S: ProfileSink>(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&TierTable<ScalarBlockFn>>,
    io: Option<IoCtx<'_>>,
    tc: &mut TierCounts,
) -> Result<SimResult, SimError> {
    let pipe = m.scalar.expect("scalar machine");
    let rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    let blocks = BlockMap::of_scalar(program);
    let ready_len = rf.len();
    let mut eng = ScalarEngine {
        pipe,
        dec: &dec,
        rf,
        ready: vec![0; ready_len],
        extra: if pipe.forwarding { 0 } else { 1 },
        memory,
        stats: SimStats::default(),
        io,
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    let mut executed: u64 = 0;
    let mut shadow: Option<ScalarShadow> = None;

    loop {
        // Superblock entry: the only place fuel and the pc bound are
        // examined.
        if executed >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= eng.dec.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        // Interrupt boundary: deliver a pending interrupt (re-entering the
        // loop at the handler) or learn how many cycles may run before the
        // next one can arrive. The window is in cycles and the clamps below
        // are in instructions; since each instruction costs at least one
        // cycle this only makes the clamp more conservative, and every tier
        // applies the identical clamp, so delivery points still agree.
        let win = match eng.io_boundary(&mut pc, &mut cycle, &mut shadow) {
            Some(win) => win,
            None => continue,
        };
        let full = blocks.run_len(pc) as u64;

        // Tier-2 dispatch (see `crate::tta::run_tta_with`; the scalar
        // model has no delay slots, so only fuel can clamp an entry).
        if S::PASSIVE {
            if let Some(tab) = tier {
                if fuel - executed >= full && win >= full {
                    let block = match tab.entry(pc) {
                        TierEntry::Compiled(b) => Some(b),
                        TierEntry::Promote => {
                            tc.promotions += 1;
                            tab.install(pc, compile_scalar_block(&dec, pc, full as u32));
                            tab.get(pc)
                        }
                        TierEntry::Cold => None,
                    };
                    if let Some(b) = block {
                        tc.entries += 1;
                        let flow = b(&mut eng, &mut cycle)?;
                        executed += full;
                        match flow {
                            Flow::Halt => {
                                if eng.iret(&mut pc, &mut cycle, &mut shadow)? {
                                    continue;
                                }
                                return eng.finish(cycle);
                            }
                            Flow::Jump(target) => pc = target,
                            Flow::Next => pc += full as u32,
                        }
                        continue;
                    }
                } else if tab.get(pc).is_some() {
                    tc.fallbacks += 1;
                }
            }
        }

        let len = full.min(fuel - executed).min(win);
        // Only the run's terminal instruction can be a control op, and it
        // is part of this dispatch iff fuel didn't clamp `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, &mut cycle)?;
            pc += 1;
        }
        executed += straight;

        if terminal {
            let flow = eng.step::<S, true>(sink, pc, &mut cycle)?;
            executed += 1;
            match flow {
                Flow::Halt => {
                    if eng.iret(&mut pc, &mut cycle, &mut shadow)? {
                        continue;
                    }
                    return eng.finish(cycle);
                }
                Flow::Jump(target) => pc = target,
                Flow::Next => pc += 1,
            }
        }
    }
}

/// Convenience wrapper with the default fuel.
pub fn run_scalar_default(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    run_scalar(m, program, memory, DEFAULT_FUEL)
}
