//! In-order scalar pipeline simulator (the MicroBlaze-like baselines).
//!
//! Functionally the program executes sequentially; the timing model charges
//! the pipeline costs of the configured [`tta_model::ScalarPipeline`]: one base cycle
//! per instruction, dependence stalls when a consumer issues before its
//! producer's functional latency has elapsed (plus one extra cycle when the
//! pipeline lacks forwarding), the taken-branch refill penalty, and one
//! cycle per `imm` prefix.
//!
//! Instructions are predecoded once per run (register references resolved
//! to flat indices, the register scoreboard stored alongside), so the
//! per-instruction loop performs no heap allocation. Dispatch is
//! fused-block: the fuel and pc bounds checks run once per straight-line
//! run, and interior instructions execute in a monomorphisation without
//! the control arm (the scalar model has no delay slots, so block entry
//! needs no delay-slot clamp — see `crate::tta` for the shared dispatch
//! structure).

use crate::profile::{finish_scalar, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{DecOpSrc, FlatRf, NO_DST};
use tta_isa::{BlockMap, Operation, ScalarInst, RETVAL_ADDR};
use tta_model::{mem, Machine, OpClass, Opcode, ScalarPipeline};

/// Maximum simulated instructions before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// One predecoded scalar instruction.
#[derive(Debug, Clone, Copy)]
enum DecInst {
    ImmPrefix,
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
    },
}

fn decode(rf: &FlatRf, program: &[ScalarInst]) -> Vec<DecInst> {
    program
        .iter()
        .map(|inst| match inst {
            ScalarInst::ImmPrefix => DecInst::ImmPrefix,
            ScalarInst::Op(Operation { op, dst, a, b, .. }) => DecInst::Op {
                op: *op,
                a: DecOpSrc::decode(rf, *a),
                b: DecOpSrc::decode(rf, *b),
                dst: dst.map_or(NO_DST, |d| rf.flat(d)),
            },
        })
        .collect()
}

/// Run a scalar program.
pub fn run_scalar(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_scalar_with(m, program, memory, fuel, &mut NoProfile)
}

/// Like [`run_scalar`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_scalar_traced(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_scalar_with(m, program, memory, fuel, &mut sink)?;
    Ok((r, sink.trace))
}

/// Like [`run_scalar`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_scalar_profiled(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_scalar_with(m, program, memory, fuel, &mut sink)?;
    let mut p = finish_scalar(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Control outcome of one scalar step.
enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// Taken branch (penalty already charged by the step).
    Jump(u32),
    /// The core halted; the caller builds the [`SimResult`].
    Halt,
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop.
struct ScalarEngine<'a> {
    pipe: ScalarPipeline,
    dec: &'a [DecInst],
    rf: FlatRf,
    /// Cycle at which each register's latest value becomes readable.
    ready: Vec<u64>,
    /// Extra scoreboard cycle when the pipeline lacks forwarding.
    extra: u64,
    memory: Vec<u8>,
    stats: SimStats,
}

impl ScalarEngine<'_> {
    /// One instruction at `pc`, advancing `cycle` by its issue + stall
    /// cost. With `CTRL = false` the caller guarantees (via the block map)
    /// a non-control instruction and the control arm is compiled out.
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: &mut u64,
    ) -> Result<Flow, SimError> {
        let inst = self.dec[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        match inst {
            DecInst::ImmPrefix => {
                // One fetch/issue cycle; the following instruction carries
                // the full immediate already.
                *cycle += 1;
                Ok(Flow::Next)
            }
            DecInst::Op { op, a, b, dst } => {
                self.stats.payload += 1;
                // Issue no earlier than every source register is ready.
                let mut issue = *cycle;
                let mut src_val = |s: DecOpSrc, issue: &mut u64| match s {
                    DecOpSrc::None => None,
                    DecOpSrc::Reg(i) => {
                        self.stats.rf_reads += 1;
                        *issue = (*issue).max(self.ready[i as usize]);
                        Some(self.rf.vals[i as usize])
                    }
                    DecOpSrc::Imm(v) => Some(v),
                };
                let va = src_val(a, &mut issue);
                let vb = src_val(b, &mut issue);
                self.stats.stall_cycles += issue - *cycle;
                *cycle = issue + 1; // the instruction occupies one issue slot

                let extra = self.extra;
                let write = |v: i32,
                             lat: u32,
                             rf: &mut FlatRf,
                             ready: &mut Vec<u64>,
                             stats: &mut SimStats| {
                    if dst != NO_DST {
                        stats.rf_writes += 1;
                        rf.vals[dst as usize] = v;
                        ready[dst as usize] = issue + lat as u64 + extra;
                    }
                };

                match op.class() {
                    OpClass::Alu => {
                        let r = if op.num_inputs() == 1 {
                            op.eval_alu(vb.unwrap(), 0)
                        } else {
                            op.eval_alu(va.unwrap(), vb.unwrap())
                        };
                        write(
                            r,
                            op.latency(),
                            &mut self.rf,
                            &mut self.ready,
                            &mut self.stats,
                        );
                    }
                    OpClass::Lsu => {
                        if op.is_load() {
                            self.stats.loads += 1;
                            let v = mem::load(&self.memory, op, vb.unwrap() as u32)?;
                            write(
                                v,
                                op.latency(),
                                &mut self.rf,
                                &mut self.ready,
                                &mut self.stats,
                            );
                        } else {
                            self.stats.stores += 1;
                            mem::store(&mut self.memory, op, vb.unwrap() as u32, va.unwrap())?;
                        }
                    }
                    OpClass::Ctrl if CTRL => match op {
                        Opcode::Halt => return Ok(Flow::Halt),
                        Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                            let (taken, target) = match op {
                                Opcode::Jump => (true, vb.unwrap() as u32),
                                Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                _ => unreachable!(),
                            };
                            if taken {
                                self.stats.branches_taken += 1;
                                *cycle += self.pipe.branch_penalty as u64;
                                self.stats.stall_cycles += self.pipe.branch_penalty as u64;
                                return Ok(Flow::Jump(target));
                            }
                        }
                        _ => unreachable!(),
                    },
                    OpClass::Ctrl => {
                        unreachable!("control instruction inside a superblock interior")
                    }
                }
                Ok(Flow::Next)
            }
        }
    }
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink. Scalar fuel
/// counts executed instructions (not cycles), so the block-entry clamp is
/// `min(run length, fuel − executed)`.
pub(crate) fn run_scalar_with<S: ProfileSink>(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let pipe = m.scalar.expect("scalar machine");
    let rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    let blocks = BlockMap::of_scalar(program);
    let ready_len = rf.len();
    let mut eng = ScalarEngine {
        pipe,
        dec: &dec,
        rf,
        ready: vec![0; ready_len],
        extra: if pipe.forwarding { 0 } else { 1 },
        memory,
        stats: SimStats::default(),
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    let mut executed: u64 = 0;

    loop {
        // Superblock entry: the only place fuel and the pc bound are
        // examined.
        if executed >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= eng.dec.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        let full = blocks.run_len(pc) as u64;
        let len = full.min(fuel - executed);
        // Only the run's terminal instruction can be a control op, and it
        // is part of this dispatch iff fuel didn't clamp `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, &mut cycle)?;
            pc += 1;
        }
        executed += straight;

        if terminal {
            let flow = eng.step::<S, true>(sink, pc, &mut cycle)?;
            executed += 1;
            match flow {
                Flow::Halt => {
                    let ret = mem::load(&eng.memory, Opcode::Ldw, RETVAL_ADDR)?;
                    return Ok(SimResult {
                        cycles: cycle,
                        ret,
                        memory: eng.memory,
                        stats: eng.stats,
                    });
                }
                Flow::Jump(target) => pc = target,
                Flow::Next => pc += 1,
            }
        }
    }
}

/// Convenience wrapper with the default fuel.
pub fn run_scalar_default(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    run_scalar(m, program, memory, DEFAULT_FUEL)
}
