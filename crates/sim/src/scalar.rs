//! In-order scalar pipeline simulator (the MicroBlaze-like baselines).
//!
//! Functionally the program executes sequentially; the timing model charges
//! the pipeline costs of the configured [`tta_model::ScalarPipeline`]: one base cycle
//! per instruction, dependence stalls when a consumer issues before its
//! producer's functional latency has elapsed (plus one extra cycle when the
//! pipeline lacks forwarding), the taken-branch refill penalty, and one
//! cycle per `imm` prefix.
//!
//! Instructions are predecoded once per run (register references resolved
//! to flat indices, the register scoreboard stored alongside), so the
//! per-instruction loop performs no heap allocation.

use crate::profile::{finish_scalar, Collector, GuestProfile, NoProfile, ProfileSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{trace_capacity, DecOpSrc, FlatRf, NO_DST};
use tta_isa::{Operation, ScalarInst, RETVAL_ADDR};
use tta_model::{mem, Machine, OpClass, Opcode};

/// Maximum simulated instructions before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// One predecoded scalar instruction.
#[derive(Debug, Clone, Copy)]
enum DecInst {
    ImmPrefix,
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
    },
}

fn decode(rf: &FlatRf, program: &[ScalarInst]) -> Vec<DecInst> {
    program
        .iter()
        .map(|inst| match inst {
            ScalarInst::ImmPrefix => DecInst::ImmPrefix,
            ScalarInst::Op(Operation { op, dst, a, b, .. }) => DecInst::Op {
                op: *op,
                a: DecOpSrc::decode(rf, *a),
                b: DecOpSrc::decode(rf, *b),
                dst: dst.map_or(NO_DST, |d| rf.flat(d)),
            },
        })
        .collect()
}

/// Run a scalar program.
pub fn run_scalar(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_scalar_inner(m, program, memory, fuel, None, &mut NoProfile)
}

/// Like [`run_scalar`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_scalar_traced(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut trace = Vec::with_capacity(trace_capacity(program.len()));
    let r = run_scalar_inner(m, program, memory, fuel, Some(&mut trace), &mut NoProfile)?;
    Ok((r, trace))
}

/// Like [`run_scalar`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_scalar_profiled(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::for_static(program.len());
    let r = run_scalar_inner(m, program, memory, fuel, None, &mut sink)?;
    let mut p = finish_scalar(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

fn run_scalar_inner<S: ProfileSink>(
    m: &Machine,
    program: &[ScalarInst],
    mut memory: Vec<u8>,
    fuel: u64,
    mut trace: Option<&mut Vec<u32>>,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let pipe = m.scalar.expect("scalar machine");
    let mut rf = FlatRf::new(m);
    let dec = decode(&rf, program);
    // Cycle at which each register's latest value becomes readable.
    let mut ready: Vec<u64> = vec![0; rf.len()];
    let mut stats = SimStats::default();
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    let mut executed: u64 = 0;

    let extra = if pipe.forwarding { 0 } else { 1 };

    loop {
        if executed >= fuel {
            return Err(SimError::OutOfFuel);
        }
        let Some(inst) = dec.get(pc as usize) else {
            return Err(SimError::PcOutOfRange(pc));
        };
        executed += 1;
        stats.instructions += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(pc);
        }
        sink.retire(pc);

        match *inst {
            DecInst::ImmPrefix => {
                // One fetch/issue cycle; the following instruction carries
                // the full immediate already.
                cycle += 1;
                pc += 1;
                continue;
            }
            DecInst::Op { op, a, b, dst } => {
                stats.payload += 1;
                // Issue no earlier than every source register is ready.
                let mut issue = cycle;
                let src_val = |s: DecOpSrc, issue: &mut u64, stats: &mut SimStats| match s {
                    DecOpSrc::None => None,
                    DecOpSrc::Reg(i) => {
                        stats.rf_reads += 1;
                        *issue = (*issue).max(ready[i as usize]);
                        Some(rf.vals[i as usize])
                    }
                    DecOpSrc::Imm(v) => Some(v),
                };
                let va = src_val(a, &mut issue, &mut stats);
                let vb = src_val(b, &mut issue, &mut stats);
                stats.stall_cycles += issue - cycle;
                cycle = issue + 1; // the instruction occupies one issue slot

                let mut write = |v: i32, lat: u32, rf: &mut FlatRf, ready: &mut Vec<u64>| {
                    if dst != NO_DST {
                        stats.rf_writes += 1;
                        rf.vals[dst as usize] = v;
                        ready[dst as usize] = issue + lat as u64 + extra;
                    }
                };

                match op.class() {
                    OpClass::Alu => {
                        let r = if op.num_inputs() == 1 {
                            op.eval_alu(vb.unwrap(), 0)
                        } else {
                            op.eval_alu(va.unwrap(), vb.unwrap())
                        };
                        write(r, op.latency(), &mut rf, &mut ready);
                    }
                    OpClass::Lsu => {
                        if op.is_load() {
                            stats.loads += 1;
                            let v = mem::load(&memory, op, vb.unwrap() as u32)?;
                            write(v, op.latency(), &mut rf, &mut ready);
                        } else {
                            stats.stores += 1;
                            mem::store(&mut memory, op, vb.unwrap() as u32, va.unwrap())?;
                        }
                    }
                    OpClass::Ctrl => match op {
                        Opcode::Halt => {
                            let ret = mem::load(&memory, Opcode::Ldw, RETVAL_ADDR)?;
                            return Ok(SimResult {
                                cycles: cycle,
                                ret,
                                memory,
                                stats,
                            });
                        }
                        Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                            let (taken, target) = match op {
                                Opcode::Jump => (true, vb.unwrap() as u32),
                                Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                _ => unreachable!(),
                            };
                            if taken {
                                stats.branches_taken += 1;
                                cycle += pipe.branch_penalty as u64;
                                stats.stall_cycles += pipe.branch_penalty as u64;
                                pc = target;
                                continue;
                            }
                        }
                        _ => unreachable!(),
                    },
                }
                pc += 1;
            }
        }
    }
}

/// Convenience wrapper with the default fuel.
pub fn run_scalar_default(
    m: &Machine,
    program: &[ScalarInst],
    memory: Vec<u8>,
) -> Result<SimResult, SimError> {
    run_scalar(m, program, memory, DEFAULT_FUEL)
}
