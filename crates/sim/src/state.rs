//! Shared simulator state helpers: the flattened register file backing
//! all three cores and the trace-buffer sizing heuristic.
//!
//! Every machine's register files are stored as one contiguous `Vec<i32>`
//! with per-RF base offsets. Predecoding resolves each `RegRef` to its
//! flat index once per `run`, so the cycle loops index a single slice
//! instead of chasing a `Vec<Vec<i32>>` double indirection.

use tta_isa::OpSrc;
use tta_model::io::IoSystem;
use tta_model::{Machine, RegRef};

/// Fixed trap overhead of the statically scheduled cores (TTA and VLIW):
/// two cycles on handler entry (after the in-flight drain) and two on
/// return. The scalar core instead pays one issue cycle plus its
/// configured branch-refill penalty each way, like a taken branch.
pub(crate) const TRAP_CYCLES: u64 = 2;

/// Per-run I/O context threaded through an engine: the shared device and
/// interrupt-controller state, plus where the compiled `__irq` handler
/// region starts in this program (if the guest has one — interrupts stay
/// latched but undeliverable otherwise, exactly like the interpreter).
pub(crate) struct IoCtx<'a> {
    pub sys: &'a mut IoSystem,
    pub irq_entry: Option<u32>,
}

/// Sentinel flat index for "no destination register" in decoded operations.
pub(crate) const NO_DST: u32 = u32::MAX;

/// A decoded operation operand: register references resolved to flat
/// indices (shared by the VLIW and scalar decoders).
#[derive(Debug, Clone, Copy)]
pub(crate) enum DecOpSrc {
    None,
    Reg(u32),
    Imm(i32),
}

impl DecOpSrc {
    pub fn decode(rf: &FlatRf, s: Option<OpSrc>) -> Self {
        match s {
            None => DecOpSrc::None,
            Some(OpSrc::Reg(r)) => DecOpSrc::Reg(rf.flat(r)),
            Some(OpSrc::Imm(v)) => DecOpSrc::Imm(v),
        }
    }
}

/// All register files of a machine, flattened into one array.
#[derive(Debug, Clone)]
pub(crate) struct FlatRf {
    /// Register values, all RFs back to back, reset to zero.
    pub vals: Vec<i32>,
    /// Base offset of each RF within `vals`.
    base: Vec<u32>,
}

impl FlatRf {
    /// Zero-initialised register state for `m` (the reset state every
    /// simulator starts from).
    pub fn new(m: &Machine) -> Self {
        let mut base = Vec::with_capacity(m.rfs.len());
        let mut total = 0u32;
        for rf in &m.rfs {
            base.push(total);
            total += rf.regs as u32;
        }
        FlatRf {
            vals: vec![0; total as usize],
            base,
        }
    }

    /// Resolve a register reference to its flat index (decode-time only;
    /// the hot loops use the precomputed index directly).
    pub fn flat(&self, r: RegRef) -> u32 {
        self.base[r.rf.0 as usize] + r.index as u32
    }

    /// Total register count across all RFs.
    pub fn len(&self) -> usize {
        self.vals.len()
    }
}

/// Initial capacity for a PC trace: a cycles estimate from the static
/// program length (tight loops revisit instructions many times), clamped
/// so short programs don't over-reserve and long ones don't pre-commit
/// more than a few megabytes.
pub(crate) fn trace_capacity(program_len: usize) -> usize {
    (program_len * 32).clamp(1 << 12, 1 << 20)
}
