//! Shared compiled-tier state: one promotion table per program.
//!
//! [`Tiers`] bundles a style-matched [`TierTable`] (TTA, VLIW or scalar)
//! for one program, so the compiled blocks a run promotes are reused by
//! every later run through [`crate::run_with_tiers`] — the steady state
//! the evaluation pipeline and the dispatch benchmark run in. The
//! default [`crate::run`] entry points build a fresh per-run table from
//! the environment configuration instead, which keeps them dependency-
//! free but re-pays promotion each run.
//!
//! The promotion-threshold invariant (`tta_isa::tier`) holds across
//! shared tables too: a block promoted by run N executes compiled in run
//! N+1 with bit-identical results — `tests/tier_transitions.rs` pins
//! this boundary.

use crate::result::{SimError, SimResult};
use tta_isa::{Program, TierConfig, TierTable};
use tta_model::Machine;

/// Per-program compiled-tier state, shareable across runs (and across
/// threads — promotion is lock-free and promote-once).
pub struct Tiers {
    pub(crate) style: StyleTiers,
    pub(crate) program_len: usize,
}

pub(crate) enum StyleTiers {
    /// Compiled tier disabled: every run stays interpreted.
    Off,
    Tta(crate::tta::TtaTiers),
    Vliw(crate::vliw::VliwTiers),
    Scalar(TierTable<crate::scalar::ScalarBlockFn>),
}

impl Tiers {
    /// Tier state for `program` using the environment configuration
    /// (`TTA_JIT`, `TTA_JIT_THRESHOLD`).
    pub fn for_program(program: &Program) -> Tiers {
        Self::with_config(program, &TierConfig::from_env())
    }

    /// Tier state for `program` with an explicit configuration.
    pub fn with_config(program: &Program, cfg: &TierConfig) -> Tiers {
        let program_len = program.len();
        let style = if !cfg.enabled {
            StyleTiers::Off
        } else {
            match program {
                Program::Tta(_) => {
                    StyleTiers::Tta(crate::tta::TtaTiers::new(program_len, cfg.threshold))
                }
                Program::Vliw(_) => {
                    StyleTiers::Vliw(crate::vliw::VliwTiers::new(program_len, cfg.threshold))
                }
                Program::Scalar(_) => {
                    StyleTiers::Scalar(TierTable::new(program_len, cfg.threshold))
                }
            }
        };
        Tiers { style, program_len }
    }

    /// Whether the compiled tier is enabled at all.
    pub fn enabled(&self) -> bool {
        !matches!(self.style, StyleTiers::Off)
    }

    /// Number of program counters with an installed compiled block.
    pub fn compiled_blocks(&self) -> usize {
        match &self.style {
            StyleTiers::Off => 0,
            StyleTiers::Tta(t) => t.compiled_count(),
            StyleTiers::Vliw(t) => t.compiled_count(),
            StyleTiers::Scalar(t) => t.compiled_count(),
        }
    }
}

/// Per-run tier event counts, flushed to the global observability
/// counters after the run (the hot loops never touch the registry).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TierCounts {
    /// Blocks compiled and installed by this run.
    pub promotions: u64,
    /// Block entries dispatched to the compiled tier.
    pub entries: u64,
    /// Clamped entries (pending jump or fuel) of a pc that has a
    /// compiled block, executed interpreted instead.
    pub fallbacks: u64,
}

impl TierCounts {
    pub fn flush(&self) {
        if (self.promotions | self.entries | self.fallbacks) != 0 && tta_obs::enabled() {
            use tta_obs::counter::add;
            add("sim.jit.promotions", self.promotions);
            add("sim.jit.tier2_entries", self.entries);
            add("sim.jit.fallbacks", self.fallbacks);
        }
    }
}

/// [`crate::run_with_fuel`] against shared tier state (must have been
/// built for this same `program`).
pub fn run_with_tiers(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
    tiers: &Tiers,
) -> Result<SimResult, SimError> {
    assert_eq!(
        tiers.program_len,
        program.len(),
        "tier state was built for a different program"
    );
    use crate::profile::NoProfile;
    let span = tta_obs::span("simulate");
    let result = match (program, &tiers.style) {
        (Program::Tta(insts), StyleTiers::Tta(t)) => {
            crate::tta::run_tta_with(m, insts, memory, fuel, &mut NoProfile, Some(t), None)
        }
        (Program::Vliw(bundles), StyleTiers::Vliw(t)) => {
            crate::vliw::run_vliw_with(m, bundles, memory, fuel, &mut NoProfile, Some(t), None)
        }
        (Program::Scalar(insts), StyleTiers::Scalar(t)) => {
            crate::scalar::run_scalar_with(m, insts, memory, fuel, &mut NoProfile, Some(t), None)
        }
        (Program::Tta(insts), StyleTiers::Off) => {
            crate::tta::run_tta_with(m, insts, memory, fuel, &mut NoProfile, None, None)
        }
        (Program::Vliw(bundles), StyleTiers::Off) => {
            crate::vliw::run_vliw_with(m, bundles, memory, fuel, &mut NoProfile, None, None)
        }
        (Program::Scalar(insts), StyleTiers::Off) => {
            crate::scalar::run_scalar_with(m, insts, memory, fuel, &mut NoProfile, None, None)
        }
        _ => panic!("tier state style does not match the program style"),
    };
    drop(span);
    crate::flush_obs(&result);
    result
}
