//! Cycle-accurate simulator for the operation-triggered VLIW cores.
//!
//! Matches the timing contract of `tta-compiler::vliw_sched`: a bundle at
//! cycle `t` reads all register operands at `t`, results write back at the
//! end of cycle `t + latency` (becoming readable at `t + latency + 1` —
//! there is no forwarding network, per the paper's synthesised VLIW), long
//! immediates write back at the end of `t + 1`, stores commit at `t`, and
//! control transfers take effect after the machine's delay slots.
//!
//! Write-port overuse and in-flight-jump violations raise
//! [`SimError::Machine`].
//!
//! Bundles are predecoded once per run — empty and `LimmCont` slots are
//! dropped and register references resolved to flat indices — and pending
//! writebacks ride a four-deep wheel indexed by `due & 3` (every
//! writeback latency is 1–3 cycles and the wheel drains every cycle), so
//! the cycle loop performs no heap allocation and no queue scan. Dispatch
//! is fused-block: the outer loop walks one superblock per iteration, so
//! the fuel check, the pc bounds check and the delay-slot bookkeeping run
//! once per block and the interior bundles execute in a monomorphisation
//! without the control arm (see `crate::tta` for the dispatch-loop
//! invariants — the engines share the same structure). Hot superblocks
//! are promoted into chains of resolved thunks exactly as in the TTA
//! engine (DESIGN.md §14).

use crate::profile::{finish_vliw, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{DecOpSrc, FlatRf, IoCtx, NO_DST, TRAP_CYCLES};
use crate::tier::TierCounts;
use tta_isa::{BlockMap, Operation, TierEntry, TierTable, VliwBundle, VliwSlot, RETVAL_ADDR};
use tta_model::io::MMIO_BASE;
use tta_model::{mem, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
struct Writeback {
    /// Flat register index.
    flat: u32,
    /// Register-file index (write-port accounting).
    rf: u16,
    value: i32,
}

/// One decoded slot: an operation or a long-immediate head. `LimmCont`
/// and empty slots vanish at decode time.
#[derive(Debug, Clone, Copy)]
enum DecSlot {
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
        /// Destination RF (write-port accounting).
        dst_rf: u16,
    },
    Limm {
        dst: u32,
        dst_rf: u16,
        value: i32,
    },
}

/// One bundle as a range into the flat decoded-slot array.
#[derive(Debug, Clone, Copy)]
struct DecBundle {
    slots: (u32, u32),
}

fn decode(rf: &FlatRf, program: &[VliwBundle]) -> (Vec<DecSlot>, Vec<DecBundle>) {
    let mut slots = Vec::new();
    let mut bundles = Vec::with_capacity(program.len());
    for bundle in program {
        let s0 = slots.len() as u32;
        for slot in &bundle.slots {
            match slot {
                None | Some(VliwSlot::LimmCont) => {}
                Some(VliwSlot::LimmHead { dst, value }) => slots.push(DecSlot::Limm {
                    dst: rf.flat(*dst),
                    dst_rf: dst.rf.0,
                    value: *value,
                }),
                Some(VliwSlot::Op(Operation { op, dst, a, b, .. })) => slots.push(DecSlot::Op {
                    op: *op,
                    a: DecOpSrc::decode(rf, *a),
                    b: DecOpSrc::decode(rf, *b),
                    dst: dst.map_or(NO_DST, |d| rf.flat(d)),
                    dst_rf: dst.map_or(0, |d| d.rf.0),
                }),
            }
        }
        bundles.push(DecBundle {
            slots: (s0, slots.len() as u32),
        });
    }
    (slots, bundles)
}

/// Run a VLIW program. The compiled superblock tier is configured from
/// the environment with a fresh per-run promotion table; share one across
/// runs with [`crate::run_with_tiers`].
pub fn run_vliw(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    let cfg = tta_isa::TierConfig::from_env();
    if cfg.enabled {
        let tier = VliwTiers::new(program.len(), cfg.threshold);
        run_vliw_with(m, program, memory, fuel, &mut NoProfile, Some(&tier), None)
    } else {
        run_vliw_with(m, program, memory, fuel, &mut NoProfile, None, None)
    }
}

/// Like [`run_vliw`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_vliw_traced(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_vliw_with(m, program, memory, fuel, &mut sink, None, None)?;
    Ok((r, sink.trace))
}

/// Like [`run_vliw`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_vliw_profiled(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::with_write_hist(m, program.len());
    let r = run_vliw_with(m, program, memory, fuel, &mut sink, None, None)?;
    let mut p = finish_vliw(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop and by compiled blocks.
pub(crate) struct VliwEngine<'a> {
    m: &'a Machine,
    dec_slots: &'a [DecSlot],
    dec_bundles: &'a [DecBundle],
    rf: FlatRf,
    /// Writeback wheel: writebacks due at the end of cycle `c` sit in
    /// `wheel[c & 3]` in issue order. Sound because every writeback
    /// latency is 1..=3 and the wheel drains every cycle.
    wheel: [Vec<Writeback>; 4],
    /// Per-cycle write-port usage, reused across cycles.
    writes_per_rf: Vec<u32>,
    /// Smallest write-port budget over all register files: when ≥ 1 a
    /// single writeback can never overflow a port, enabling the drain
    /// fast path.
    min_write_ports: u32,
    memory: Vec<u8>,
    stats: SimStats,
    /// Memory-mapped I/O and interrupt state, present only for reactive
    /// runs ([`crate::run_with_io`]); `None` keeps plain runs untouched.
    io: Option<IoCtx<'a>>,
}

/// The context a VLIW trap must save. The VLIW's in-flight state is its
/// writeback wheel; the trap drains it first (results commit to the
/// register files), so the checkpoint is pc, the in-flight jump and the
/// register files — cheaper than the TTA's exposed-bus checkpoint.
struct VliwShadow {
    pc: u32,
    pending_jump: Option<(u32, u32)>,
    rf: Vec<i32>,
}

impl VliwEngine<'_> {
    /// Queue a writeback due at the end of `due`.
    #[inline(always)]
    fn enqueue(&mut self, due: u64, flat: u32, rf: u16, value: i32) {
        self.wheel[(due & 3) as usize].push(Writeback { flat, rf, value });
    }

    /// End-of-cycle drain: apply due writebacks, checking port budgets.
    /// Cycle-granular by contract (the write-pressure histogram hangs off
    /// it); shared by the interpreted step and compiled blocks, which
    /// both call it exactly once per architectural cycle.
    #[inline(always)]
    fn drain<S: ProfileSink>(&mut self, sink: &mut S, cycle: u64) -> Result<(), SimError> {
        let bucket = (cycle & 3) as usize;
        let n = self.wheel[bucket].len();
        // Fast path: a passive sink needs no pressure histogram, and a
        // single writeback cannot overflow a ≥1-port budget.
        if S::PASSIVE && n <= 1 && self.min_write_ports >= 1 {
            if n == 1 {
                let wb = self.wheel[bucket][0];
                self.wheel[bucket].clear();
                self.stats.rf_writes += 1;
                self.rf.vals[wb.flat as usize] = wb.value;
            }
            return Ok(());
        }
        self.writes_per_rf.fill(0);
        for k in 0..n {
            let wb = self.wheel[bucket][k];
            self.writes_per_rf[wb.rf as usize] += 1;
            self.stats.rf_writes += 1;
            self.rf.vals[wb.flat as usize] = wb.value;
        }
        self.wheel[bucket].clear();
        for (ri, &n) in self.writes_per_rf.iter().enumerate() {
            if n > self.m.rfs[ri].write_ports as u32 {
                return Err(SimError::Machine(format!(
                    "{n} writebacks to {} in cycle {cycle} but only {} ports",
                    self.m.rfs[ri].name, self.m.rfs[ri].write_ports
                )));
            }
        }
        sink.writeback_pressure(&self.writes_per_rf);
        Ok(())
    }

    /// Arm a control transfer.
    #[inline(always)]
    fn take_jump(
        &mut self,
        pc: u32,
        target: u32,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<(), SimError> {
        if pending_jump.is_some() {
            return Err(SimError::Machine(format!(
                "jump during in-flight jump (pc {pc})"
            )));
        }
        self.stats.branches_taken += 1;
        *pending_jump = Some((self.m.jump_delay_slots, target));
        Ok(())
    }

    /// One architectural cycle at `pc`. With `CTRL = false` the caller
    /// guarantees (via the block map) that the bundle issues no control
    /// operation, and the control arm is compiled out of the
    /// monomorphisation. Returns whether the core halted.
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: u64,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<bool, SimError> {
        let bundle = self.dec_bundles[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        // Execute slots (reads all happen against the pre-cycle RF state:
        // writebacks apply at end of cycle).
        let mut halt = false;
        for si in bundle.slots.0..bundle.slots.1 {
            match self.dec_slots[si as usize] {
                DecSlot::Limm { dst, dst_rf, value } => {
                    self.stats.payload += 1;
                    self.stats.limms += 1;
                    self.enqueue(cycle + 1, dst, dst_rf, value);
                }
                DecSlot::Op {
                    op,
                    a,
                    b,
                    dst,
                    dst_rf,
                } => {
                    self.stats.payload += 1;
                    let va = match a {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            self.stats.rf_reads += 1;
                            Some(self.rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    let vb = match b {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            self.stats.rf_reads += 1;
                            Some(self.rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    match op.class() {
                        OpClass::Alu => {
                            let r = if op.num_inputs() == 1 {
                                op.eval_alu(vb.unwrap(), 0)
                            } else {
                                op.eval_alu(va.unwrap(), vb.unwrap())
                            };
                            assert!(dst != NO_DST, "ALU op writes a register");
                            self.enqueue(cycle + op.latency() as u64, dst, dst_rf, r);
                        }
                        OpClass::Lsu => {
                            if op.is_load() {
                                self.stats.loads += 1;
                                let v = self.mem_load(op, vb.unwrap() as u32, cycle)?;
                                assert!(dst != NO_DST, "load writes a register");
                                self.enqueue(cycle + op.latency() as u64, dst, dst_rf, v);
                            } else {
                                self.stats.stores += 1;
                                self.mem_store(op, vb.unwrap() as u32, va.unwrap(), cycle)?;
                            }
                        }
                        OpClass::Ctrl if CTRL => match op {
                            Opcode::Halt => halt = true,
                            Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                                let (taken, target) = match op {
                                    Opcode::Jump => (true, vb.unwrap() as u32),
                                    Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                    Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                    _ => unreachable!(),
                                };
                                if taken {
                                    self.take_jump(pc, target, pending_jump)?;
                                }
                            }
                            _ => unreachable!(),
                        },
                        OpClass::Ctrl => {
                            unreachable!("control operation inside a superblock interior")
                        }
                    }
                }
            }
        }

        self.drain(sink, cycle)?;
        Ok(halt)
    }

    /// Whether no writeback is in flight (all wheel buckets empty).
    #[inline(always)]
    fn wheel_is_empty(&self) -> bool {
        self.wheel.iter().all(|b| b.is_empty())
    }

    /// Memory load routing: data memory on the fast path, the MMIO bus
    /// for addresses at or above [`MMIO_BASE`] when the run has an I/O
    /// system. Routing keys off the data-memory fault, so io-less runs
    /// pay nothing.
    #[inline(always)]
    fn mem_load(&mut self, op: Opcode, addr: u32, now: u64) -> Result<i32, SimError> {
        match mem::load(&self.memory, op, addr) {
            Ok(v) => Ok(v),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.load(op, addr, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// Memory store routing (see [`VliwEngine::mem_load`]).
    #[inline(always)]
    fn mem_store(&mut self, op: Opcode, addr: u32, value: i32, now: u64) -> Result<(), SimError> {
        match mem::store(&mut self.memory, op, addr, value) {
            Ok(()) => Ok(()),
            Err(e) => match &mut self.io {
                Some(ctx) if addr >= MMIO_BASE => Ok(ctx.sys.store(op, addr, value, now)?),
                _ => Err(e.into()),
            },
        }
    }

    /// The per-block-entry I/O boundary (see `TtaEngine::io_boundary` —
    /// same contract). The VLIW trap drains the writeback wheel first
    /// (one cycle per residual bucket, fuel-checked, write-port rules
    /// still enforced), then checkpoints pc, the in-flight jump and the
    /// register files.
    fn io_boundary<S: ProfileSink>(
        &mut self,
        sink: &mut S,
        pc: &mut u32,
        cycle: &mut u64,
        fuel: u64,
        pending_jump: &mut Option<(u32, u32)>,
        shadow: &mut Option<VliwShadow>,
    ) -> Result<Option<u64>, SimError> {
        let (line, entry) = match &mut self.io {
            None => return Ok(Some(u64::MAX)),
            Some(ctx) => {
                ctx.sys.poll(*cycle);
                match (ctx.sys.deliverable(), ctx.irq_entry) {
                    (Some(line), Some(entry)) => (line, entry),
                    _ => return Ok(Some(ctx.sys.window(*cycle))),
                }
            }
        };
        while !self.wheel_is_empty() {
            if *cycle >= fuel {
                return Err(SimError::OutOfFuel);
            }
            self.drain(sink, *cycle)?;
            *cycle += 1;
            self.stats.irq_cycles += 1;
        }
        *shadow = Some(VliwShadow {
            pc: *pc,
            pending_jump: pending_jump.take(),
            rf: self.rf.vals.clone(),
        });
        let ctx = self.io.as_mut().expect("io presence checked above");
        ctx.sys.begin_delivery(line);
        self.stats.irqs += 1;
        *pc = entry;
        *cycle += TRAP_CYCLES;
        self.stats.irq_cycles += TRAP_CYCLES;
        Ok(None)
    }

    /// Retire a halting handler (see `TtaEngine::iret` — same contract).
    fn iret(
        &mut self,
        pc: &mut u32,
        cycle: &mut u64,
        pending_jump: &mut Option<(u32, u32)>,
        shadow: &mut Option<VliwShadow>,
    ) -> Result<bool, SimError> {
        let Some(ctx) = &mut self.io else {
            return Ok(false);
        };
        if !ctx.sys.take_eoi() {
            return Ok(false);
        }
        ctx.sys.finish_handler();
        let sh = shadow
            .take()
            .ok_or_else(|| SimError::Machine("end-of-interrupt without a saved context".into()))?;
        for b in &mut self.wheel {
            b.clear();
        }
        self.rf.vals = sh.rf;
        *pc = sh.pc;
        *pending_jump = sh.pending_jump;
        *cycle += TRAP_CYCLES;
        self.stats.irq_cycles += TRAP_CYCLES;
        Ok(true)
    }

    /// Build the final [`SimResult`] at the halt cycle, folding the I/O
    /// system's counters and device-output stream into it.
    fn finish(mut self, cycles: u64) -> Result<SimResult, SimError> {
        let ret = mem::load(&self.memory, Opcode::Ldw, RETVAL_ADDR)?;
        let mut uart_tx = Vec::new();
        if let Some(ctx) = &self.io {
            self.stats.mmio_loads = ctx.sys.mmio_loads;
            self.stats.mmio_stores = ctx.sys.mmio_stores();
            uart_tx = ctx.sys.uart_tx();
        }
        Ok(SimResult {
            cycles,
            ret,
            memory: self.memory,
            stats: self.stats,
            uart_tx,
        })
    }
}

/// A resolved operand in a compiled block.
#[derive(Debug, Clone, Copy)]
enum VSrc {
    Reg(u32),
    Imm(i32),
}

impl VSrc {
    #[inline(always)]
    fn read(self, rf: &FlatRf) -> i32 {
        match self {
            VSrc::Reg(i) => rf.vals[i as usize],
            VSrc::Imm(v) => v,
        }
    }
}

/// One thunk of a compiled superblock: a decoded slot with its opcode
/// match and operand routing already performed. `lat` is the writeback
/// latency, precomputed.
#[derive(Debug, Clone, Copy)]
enum VliwOp {
    /// End of one bundle: drain writebacks, advance `pc`/`cycle`.
    Next,
    /// One-input ALU operation (`b` is the input).
    Alu1 {
        op: Opcode,
        b: VSrc,
        dst: u32,
        rf: u16,
        lat: u32,
    },
    /// Two-input ALU operation.
    Alu2 {
        op: Opcode,
        a: VSrc,
        b: VSrc,
        dst: u32,
        rf: u16,
        lat: u32,
    },
    /// Load (`b` is the address).
    Load {
        op: Opcode,
        b: VSrc,
        dst: u32,
        rf: u16,
        lat: u32,
    },
    /// Store (`a` value, `b` address).
    Store { op: Opcode, a: VSrc, b: VSrc },
    /// Long immediate (writes back at the end of the next cycle).
    Limm { dst: u32, rf: u16, v: i32 },
    /// Halt (terminal bundles only).
    Halt,
    /// Unconditional jump (terminal bundles only; `b` is the target).
    Jump { b: VSrc },
    /// Conditional jump (terminal bundles only; `b` condition, `a` target).
    CJump { a: VSrc, b: VSrc, nz: bool },
}

/// A compiled superblock (see [`crate::tta::TtaBlockFn`] — same contract).
pub(crate) type VliwBlockFn = Box<
    dyn for<'e> Fn(&mut VliwEngine<'e>, u64, &mut Option<(u32, u32)>) -> Result<bool, SimError>
        + Send
        + Sync,
>;

/// Compiled-tier state for one VLIW program: whole superblocks plus
/// delay-slot segments (see [`crate::tta::TtaTiers`] — same two-table
/// shape and dispatch contract).
pub(crate) struct VliwTiers {
    pub(crate) main: TierTable<VliwBlockFn>,
    /// Fall-through windows of taken jumps, keyed by entry pc and tagged
    /// with the segment length they were compiled for.
    pub(crate) delay: TierTable<(u32, VliwBlockFn)>,
}

impl VliwTiers {
    pub(crate) fn new(len: usize, threshold: u32) -> VliwTiers {
        VliwTiers {
            main: TierTable::new(len, threshold),
            delay: TierTable::new(len, threshold),
        }
    }

    pub(crate) fn compiled_count(&self) -> usize {
        self.main.compiled_count() + self.delay.compiled_count()
    }
}

/// Execute a compiled block: straight-line thunk dispatch with the
/// block's static statistics applied once at the end.
fn exec_vliw_block(
    ops: &[VliwOp],
    delta: &SimStats,
    eng: &mut VliwEngine,
    pc0: u32,
    cycle0: u64,
    pending_jump: &mut Option<(u32, u32)>,
) -> Result<bool, SimError> {
    let mut pc = pc0;
    let mut cycle = cycle0;
    let mut halt = false;
    for op in ops {
        match *op {
            VliwOp::Next => {
                eng.drain(&mut NoProfile, cycle)?;
                pc += 1;
                cycle += 1;
            }
            VliwOp::Alu1 {
                op,
                b,
                dst,
                rf,
                lat,
            } => {
                let r = op.eval_alu(b.read(&eng.rf), 0);
                eng.enqueue(cycle + lat as u64, dst, rf, r);
            }
            VliwOp::Alu2 {
                op,
                a,
                b,
                dst,
                rf,
                lat,
            } => {
                let r = op.eval_alu(a.read(&eng.rf), b.read(&eng.rf));
                eng.enqueue(cycle + lat as u64, dst, rf, r);
            }
            VliwOp::Load {
                op,
                b,
                dst,
                rf,
                lat,
            } => {
                let addr = b.read(&eng.rf) as u32;
                let v = eng.mem_load(op, addr, cycle)?;
                eng.enqueue(cycle + lat as u64, dst, rf, v);
            }
            VliwOp::Store { op, a, b } => {
                let addr = b.read(&eng.rf) as u32;
                let v = a.read(&eng.rf);
                eng.mem_store(op, addr, v, cycle)?;
            }
            VliwOp::Limm { dst, rf, v } => eng.enqueue(cycle + 1, dst, rf, v),
            VliwOp::Halt => halt = true,
            VliwOp::Jump { b } => {
                let target = b.read(&eng.rf) as u32;
                eng.take_jump(pc, target, pending_jump)?;
            }
            VliwOp::CJump { a, b, nz } => {
                if (b.read(&eng.rf) != 0) == nz {
                    let target = a.read(&eng.rf) as u32;
                    eng.take_jump(pc, target, pending_jump)?;
                }
            }
        }
    }
    eng.stats.accumulate(delta);
    Ok(halt)
}

/// Compile the superblock `[pc0, pc0 + len)` into a chain of resolved
/// thunks. Register-file writes are charged dynamically by the drain;
/// everything statically known (instructions, payload, operand reads,
/// loads/stores, limms) is folded into one per-block delta. The
/// reference engine charges an `rf_reads` for *every* register operand,
/// including ones a one-input operation never evaluates — the delta
/// preserves that.
fn compile_vliw_block(
    dec_slots: &[DecSlot],
    dec_bundles: &[DecBundle],
    pc0: u32,
    len: u32,
) -> VliwBlockFn {
    let mut ops: Vec<VliwOp> = Vec::new();
    let mut delta = SimStats::default();
    for i in 0..len {
        let pc = pc0 + i;
        let bundle = dec_bundles[pc as usize];
        delta.instructions += 1;
        for si in bundle.slots.0..bundle.slots.1 {
            match dec_slots[si as usize] {
                DecSlot::Limm { dst, dst_rf, value } => {
                    delta.payload += 1;
                    delta.limms += 1;
                    ops.push(VliwOp::Limm {
                        dst,
                        rf: dst_rf,
                        v: value,
                    });
                }
                DecSlot::Op {
                    op,
                    a,
                    b,
                    dst,
                    dst_rf,
                } => {
                    delta.payload += 1;
                    let mut vsrc = |s: DecOpSrc| match s {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            delta.rf_reads += 1;
                            Some(VSrc::Reg(i))
                        }
                        DecOpSrc::Imm(v) => Some(VSrc::Imm(v)),
                    };
                    let va = vsrc(a);
                    let vb = vsrc(b);
                    let lat = op.latency();
                    match op.class() {
                        OpClass::Alu => {
                            assert!(dst != NO_DST, "ALU op writes a register");
                            ops.push(if op.num_inputs() == 1 {
                                VliwOp::Alu1 {
                                    op,
                                    b: vb.unwrap(),
                                    dst,
                                    rf: dst_rf,
                                    lat,
                                }
                            } else {
                                VliwOp::Alu2 {
                                    op,
                                    a: va.unwrap(),
                                    b: vb.unwrap(),
                                    dst,
                                    rf: dst_rf,
                                    lat,
                                }
                            });
                        }
                        OpClass::Lsu => {
                            if op.is_load() {
                                delta.loads += 1;
                                assert!(dst != NO_DST, "load writes a register");
                                ops.push(VliwOp::Load {
                                    op,
                                    b: vb.unwrap(),
                                    dst,
                                    rf: dst_rf,
                                    lat,
                                });
                            } else {
                                delta.stores += 1;
                                ops.push(VliwOp::Store {
                                    op,
                                    a: va.unwrap(),
                                    b: vb.unwrap(),
                                });
                            }
                        }
                        OpClass::Ctrl => ops.push(match op {
                            Opcode::Halt => VliwOp::Halt,
                            Opcode::Jump => VliwOp::Jump { b: vb.unwrap() },
                            Opcode::CJnz => VliwOp::CJump {
                                a: va.unwrap(),
                                b: vb.unwrap(),
                                nz: true,
                            },
                            Opcode::CJz => VliwOp::CJump {
                                a: va.unwrap(),
                                b: vb.unwrap(),
                                nz: false,
                            },
                            _ => unreachable!("non-transfer control opcode"),
                        }),
                    }
                }
            }
        }
        ops.push(VliwOp::Next);
    }
    let ops = ops.into_boxed_slice();
    Box::new(move |eng, cycle0, pending_jump| {
        exec_vliw_block(&ops, &delta, eng, pc0, cycle0, pending_jump)
    })
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink. The dispatch
/// structure and its invariants mirror `crate::tta::run_tta_with`.
pub(crate) fn run_vliw_with<S: ProfileSink>(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&VliwTiers>,
    io: Option<IoCtx<'_>>,
) -> Result<SimResult, SimError> {
    let mut tc = TierCounts::default();
    let r = run_vliw_inner(m, program, memory, fuel, sink, tier, io, &mut tc);
    tc.flush();
    r
}

#[allow(clippy::too_many_arguments)]
fn run_vliw_inner<S: ProfileSink>(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
    tier: Option<&VliwTiers>,
    io: Option<IoCtx<'_>>,
    tc: &mut TierCounts,
) -> Result<SimResult, SimError> {
    let rf = FlatRf::new(m);
    let (dec_slots, dec_bundles) = decode(&rf, program);
    let blocks = BlockMap::of_vliw(program);
    let mut eng = VliwEngine {
        m,
        dec_slots: &dec_slots,
        dec_bundles: &dec_bundles,
        rf,
        wheel: Default::default(),
        writes_per_rf: vec![0u32; m.rfs.len()],
        min_write_ports: m
            .rfs
            .iter()
            .map(|r| r.write_ports as u32)
            .min()
            .unwrap_or(0),
        memory,
        stats: SimStats::default(),
        io,
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;
    let mut shadow: Option<VliwShadow> = None;

    loop {
        // Superblock entry: the only place fuel, the pc bound and the
        // delay-slot budget are examined.
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= eng.dec_bundles.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        // Interrupt boundary: deliver a pending interrupt (re-entering the
        // loop at the handler) or learn how many cycles may run before the
        // next one can arrive. Polling only here keeps every tier's
        // delivery points identical by construction.
        let win = match eng.io_boundary(
            sink,
            &mut pc,
            &mut cycle,
            fuel,
            &mut pending_jump,
            &mut shadow,
        )? {
            Some(win) => win,
            None => continue,
        };
        let full = blocks.run_len(pc) as u64;

        // Tier-2 dispatch (see `crate::tta::run_tta_with`): unclamped
        // entries run whole compiled superblocks, the fall-through
        // window of a taken jump runs as a compiled delay segment.
        if S::PASSIVE {
            if let Some(tab) = tier {
                match pending_jump {
                    None if fuel - cycle >= full && win >= full => {
                        let block = match tab.main.entry(pc) {
                            TierEntry::Compiled(b) => Some(b),
                            TierEntry::Promote => {
                                tc.promotions += 1;
                                tab.main.install(
                                    pc,
                                    compile_vliw_block(&dec_slots, &dec_bundles, pc, full as u32),
                                );
                                tab.main.get(pc)
                            }
                            TierEntry::Cold => None,
                        };
                        if let Some(b) = block {
                            tc.entries += 1;
                            let halt = b(&mut eng, cycle, &mut pending_jump)?;
                            pc += full as u32 - 1;
                            cycle += full;
                            if halt {
                                if eng.iret(&mut pc, &mut cycle, &mut pending_jump, &mut shadow)? {
                                    continue;
                                }
                                return eng.finish(cycle);
                            }
                            match pending_jump.take() {
                                Some((0, target)) => pc = target,
                                Some((n, target)) => {
                                    pending_jump = Some((n - 1, target));
                                    pc += 1;
                                }
                                None => pc += 1,
                            }
                            continue;
                        }
                    }
                    Some((k, target)) => {
                        // Delay-slot window: min(k + 1, full) bundles run
                        // on the fall-through path before the redirect
                        // (or the run's own terminal, whose nested
                        // control transfer faults identically in both
                        // tiers).
                        let dlen = (k as u64 + 1).min(full);
                        if fuel - cycle >= dlen && win >= dlen {
                            let seg = match tab.delay.entry(pc) {
                                TierEntry::Compiled(s) => Some(s),
                                TierEntry::Promote => {
                                    tc.promotions += 1;
                                    let b = compile_vliw_block(
                                        &dec_slots,
                                        &dec_bundles,
                                        pc,
                                        dlen as u32,
                                    );
                                    tab.delay.install(pc, (dlen as u32, b));
                                    tab.delay.get(pc)
                                }
                                TierEntry::Cold => None,
                            };
                            // A pc can be entered with different residual
                            // delay budgets; only the length the segment
                            // was compiled for may run it.
                            if let Some(b) = seg.filter(|s| s.0 as u64 == dlen).map(|s| &s.1) {
                                tc.entries += 1;
                                let halt = b(&mut eng, cycle, &mut pending_jump)?;
                                cycle += dlen;
                                if halt {
                                    if eng.iret(
                                        &mut pc,
                                        &mut cycle,
                                        &mut pending_jump,
                                        &mut shadow,
                                    )? {
                                        continue;
                                    }
                                    return eng.finish(cycle);
                                }
                                if dlen < full {
                                    // Pure delay window: ends exactly at
                                    // the redirect.
                                    debug_assert_eq!(dlen, k as u64 + 1);
                                    pending_jump = None;
                                    pc = target;
                                } else {
                                    // The whole run fits in the window:
                                    // its terminal ran; mirror the
                                    // interpreted bookkeeping.
                                    let k2 = k - (dlen as u32 - 1);
                                    if k2 == 0 {
                                        pending_jump = None;
                                        pc = target;
                                    } else {
                                        pending_jump = Some((k2 - 1, target));
                                        pc += dlen as u32;
                                    }
                                }
                                continue;
                            }
                            tc.fallbacks += 1;
                        } else if tab.delay.get(pc).is_some() {
                            tc.fallbacks += 1;
                        }
                    }
                    None => {
                        if tab.main.get(pc).is_some() {
                            tc.fallbacks += 1;
                        }
                    }
                }
            }
        }

        let mut len = full;
        if let Some((k, _)) = pending_jump {
            // k delay slots remain, then the redirect: at most k + 1 more
            // bundles execute on the fall-through path.
            len = len.min(k as u64 + 1);
        }
        len = len.min(fuel - cycle).min(win);
        // Only the run's terminal bundle can issue control operations,
        // and it is part of this dispatch iff nothing clamped `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, cycle, &mut pending_jump)?;
            pc += 1;
            cycle += 1;
        }
        // Batch the per-cycle delay-slot decrements of the straight
        // portion; a redirect inside it only happens when the terminal
        // bundle was clamped away.
        if let Some((k, target)) = pending_jump {
            if k as u64 + 1 == straight {
                pc = target;
                pending_jump = None;
            } else {
                pending_jump = Some((k - straight as u32, target));
            }
        }

        if terminal {
            let halt = eng.step::<S, true>(sink, pc, cycle, &mut pending_jump)?;
            cycle += 1;
            if halt {
                if eng.iret(&mut pc, &mut cycle, &mut pending_jump, &mut shadow)? {
                    continue;
                }
                return eng.finish(cycle);
            }
            match pending_jump.take() {
                Some((0, target)) => pc = target,
                Some((n, target)) => {
                    pending_jump = Some((n - 1, target));
                    pc += 1;
                }
                None => pc += 1,
            }
        }
    }
}
