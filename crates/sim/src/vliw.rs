//! Cycle-accurate simulator for the operation-triggered VLIW cores.
//!
//! Matches the timing contract of `tta-compiler::vliw_sched`: a bundle at
//! cycle `t` reads all register operands at `t`, results write back at the
//! end of cycle `t + latency` (becoming readable at `t + latency + 1` —
//! there is no forwarding network, per the paper's synthesised VLIW), long
//! immediates write back at the end of `t + 1`, stores commit at `t`, and
//! control transfers take effect after the machine's delay slots.
//!
//! Write-port overuse and in-flight-jump violations raise
//! [`SimError::Machine`].
//!
//! Bundles are predecoded once per run — empty and `LimmCont` slots are
//! dropped and register references resolved to flat indices — and the
//! per-cycle write-port counters live in a reusable buffer, so the cycle
//! loop performs no heap allocation. Dispatch is fused-block: the outer
//! loop walks one superblock per iteration, so the fuel check, the pc
//! bounds check and the delay-slot bookkeeping run once per block and the
//! interior bundles execute in a monomorphisation without the control arm
//! (see `crate::tta` for the dispatch-loop invariants — both engines share
//! the same structure).

use crate::profile::{finish_vliw, Collector, GuestProfile, NoProfile, ProfileSink, TraceSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{DecOpSrc, FlatRf, NO_DST};
use tta_isa::{BlockMap, Operation, VliwBundle, VliwSlot, RETVAL_ADDR};
use tta_model::{mem, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
struct Writeback {
    due: u64,
    /// Flat register index.
    flat: u32,
    /// Register-file index (write-port accounting).
    rf: u16,
    value: i32,
}

/// One decoded slot: an operation or a long-immediate head. `LimmCont`
/// and empty slots vanish at decode time.
#[derive(Debug, Clone, Copy)]
enum DecSlot {
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
        /// Destination RF (write-port accounting).
        dst_rf: u16,
    },
    Limm {
        dst: u32,
        dst_rf: u16,
        value: i32,
    },
}

/// One bundle as a range into the flat decoded-slot array.
#[derive(Debug, Clone, Copy)]
struct DecBundle {
    slots: (u32, u32),
}

fn decode(rf: &FlatRf, program: &[VliwBundle]) -> (Vec<DecSlot>, Vec<DecBundle>) {
    let mut slots = Vec::new();
    let mut bundles = Vec::with_capacity(program.len());
    for bundle in program {
        let s0 = slots.len() as u32;
        for slot in &bundle.slots {
            match slot {
                None | Some(VliwSlot::LimmCont) => {}
                Some(VliwSlot::LimmHead { dst, value }) => slots.push(DecSlot::Limm {
                    dst: rf.flat(*dst),
                    dst_rf: dst.rf.0,
                    value: *value,
                }),
                Some(VliwSlot::Op(Operation { op, dst, a, b, .. })) => slots.push(DecSlot::Op {
                    op: *op,
                    a: DecOpSrc::decode(rf, *a),
                    b: DecOpSrc::decode(rf, *b),
                    dst: dst.map_or(NO_DST, |d| rf.flat(d)),
                    dst_rf: dst.map_or(0, |d| d.rf.0),
                }),
            }
        }
        bundles.push(DecBundle {
            slots: (s0, slots.len() as u32),
        });
    }
    (slots, bundles)
}

/// Run a VLIW program.
pub fn run_vliw(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_vliw_with(m, program, memory, fuel, &mut NoProfile)
}

/// Like [`run_vliw`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_vliw_traced(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut sink = TraceSink::for_program(program.len());
    let r = run_vliw_with(m, program, memory, fuel, &mut sink)?;
    Ok((r, sink.trace))
}

/// Like [`run_vliw`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_vliw_profiled(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::with_write_hist(m, program.len());
    let r = run_vliw_with(m, program, memory, fuel, &mut sink)?;
    let mut p = finish_vliw(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

/// Mutable datapath state of one run, shared by every step of the block
/// dispatch loop.
struct VliwEngine<'a> {
    m: &'a Machine,
    dec_slots: &'a [DecSlot],
    dec_bundles: &'a [DecBundle],
    rf: FlatRf,
    pending: Vec<Writeback>,
    /// Per-cycle write-port usage, reused across cycles.
    writes_per_rf: Vec<u32>,
    memory: Vec<u8>,
    stats: SimStats,
}

impl VliwEngine<'_> {
    /// One architectural cycle at `pc`. With `CTRL = false` the caller
    /// guarantees (via the block map) that the bundle issues no control
    /// operation, and the control arm is compiled out of the
    /// monomorphisation. Returns whether the core halted.
    #[inline(always)]
    fn step<S: ProfileSink, const CTRL: bool>(
        &mut self,
        sink: &mut S,
        pc: u32,
        cycle: u64,
        pending_jump: &mut Option<(u32, u32)>,
    ) -> Result<bool, SimError> {
        let m = self.m;
        let bundle = self.dec_bundles[pc as usize];
        self.stats.instructions += 1;
        sink.retire(pc);

        // Execute slots (reads all happen against the pre-cycle RF state:
        // writebacks apply at end of cycle).
        let mut halt = false;
        for slot in &self.dec_slots[bundle.slots.0 as usize..bundle.slots.1 as usize] {
            match *slot {
                DecSlot::Limm { dst, dst_rf, value } => {
                    self.stats.payload += 1;
                    self.stats.limms += 1;
                    self.pending.push(Writeback {
                        due: cycle + 1,
                        flat: dst,
                        rf: dst_rf,
                        value,
                    });
                }
                DecSlot::Op {
                    op,
                    a,
                    b,
                    dst,
                    dst_rf,
                } => {
                    self.stats.payload += 1;
                    let va = match a {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            self.stats.rf_reads += 1;
                            Some(self.rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    let vb = match b {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            self.stats.rf_reads += 1;
                            Some(self.rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    match op.class() {
                        OpClass::Alu => {
                            let r = if op.num_inputs() == 1 {
                                op.eval_alu(vb.unwrap(), 0)
                            } else {
                                op.eval_alu(va.unwrap(), vb.unwrap())
                            };
                            assert!(dst != NO_DST, "ALU op writes a register");
                            self.pending.push(Writeback {
                                due: cycle + op.latency() as u64,
                                flat: dst,
                                rf: dst_rf,
                                value: r,
                            });
                        }
                        OpClass::Lsu => {
                            if op.is_load() {
                                self.stats.loads += 1;
                                let v = mem::load(&self.memory, op, vb.unwrap() as u32)?;
                                assert!(dst != NO_DST, "load writes a register");
                                self.pending.push(Writeback {
                                    due: cycle + op.latency() as u64,
                                    flat: dst,
                                    rf: dst_rf,
                                    value: v,
                                });
                            } else {
                                self.stats.stores += 1;
                                mem::store(&mut self.memory, op, vb.unwrap() as u32, va.unwrap())?;
                            }
                        }
                        OpClass::Ctrl if CTRL => match op {
                            Opcode::Halt => halt = true,
                            Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                                let (taken, target) = match op {
                                    Opcode::Jump => (true, vb.unwrap() as u32),
                                    Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                    Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                    _ => unreachable!(),
                                };
                                if taken {
                                    if pending_jump.is_some() {
                                        return Err(SimError::Machine(format!(
                                            "jump during in-flight jump (pc {pc})"
                                        )));
                                    }
                                    self.stats.branches_taken += 1;
                                    *pending_jump = Some((m.jump_delay_slots, target));
                                }
                            }
                            _ => unreachable!(),
                        },
                        OpClass::Ctrl => {
                            unreachable!("control operation inside a superblock interior")
                        }
                    }
                }
            }
        }

        // End of cycle: apply due writebacks, checking port budgets. This
        // stays per-cycle even inside a block — the writeback queue and
        // the write-pressure histogram are cycle-granular by contract.
        self.writes_per_rf.fill(0);
        let mut k = 0;
        while k < self.pending.len() {
            if self.pending[k].due == cycle {
                let wb = self.pending.swap_remove(k);
                self.writes_per_rf[wb.rf as usize] += 1;
                self.stats.rf_writes += 1;
                self.rf.vals[wb.flat as usize] = wb.value;
            } else {
                k += 1;
            }
        }
        for (ri, &n) in self.writes_per_rf.iter().enumerate() {
            if n > m.rfs[ri].write_ports as u32 {
                return Err(SimError::Machine(format!(
                    "{n} writebacks to {} in cycle {cycle} but only {} ports",
                    m.rfs[ri].name, m.rfs[ri].write_ports
                )));
            }
        }
        sink.writeback_pressure(&self.writes_per_rf);
        Ok(halt)
    }
}

/// The generic engine behind all public entry points: one superblock per
/// outer-loop iteration, monomorphised over the profile sink. The dispatch
/// structure and its invariants mirror `crate::tta::run_tta_with`.
pub(crate) fn run_vliw_with<S: ProfileSink>(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let rf = FlatRf::new(m);
    let (dec_slots, dec_bundles) = decode(&rf, program);
    let blocks = BlockMap::of_vliw(program);
    let mut eng = VliwEngine {
        m,
        dec_slots: &dec_slots,
        dec_bundles: &dec_bundles,
        rf,
        pending: Vec::new(),
        writes_per_rf: vec![0u32; m.rfs.len()],
        memory,
        stats: SimStats::default(),
    };
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    // (remaining delay slots, target)
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        // Superblock entry: the only place fuel, the pc bound and the
        // delay-slot budget are examined.
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        if pc as usize >= eng.dec_bundles.len() {
            return Err(SimError::PcOutOfRange(pc));
        }
        let full = blocks.run_len(pc) as u64;
        let mut len = full;
        if let Some((k, _)) = pending_jump {
            // k delay slots remain, then the redirect: at most k + 1 more
            // bundles execute on the fall-through path.
            len = len.min(k as u64 + 1);
        }
        len = len.min(fuel - cycle);
        // Only the run's terminal bundle can issue control operations,
        // and it is part of this dispatch iff nothing clamped `len`.
        let terminal = len == full;
        let straight = if terminal { len - 1 } else { len };

        for _ in 0..straight {
            eng.step::<S, false>(sink, pc, cycle, &mut pending_jump)?;
            pc += 1;
            cycle += 1;
        }
        // Batch the per-cycle delay-slot decrements of the straight
        // portion; a redirect inside it only happens when the terminal
        // bundle was clamped away.
        if let Some((k, target)) = pending_jump {
            if k as u64 + 1 == straight {
                pc = target;
                pending_jump = None;
            } else {
                pending_jump = Some((k - straight as u32, target));
            }
        }

        if terminal {
            let halt = eng.step::<S, true>(sink, pc, cycle, &mut pending_jump)?;
            cycle += 1;
            if halt {
                let ret = mem::load(&eng.memory, Opcode::Ldw, RETVAL_ADDR)?;
                return Ok(SimResult {
                    cycles: cycle,
                    ret,
                    memory: eng.memory,
                    stats: eng.stats,
                });
            }
            match pending_jump.take() {
                Some((0, target)) => pc = target,
                Some((n, target)) => {
                    pending_jump = Some((n - 1, target));
                    pc += 1;
                }
                None => pc += 1,
            }
        }
    }
}
