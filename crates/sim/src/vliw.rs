//! Cycle-accurate simulator for the operation-triggered VLIW cores.
//!
//! Matches the timing contract of `tta-compiler::vliw_sched`: a bundle at
//! cycle `t` reads all register operands at `t`, results write back at the
//! end of cycle `t + latency` (becoming readable at `t + latency + 1` —
//! there is no forwarding network, per the paper's synthesised VLIW), long
//! immediates write back at the end of `t + 1`, stores commit at `t`, and
//! control transfers take effect after the machine's delay slots.
//!
//! Write-port overuse and in-flight-jump violations raise
//! [`SimError::Machine`].
//!
//! Bundles are predecoded once per run — empty and `LimmCont` slots are
//! dropped and register references resolved to flat indices — and the
//! per-cycle write-port counters live in a reusable buffer, so the cycle
//! loop performs no heap allocation.

use crate::profile::{finish_vliw, Collector, GuestProfile, NoProfile, ProfileSink};
use crate::result::{SimError, SimResult, SimStats};
use crate::state::{trace_capacity, DecOpSrc, FlatRf, NO_DST};
use tta_isa::{Operation, VliwBundle, VliwSlot, RETVAL_ADDR};
use tta_model::{mem, Machine, OpClass, Opcode};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
struct Writeback {
    due: u64,
    /// Flat register index.
    flat: u32,
    /// Register-file index (write-port accounting).
    rf: u16,
    value: i32,
}

/// One decoded slot: an operation or a long-immediate head. `LimmCont`
/// and empty slots vanish at decode time.
#[derive(Debug, Clone, Copy)]
enum DecSlot {
    Op {
        op: Opcode,
        a: DecOpSrc,
        b: DecOpSrc,
        /// Flat destination index, [`NO_DST`] if the op writes nothing.
        dst: u32,
        /// Destination RF (write-port accounting).
        dst_rf: u16,
    },
    Limm {
        dst: u32,
        dst_rf: u16,
        value: i32,
    },
}

/// One bundle as a range into the flat decoded-slot array.
#[derive(Debug, Clone, Copy)]
struct DecBundle {
    slots: (u32, u32),
}

fn decode(rf: &FlatRf, program: &[VliwBundle]) -> (Vec<DecSlot>, Vec<DecBundle>) {
    let mut slots = Vec::new();
    let mut bundles = Vec::with_capacity(program.len());
    for bundle in program {
        let s0 = slots.len() as u32;
        for slot in &bundle.slots {
            match slot {
                None | Some(VliwSlot::LimmCont) => {}
                Some(VliwSlot::LimmHead { dst, value }) => slots.push(DecSlot::Limm {
                    dst: rf.flat(*dst),
                    dst_rf: dst.rf.0,
                    value: *value,
                }),
                Some(VliwSlot::Op(Operation { op, dst, a, b, .. })) => slots.push(DecSlot::Op {
                    op: *op,
                    a: DecOpSrc::decode(rf, *a),
                    b: DecOpSrc::decode(rf, *b),
                    dst: dst.map_or(NO_DST, |d| rf.flat(d)),
                    dst_rf: dst.map_or(0, |d| d.rf.0),
                }),
            }
        }
        bundles.push(DecBundle {
            slots: (s0, slots.len() as u32),
        });
    }
    (slots, bundles)
}

/// Run a VLIW program.
pub fn run_vliw(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_vliw_inner(m, program, memory, fuel, None, &mut NoProfile)
}

/// Like [`run_vliw`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_vliw_traced(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut trace = Vec::with_capacity(trace_capacity(program.len()));
    let r = run_vliw_inner(m, program, memory, fuel, Some(&mut trace), &mut NoProfile)?;
    Ok((r, trace))
}

/// Like [`run_vliw`], also collecting a [`GuestProfile`]. The unprofiled
/// entry points monomorphise the same loop over [`NoProfile`], so their
/// results are bit-identical (see `crate::profile`).
pub fn run_vliw_profiled(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let mut sink = Collector::with_write_hist(m, program.len());
    let r = run_vliw_inner(m, program, memory, fuel, None, &mut sink)?;
    let mut p = finish_vliw(m, program, sink);
    p.cycles = r.cycles;
    Ok((r, p))
}

fn run_vliw_inner<S: ProfileSink>(
    m: &Machine,
    program: &[VliwBundle],
    mut memory: Vec<u8>,
    fuel: u64,
    mut trace: Option<&mut Vec<u32>>,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let mut rf = FlatRf::new(m);
    let (dec_slots, dec_bundles) = decode(&rf, program);
    let mut stats = SimStats::default();
    let mut pending: Vec<Writeback> = Vec::new();
    // Per-cycle write-port usage, reused across cycles.
    let mut writes_per_rf = vec![0u32; m.rfs.len()];
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        let Some(bundle) = dec_bundles.get(pc as usize) else {
            return Err(SimError::PcOutOfRange(pc));
        };
        stats.instructions += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(pc);
        }
        sink.retire(pc);

        // Execute slots (reads all happen against the pre-cycle RF state:
        // writebacks apply at end of cycle).
        let mut halt = false;
        for slot in &dec_slots[bundle.slots.0 as usize..bundle.slots.1 as usize] {
            match *slot {
                DecSlot::Limm { dst, dst_rf, value } => {
                    stats.payload += 1;
                    stats.limms += 1;
                    pending.push(Writeback {
                        due: cycle + 1,
                        flat: dst,
                        rf: dst_rf,
                        value,
                    });
                }
                DecSlot::Op {
                    op,
                    a,
                    b,
                    dst,
                    dst_rf,
                } => {
                    stats.payload += 1;
                    let va = match a {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            stats.rf_reads += 1;
                            Some(rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    let vb = match b {
                        DecOpSrc::None => None,
                        DecOpSrc::Reg(i) => {
                            stats.rf_reads += 1;
                            Some(rf.vals[i as usize])
                        }
                        DecOpSrc::Imm(v) => Some(v),
                    };
                    match op.class() {
                        OpClass::Alu => {
                            let r = if op.num_inputs() == 1 {
                                op.eval_alu(vb.unwrap(), 0)
                            } else {
                                op.eval_alu(va.unwrap(), vb.unwrap())
                            };
                            assert!(dst != NO_DST, "ALU op writes a register");
                            pending.push(Writeback {
                                due: cycle + op.latency() as u64,
                                flat: dst,
                                rf: dst_rf,
                                value: r,
                            });
                        }
                        OpClass::Lsu => {
                            if op.is_load() {
                                stats.loads += 1;
                                let v = mem::load(&memory, op, vb.unwrap() as u32)?;
                                assert!(dst != NO_DST, "load writes a register");
                                pending.push(Writeback {
                                    due: cycle + op.latency() as u64,
                                    flat: dst,
                                    rf: dst_rf,
                                    value: v,
                                });
                            } else {
                                stats.stores += 1;
                                mem::store(&mut memory, op, vb.unwrap() as u32, va.unwrap())?;
                            }
                        }
                        OpClass::Ctrl => match op {
                            Opcode::Halt => halt = true,
                            Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                                let (taken, target) = match op {
                                    Opcode::Jump => (true, vb.unwrap() as u32),
                                    Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                    Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                    _ => unreachable!(),
                                };
                                if taken {
                                    if pending_jump.is_some() {
                                        return Err(SimError::Machine(format!(
                                            "jump during in-flight jump (pc {pc})"
                                        )));
                                    }
                                    stats.branches_taken += 1;
                                    pending_jump = Some((m.jump_delay_slots, target));
                                }
                            }
                            _ => unreachable!(),
                        },
                    }
                }
            }
        }

        // End of cycle: apply due writebacks, checking port budgets.
        writes_per_rf.fill(0);
        let mut k = 0;
        while k < pending.len() {
            if pending[k].due == cycle {
                let wb = pending.swap_remove(k);
                writes_per_rf[wb.rf as usize] += 1;
                stats.rf_writes += 1;
                rf.vals[wb.flat as usize] = wb.value;
            } else {
                k += 1;
            }
        }
        for (ri, &n) in writes_per_rf.iter().enumerate() {
            if n > m.rfs[ri].write_ports as u32 {
                return Err(SimError::Machine(format!(
                    "{n} writebacks to {} in cycle {cycle} but only {} ports",
                    m.rfs[ri].name, m.rfs[ri].write_ports
                )));
            }
        }
        sink.writeback_pressure(&writes_per_rf);

        cycle += 1;
        if halt {
            let ret = mem::load(&memory, Opcode::Ldw, RETVAL_ADDR)?;
            return Ok(SimResult {
                cycles: cycle,
                ret,
                memory,
                stats,
            });
        }
        match pending_jump.take() {
            Some((0, target)) => pc = target,
            Some((n, target)) => {
                pending_jump = Some((n - 1, target));
                pc += 1;
            }
            None => pc += 1,
        }
    }
}
