//! Cycle-accurate simulator for the operation-triggered VLIW cores.
//!
//! Matches the timing contract of `tta-compiler::vliw_sched`: a bundle at
//! cycle `t` reads all register operands at `t`, results write back at the
//! end of cycle `t + latency` (becoming readable at `t + latency + 1` —
//! there is no forwarding network, per the paper's synthesised VLIW), long
//! immediates write back at the end of `t + 1`, stores commit at `t`, and
//! control transfers take effect after the machine's delay slots.
//!
//! Write-port overuse and in-flight-jump violations raise
//! [`SimError::Machine`].

use crate::result::{SimError, SimResult, SimStats};
use tta_isa::{OpSrc, Operation, VliwBundle, VliwSlot, RETVAL_ADDR};
use tta_model::{mem, Machine, OpClass, Opcode, RegRef};

/// Maximum simulated cycles before declaring a runaway program.
pub const DEFAULT_FUEL: u64 = 200_000_000;

#[derive(Debug, Clone, Copy)]
struct Writeback {
    due: u64,
    reg: RegRef,
    value: i32,
}

/// Run a VLIW program.
pub fn run_vliw(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    run_vliw_inner(m, program, memory, fuel, None)
}

/// Like [`run_vliw`], also recording the program counter of every executed
/// instruction (for instruction-memory hierarchy studies).
pub fn run_vliw_traced(
    m: &Machine,
    program: &[VliwBundle],
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    let mut trace = Vec::new();
    let r = run_vliw_inner(m, program, memory, fuel, Some(&mut trace))?;
    Ok((r, trace))
}

fn run_vliw_inner(
    m: &Machine,
    program: &[VliwBundle],
    mut memory: Vec<u8>,
    fuel: u64,
    mut trace: Option<&mut Vec<u32>>,
) -> Result<SimResult, SimError> {
    let mut rf: Vec<Vec<i32>> = m.rfs.iter().map(|r| vec![0; r.regs as usize]).collect();
    let mut stats = SimStats::default();
    let mut pending: Vec<Writeback> = Vec::new();
    let mut pc: u32 = 0;
    let mut cycle: u64 = 0;
    let mut pending_jump: Option<(u32, u32)> = None;

    loop {
        if cycle >= fuel {
            return Err(SimError::OutOfFuel);
        }
        let Some(bundle) = program.get(pc as usize) else {
            return Err(SimError::PcOutOfRange(pc));
        };
        stats.instructions += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(pc);
        }

        let read = |rf: &Vec<Vec<i32>>, stats: &mut SimStats, s: OpSrc| -> i32 {
            match s {
                OpSrc::Reg(r) => {
                    stats.rf_reads += 1;
                    rf[r.rf.0 as usize][r.index as usize]
                }
                OpSrc::Imm(v) => v,
            }
        };

        // Execute slots (reads all happen against the pre-cycle RF state:
        // writebacks apply at end of cycle).
        let mut halt = false;
        for slot in bundle.slots.iter() {
            match slot {
                None | Some(VliwSlot::LimmCont) => continue,
                Some(VliwSlot::LimmHead { dst, value }) => {
                    stats.payload += 1;
                    stats.limms += 1;
                    pending.push(Writeback { due: cycle + 1, reg: *dst, value: *value });
                }
                Some(VliwSlot::Op(Operation { op, dst, a, b, .. })) => {
                    stats.payload += 1;
                    let va = a.map(|s| read(&rf, &mut stats, s));
                    let vb = b.map(|s| read(&rf, &mut stats, s));
                    match op.class() {
                        OpClass::Alu => {
                            let r = if op.num_inputs() == 1 {
                                op.eval_alu(vb.unwrap(), 0)
                            } else {
                                op.eval_alu(va.unwrap(), vb.unwrap())
                            };
                            pending.push(Writeback {
                                due: cycle + op.latency() as u64,
                                reg: dst.expect("ALU op writes a register"),
                                value: r,
                            });
                        }
                        OpClass::Lsu => {
                            if op.is_load() {
                                stats.loads += 1;
                                let v = mem::load(&memory, *op, vb.unwrap() as u32)?;
                                pending.push(Writeback {
                                    due: cycle + op.latency() as u64,
                                    reg: dst.expect("load writes a register"),
                                    value: v,
                                });
                            } else {
                                stats.stores += 1;
                                mem::store(&mut memory, *op, vb.unwrap() as u32, va.unwrap())?;
                            }
                        }
                        OpClass::Ctrl => match op {
                            Opcode::Halt => halt = true,
                            Opcode::Jump | Opcode::CJnz | Opcode::CJz => {
                                let (taken, target) = match op {
                                    Opcode::Jump => (true, vb.unwrap() as u32),
                                    Opcode::CJnz => (vb.unwrap() != 0, va.unwrap() as u32),
                                    Opcode::CJz => (vb.unwrap() == 0, va.unwrap() as u32),
                                    _ => unreachable!(),
                                };
                                if taken {
                                    if pending_jump.is_some() {
                                        return Err(SimError::Machine(format!(
                                            "jump during in-flight jump (pc {pc})"
                                        )));
                                    }
                                    stats.branches_taken += 1;
                                    pending_jump = Some((m.jump_delay_slots, target));
                                }
                            }
                            _ => unreachable!(),
                        },
                    }
                }
            }
        }

        // End of cycle: apply due writebacks, checking port budgets.
        let mut writes_per_rf = vec![0u32; m.rfs.len()];
        let mut k = 0;
        while k < pending.len() {
            if pending[k].due == cycle {
                let wb = pending.swap_remove(k);
                writes_per_rf[wb.reg.rf.0 as usize] += 1;
                stats.rf_writes += 1;
                rf[wb.reg.rf.0 as usize][wb.reg.index as usize] = wb.value;
            } else {
                k += 1;
            }
        }
        for (ri, &n) in writes_per_rf.iter().enumerate() {
            if n > m.rfs[ri].write_ports as u32 {
                return Err(SimError::Machine(format!(
                    "{n} writebacks to {} in cycle {cycle} but only {} ports",
                    m.rfs[ri].name, m.rfs[ri].write_ports
                )));
            }
        }

        cycle += 1;
        if halt {
            let ret = mem::load(&memory, Opcode::Ldw, RETVAL_ADDR)?;
            return Ok(SimResult { cycles: cycle, ret, memory, stats });
        }
        match pending_jump.take() {
            Some((0, target)) => pc = target,
            Some((n, target)) => {
                pending_jump = Some((n - 1, target));
                pc += 1;
            }
            None => pc += 1,
        }
    }
}
