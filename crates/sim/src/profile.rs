//! Opt-in guest-side microarchitectural profiling.
//!
//! The paper's argument for transport triggering is made in *utilization*
//! terms: data transports ride the buses, software bypassing absorbs RF
//! traffic, and that is why 1R/1W register files suffice. This module
//! measures exactly those quantities on the simulated machines — per-bus
//! move density, per-FU occupancy, RF port-pressure histograms, NOP/padding
//! slot density, bypass-vs-RF read ratios and a per-PC hotspot histogram —
//! without perturbing the timing model.
//!
//! ## The disable contract
//!
//! Profiling mirrors the `TTA_OBS=0` promise of `crates/obs`, but goes one
//! step further: the cycle loops are generic over a [`ProfileSink`], and the
//! default entry points ([`crate::run`], `run_tta`, ...) instantiate them
//! with [`NoProfile`], whose hook methods are empty `#[inline(always)]`
//! bodies — the profiling code is *compiled out* of that monomorphisation,
//! not branched around. The profiled entry points
//! ([`crate::run_profiled`], `run_tta_profiled`, ...) are separate
//! monomorphisations feeding a [`Collector`]. Either way `SimResult` (cycles,
//! return value, memory image, `SimStats`) is bit-identical — enforced by
//! `tests/profile_parity.rs` at the workspace root.
//!
//! ## Why collection is cheap
//!
//! For the TTA and scalar cores, everything the profile reports is *static
//! per program counter*: a TTA instruction always performs the same moves,
//! reads and triggers every time it executes. The hot-loop hook is therefore
//! a single `counts[pc] += 1`; the full profile is reconstructed after the
//! run by walking the program once with the counts as multipliers
//! ([`finish_tta`] and friends). The VLIW core additionally records dynamic
//! RF write-port pressure, because writebacks land at `issue + latency` and
//! several issue cycles can drain onto the same register file in one cycle.

use crate::result::SimStats;
use tta_isa::{MoveDst, MoveSrc, OpSrc, Program, ScalarInst, TtaInst, VliwBundle, VliwSlot};
use tta_model::{CoreStyle, Machine};

/// Per-cycle hooks the simulator cycle loops invoke. Crate-private: the
/// public surface is the `run_*_profiled` entry points.
pub(crate) trait ProfileSink {
    /// Whether every hook is a no-op. Only a passive sink permits the
    /// compiled superblock tier (see `crate::tier`): compiled blocks
    /// batch their bookkeeping and never call `retire`, which would
    /// corrupt a trace or profile. `NoProfile` is the only passive sink.
    const PASSIVE: bool;
    /// One instruction/bundle at `pc` entered execution this cycle.
    fn retire(&mut self, pc: u32);
    /// RF write-port usage of the cycle that just completed (VLIW only;
    /// indexed by register-file id).
    fn writeback_pressure(&mut self, writes_per_rf: &[u32]);
}

/// The sink of the default entry points: every hook is an empty
/// `#[inline(always)]` body, so the profiling paths vanish from the
/// generated code entirely.
pub(crate) struct NoProfile;

impl ProfileSink for NoProfile {
    const PASSIVE: bool = true;
    #[inline(always)]
    fn retire(&mut self, _pc: u32) {}
    #[inline(always)]
    fn writeback_pressure(&mut self, _writes_per_rf: &[u32]) {}
}

/// The sink of the `run_*_traced` entry points: records the program
/// counter of every executed instruction. A third monomorphisation of the
/// same cycle loops, so tracing shares the bit-identity guarantee of the
/// other sinks instead of threading an `Option<&mut Vec<u32>>` through
/// every engine.
pub(crate) struct TraceSink {
    /// Executed pcs in order.
    pub trace: Vec<u32>,
}

impl TraceSink {
    /// A sink pre-sized by the [`crate::state::trace_capacity`] heuristic.
    pub fn for_program(program_len: usize) -> TraceSink {
        TraceSink {
            trace: Vec::with_capacity(crate::state::trace_capacity(program_len)),
        }
    }
}

impl ProfileSink for TraceSink {
    const PASSIVE: bool = false;
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.trace.push(pc);
    }
    #[inline(always)]
    fn writeback_pressure(&mut self, _writes_per_rf: &[u32]) {}
}

/// The collecting sink: a per-PC execution counter plus (for VLIW) dynamic
/// write-port pressure histograms. Everything else is derived post-run.
pub(crate) struct Collector {
    pc_counts: Vec<u64>,
    /// `wb_hist[rf][k]` = cycles in which `rf` performed exactly `k`
    /// writebacks. Empty unless created with [`Collector::with_write_hist`].
    wb_hist: Vec<Vec<u64>>,
}

impl Collector {
    /// For cores whose per-PC activity is fully static (TTA, scalar).
    pub fn for_static(program_len: usize) -> Collector {
        Collector {
            pc_counts: vec![0; program_len],
            wb_hist: Vec::new(),
        }
    }

    /// For the VLIW core: also tracks per-cycle writeback pressure, with
    /// one bucket per possible port count (0 ..= write_ports).
    pub fn with_write_hist(m: &Machine, program_len: usize) -> Collector {
        Collector {
            pc_counts: vec![0; program_len],
            wb_hist: m
                .rfs
                .iter()
                .map(|rf| vec![0; rf.write_ports as usize + 1])
                .collect(),
        }
    }
}

impl ProfileSink for Collector {
    const PASSIVE: bool = false;
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.pc_counts[pc as usize] += 1;
    }

    #[inline]
    fn writeback_pressure(&mut self, writes_per_rf: &[u32]) {
        for (ri, &n) in writes_per_rf.iter().enumerate() {
            let h = &mut self.wb_hist[ri];
            let last = h.len() - 1;
            h[(n as usize).min(last)] += 1;
        }
    }
}

/// Per-FU profile row.
#[derive(Debug, Clone, PartialEq)]
pub struct FuProfile {
    /// Unit name (from the machine description).
    pub name: String,
    /// Operations triggered/issued on this unit.
    pub ops: u64,
    /// Op-cycles in flight: each operation contributes `max(latency, 1)`
    /// cycles. Can exceed the run's cycle count on pipelined units.
    pub busy_cycles: u64,
}

/// Per-register-file profile row.
#[derive(Debug, Clone, PartialEq)]
pub struct RfProfile {
    /// Register-file name (from the machine description).
    pub name: String,
    /// Configured simultaneous read ports.
    pub read_ports: u8,
    /// Configured simultaneous write ports.
    pub write_ports: u8,
    /// `read_hist[k]` = samples in which this RF served exactly `k` reads
    /// (`k` ranges `0 ..= read_ports`; the schedulers can never exceed the
    /// budget, the top bucket absorbs defensively).
    pub read_hist: Vec<u64>,
    /// `write_hist[k]` = samples with exactly `k` writes. For VLIW this is
    /// measured per *cycle* (writebacks land at `issue + latency`); for TTA
    /// and scalar it is static per instruction.
    pub write_hist: Vec<u64>,
}

impl RfProfile {
    fn hist_mean(hist: &[u64]) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = hist.iter().enumerate().map(|(k, &c)| k as u64 * c).sum();
        weighted as f64 / total as f64
    }

    /// Mean reads per sample.
    pub fn mean_reads(&self) -> f64 {
        Self::hist_mean(&self.read_hist)
    }

    /// Mean writes per sample.
    pub fn mean_writes(&self) -> f64 {
        Self::hist_mean(&self.write_hist)
    }
}

/// The microarchitectural profile of one simulated run.
///
/// A *sample* is one executed instruction: a TTA instruction, a VLIW bundle
/// (for both, samples == cycles) or a scalar instruction (the scalar core
/// inserts dynamic stall cycles between samples, so samples < cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct GuestProfile {
    /// Programming model of the profiled machine.
    pub style: CoreStyle,
    /// Total cycles of the run (filled by the `run_*_profiled` wrappers).
    pub cycles: u64,
    /// Executed instructions (see the type docs for the sample unit).
    pub samples: u64,
    /// Transport buses (TTA) or issue slots (VLIW) per instruction; 0 for
    /// scalar.
    pub slots: usize,
    /// Per-slot executed move/op counts (`slots` entries; indexed by bus or
    /// issue-slot id).
    pub slot_moves: Vec<u64>,
    /// Slot-samples consumed by long-immediate encoding (TTA: the
    /// `limm.bus_slots` slots a template blanks; VLIW: `LimmCont` slots).
    pub limm_slot_samples: u64,
    /// Samples that were complete NOPs (schedule padding: delay slots and
    /// latency waiting).
    pub nop_samples: u64,
    /// Per-function-unit rows (indexed by FU id).
    pub fu: Vec<FuProfile>,
    /// Per-register-file rows (indexed by RF id).
    pub rf: Vec<RfProfile>,
    /// Register-file reads (must agree with `SimStats::rf_reads`).
    pub rf_reads: u64,
    /// Register-file writes (must agree with `SimStats::rf_writes`).
    pub rf_writes: u64,
    /// Reads served by FU result ports (must agree with
    /// `SimStats::bypass_reads`; TTA only).
    pub bypass_reads: u64,
    /// Executions per program counter (the hotspot histogram; indexed by
    /// pc, same length as the program).
    pub pc_counts: Vec<u64>,
}

impl GuestProfile {
    fn base(m: &Machine, style: CoreStyle, slots: usize) -> GuestProfile {
        GuestProfile {
            style,
            cycles: 0,
            samples: 0,
            slots,
            slot_moves: vec![0; slots],
            limm_slot_samples: 0,
            nop_samples: 0,
            fu: m
                .funits
                .iter()
                .map(|f| FuProfile {
                    name: f.name.clone(),
                    ops: 0,
                    busy_cycles: 0,
                })
                .collect(),
            rf: m
                .rfs
                .iter()
                .map(|rf| RfProfile {
                    name: rf.name.clone(),
                    read_ports: rf.read_ports,
                    write_ports: rf.write_ports,
                    read_hist: vec![0; rf.read_ports as usize + 1],
                    write_hist: vec![0; rf.write_ports as usize + 1],
                })
                .collect(),
            rf_reads: 0,
            rf_writes: 0,
            bypass_reads: 0,
            pc_counts: Vec::new(),
        }
    }

    /// Fraction of slot-samples carrying a move/op or long-immediate
    /// payload (0.0 for scalar, which has no slots).
    pub fn slot_utilization(&self) -> f64 {
        let total = self.samples * self.slots as u64;
        if total == 0 {
            return 0.0;
        }
        let used: u64 = self.slot_moves.iter().sum::<u64>() + self.limm_slot_samples;
        used as f64 / total as f64
    }

    /// Fraction of samples that were complete NOPs.
    pub fn nop_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.nop_samples as f64 / self.samples as f64
    }

    /// Per-slot utilization: executed moves/ops per sample for each bus or
    /// issue slot.
    pub fn slot_density(&self) -> Vec<f64> {
        self.slot_moves
            .iter()
            .map(|&c| {
                if self.samples == 0 {
                    0.0
                } else {
                    c as f64 / self.samples as f64
                }
            })
            .collect()
    }

    /// Fraction of operand reads served by FU result ports instead of RF
    /// ports (the paper's software-bypassing ratio; 0.0 for VLIW/scalar).
    pub fn bypass_fraction(&self) -> f64 {
        let total = self.bypass_reads + self.rf_reads;
        if total == 0 {
            return 0.0;
        }
        self.bypass_reads as f64 / total as f64
    }

    /// The `n` most-executed program counters as `(pc, count)`, hottest
    /// first (ties broken by lower pc).
    pub fn hot_pcs(&self, n: usize) -> Vec<(u32, u64)> {
        let mut idx: Vec<u32> = (0..self.pc_counts.len() as u32).collect();
        idx.sort_by_key(|&pc| (std::cmp::Reverse(self.pc_counts[pc as usize]), pc));
        idx.into_iter()
            .map(|pc| (pc, self.pc_counts[pc as usize]))
            .take_while(|&(_, c)| c > 0)
            .take(n)
            .collect()
    }

    /// Sanity-check the profile against the run's `SimStats`; returns the
    /// first inconsistency. Used by tests and the report pipeline.
    pub fn check_against(&self, stats: &SimStats) -> Result<(), String> {
        let err = |what: &str, a: u64, b: u64| Err(format!("{what}: profile {a} vs stats {b}"));
        if self.samples != stats.instructions {
            return err("samples", self.samples, stats.instructions);
        }
        if self.rf_reads != stats.rf_reads {
            return err("rf_reads", self.rf_reads, stats.rf_reads);
        }
        if self.rf_writes != stats.rf_writes {
            return err("rf_writes", self.rf_writes, stats.rf_writes);
        }
        if self.bypass_reads != stats.bypass_reads {
            return err("bypass_reads", self.bypass_reads, stats.bypass_reads);
        }
        let retired: u64 = self.pc_counts.iter().sum();
        if retired != stats.instructions {
            return err("pc_counts total", retired, stats.instructions);
        }
        Ok(())
    }
}

/// Charge `n` samples to histogram bucket `k` (clamped to the top bucket).
fn bump(hist: &mut [u64], k: u32, n: u64) {
    let last = hist.len() - 1;
    hist[(k as usize).min(last)] += n;
}

/// Reconstruct a TTA profile from per-PC execution counts (every per-PC
/// quantity is static; see the module docs).
pub(crate) fn finish_tta(m: &Machine, program: &[TtaInst], c: Collector) -> GuestProfile {
    let mut p = GuestProfile::base(m, CoreStyle::Tta, m.buses.len());
    let counts = c.pc_counts;
    let mut reads = vec![0u32; m.rfs.len()];
    let mut writes = vec![0u32; m.rfs.len()];
    for (inst, &n) in program.iter().zip(&counts) {
        if n == 0 {
            continue;
        }
        p.samples += n;
        if inst.is_nop() {
            p.nop_samples += n;
        }
        reads.fill(0);
        writes.fill(0);
        for (bus, slot) in inst.slots.iter().enumerate() {
            let Some(mv) = slot else { continue };
            p.slot_moves[bus] += n;
            match mv.src {
                MoveSrc::Rf(r) => {
                    reads[r.rf.0 as usize] += 1;
                    p.rf_reads += n;
                }
                MoveSrc::FuResult(_) => p.bypass_reads += n,
                MoveSrc::Imm(_) | MoveSrc::ImmReg(_) => {}
            }
            match mv.dst {
                MoveDst::Rf(r) => {
                    writes[r.rf.0 as usize] += 1;
                    p.rf_writes += n;
                }
                MoveDst::FuOperand(_) => {}
                MoveDst::FuTrigger(f, op) => {
                    let fu = &mut p.fu[f.0 as usize];
                    fu.ops += n;
                    fu.busy_cycles += n * (op.latency() as u64).max(1);
                }
            }
        }
        if inst.limm.is_some() {
            p.limm_slot_samples += n * m.limm.bus_slots as u64;
        }
        for (ri, rf) in p.rf.iter_mut().enumerate() {
            bump(&mut rf.read_hist, reads[ri], n);
            bump(&mut rf.write_hist, writes[ri], n);
        }
    }
    p.pc_counts = counts;
    p
}

/// Reconstruct a VLIW profile: reads and issue are static per PC, write
/// pressure comes from the collector's dynamic histogram.
pub(crate) fn finish_vliw(m: &Machine, program: &[VliwBundle], c: Collector) -> GuestProfile {
    let mut p = GuestProfile::base(m, CoreStyle::Vliw, m.slots.len());
    let counts = c.pc_counts;
    let mut reads = vec![0u32; m.rfs.len()];
    for (bundle, &n) in program.iter().zip(&counts) {
        if n == 0 {
            continue;
        }
        p.samples += n;
        if bundle.is_nop() {
            p.nop_samples += n;
        }
        reads.fill(0);
        for (si, slot) in bundle.slots.iter().enumerate() {
            match slot {
                None => {}
                Some(VliwSlot::LimmCont) => p.limm_slot_samples += n,
                Some(VliwSlot::LimmHead { .. }) => p.slot_moves[si] += n,
                Some(VliwSlot::Op(o)) => {
                    p.slot_moves[si] += n;
                    for src in [o.a, o.b].into_iter().flatten() {
                        if let OpSrc::Reg(r) = src {
                            reads[r.rf.0 as usize] += 1;
                            p.rf_reads += n;
                        }
                    }
                    let fu = &mut p.fu[o.fu.0 as usize];
                    fu.ops += n;
                    fu.busy_cycles += n * (o.op.latency() as u64).max(1);
                }
            }
        }
        for (ri, rf) in p.rf.iter_mut().enumerate() {
            bump(&mut rf.read_hist, reads[ri], n);
        }
    }
    for (ri, hist) in c.wb_hist.into_iter().enumerate() {
        p.rf_writes += hist
            .iter()
            .enumerate()
            .map(|(k, &cnt)| k as u64 * cnt)
            .sum::<u64>();
        p.rf[ri].write_hist = hist;
    }
    p.pc_counts = counts;
    p
}

/// Reconstruct a scalar profile from per-PC execution counts. The sample
/// unit is the executed instruction (issue cycle); dynamic stall cycles
/// between instructions carry no port activity and appear only in
/// `SimStats::stall_cycles`.
pub(crate) fn finish_scalar(m: &Machine, program: &[ScalarInst], c: Collector) -> GuestProfile {
    let mut p = GuestProfile::base(m, CoreStyle::Scalar, 0);
    let counts = c.pc_counts;
    let mut reads = vec![0u32; m.rfs.len()];
    let mut writes = vec![0u32; m.rfs.len()];
    for (inst, &n) in program.iter().zip(&counts) {
        if n == 0 {
            continue;
        }
        p.samples += n;
        reads.fill(0);
        writes.fill(0);
        if let ScalarInst::Op(o) = inst {
            for src in [o.a, o.b].into_iter().flatten() {
                if let OpSrc::Reg(r) = src {
                    reads[r.rf.0 as usize] += 1;
                    p.rf_reads += n;
                }
            }
            if let Some(d) = o.dst {
                writes[d.rf.0 as usize] += 1;
                p.rf_writes += n;
            }
            let fu = &mut p.fu[o.fu.0 as usize];
            fu.ops += n;
            fu.busy_cycles += n * (o.op.latency() as u64).max(1);
        }
        for (ri, rf) in p.rf.iter_mut().enumerate() {
            bump(&mut rf.read_hist, reads[ri], n);
            bump(&mut rf.write_hist, writes[ri], n);
        }
    }
    p.pc_counts = counts;
    p
}

/// Static per-PC datapath activity, for rendering a PC trace as timeline
/// counter tracks (the Perfetto exporter buckets a `run_*_traced` trace
/// and multiplies by these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Moves (TTA) or issued ops (VLIW/scalar) at this PC.
    pub moves: u32,
    /// RF reads at this PC.
    pub rf_reads: u32,
    /// RF writes caused by this PC (VLIW writebacks are attributed to
    /// their *issue* PC, not the cycle they land).
    pub rf_writes: u32,
    /// Operations started on function units at this PC.
    pub fu_starts: u32,
}

/// The static activity table of a program, indexed by PC.
pub fn static_activity(program: &Program) -> Vec<CycleActivity> {
    match program {
        Program::Tta(insts) => insts
            .iter()
            .map(|inst| {
                let mut a = CycleActivity::default();
                for mv in inst.slots.iter().flatten() {
                    a.moves += 1;
                    match mv.src {
                        MoveSrc::Rf(_) => a.rf_reads += 1,
                        MoveSrc::FuResult(_) | MoveSrc::Imm(_) | MoveSrc::ImmReg(_) => {}
                    }
                    match mv.dst {
                        MoveDst::Rf(_) => a.rf_writes += 1,
                        MoveDst::FuTrigger(..) => a.fu_starts += 1,
                        MoveDst::FuOperand(_) => {}
                    }
                }
                a
            })
            .collect(),
        Program::Vliw(bundles) => bundles
            .iter()
            .map(|bundle| {
                let mut a = CycleActivity::default();
                for slot in bundle.slots.iter().flatten() {
                    match slot {
                        VliwSlot::LimmCont => {}
                        VliwSlot::LimmHead { .. } => {
                            a.moves += 1;
                            a.rf_writes += 1;
                        }
                        VliwSlot::Op(o) => {
                            a.moves += 1;
                            a.fu_starts += 1;
                            for src in [o.a, o.b].into_iter().flatten() {
                                if matches!(src, OpSrc::Reg(_)) {
                                    a.rf_reads += 1;
                                }
                            }
                            if o.dst.is_some() {
                                a.rf_writes += 1;
                            }
                        }
                    }
                }
                a
            })
            .collect(),
        Program::Scalar(insts) => insts
            .iter()
            .map(|inst| {
                let mut a = CycleActivity::default();
                if let ScalarInst::Op(o) = inst {
                    a.moves += 1;
                    a.fu_starts += 1;
                    for src in [o.a, o.b].into_iter().flatten() {
                        if matches!(src, OpSrc::Reg(_)) {
                            a.rf_reads += 1;
                        }
                    }
                    if o.dst.is_some() {
                        a.rf_writes += 1;
                    }
                }
                a
            })
            .collect(),
    }
}
