//! # tta-sim — cycle-accurate soft-core simulators
//!
//! Instruction-cycle-accurate simulators for the three programming models,
//! playing the role of the TCE architecture simulator in the paper's
//! methodology. Each simulator implements the timing contract its scheduler
//! plans against and *checks* the dynamic machine rules (result-port
//! lifetimes, write-port budgets, jump nesting), so a scheduler bug
//! surfaces as a hard [`SimError`] or as a differential-test mismatch
//! against the IR interpreter rather than as silently wrong cycle counts.

#![warn(missing_docs)]

pub mod profile;
pub mod result;
pub mod scalar;
mod state;
pub mod tier;
pub mod tta;
pub mod vliw;

pub use profile::{static_activity, CycleActivity, FuProfile, GuestProfile, RfProfile};
pub use result::{SimError, SimResult, SimStats};
pub use tier::{run_with_tiers, Tiers};
pub use tta_isa::TierConfig;

use tta_isa::Program;
use tta_model::Machine;

/// Default cycle budget for [`run`].
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Run any program on its machine (styles must match).
pub fn run(m: &Machine, program: &Program, memory: Vec<u8>) -> Result<SimResult, SimError> {
    run_with_fuel(m, program, memory, DEFAULT_FUEL)
}

/// [`run`] with an explicit cycle budget.
pub fn run_with_fuel(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    let span = tta_obs::span("simulate");
    let result = match program {
        Program::Tta(insts) => tta::run_tta(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar(m, insts, memory, fuel),
    };
    drop(span);
    flush_obs(&result);
    result
}

/// Run any program while collecting a [`GuestProfile`] (see
/// [`profile`] for the zero-cost-when-disabled contract). The returned
/// `SimResult` is bit-identical to [`run_with_fuel`]'s.
pub fn run_profiled(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
) -> Result<(SimResult, GuestProfile), SimError> {
    run_profiled_with_fuel(m, program, memory, DEFAULT_FUEL)
}

/// [`run_profiled`] with an explicit cycle budget.
pub fn run_profiled_with_fuel(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let span = tta_obs::span("simulate");
    let result = match program {
        Program::Tta(insts) => tta::run_tta_profiled(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw_profiled(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar_profiled(m, insts, memory, fuel),
    };
    drop(span);
    let plain = result
        .as_ref()
        .map(|(r, _)| r.clone())
        .map_err(|e| e.clone());
    flush_obs(&plain);
    result
}

/// Run any program, also recording the program counter of every executed
/// instruction (dispatches to the per-style `run_*_traced` entry points).
pub fn run_traced(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    match program {
        Program::Tta(insts) => tta::run_tta_traced(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw_traced(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar_traced(m, insts, memory, fuel),
    }
}

/// Observability: flush the already-collected per-run stats into the
/// global counters *after* the run. The cycle loops stay untouched, so
/// cycle counts and `SimStats` are bit-identical with obs on or off,
/// and the whole block reduces to one branch when obs is disabled.
fn flush_obs(result: &Result<SimResult, SimError>) {
    if tta_obs::enabled() {
        if let Ok(r) = result {
            use tta_obs::counter::add;
            add("sim.runs", 1);
            add("sim.cycles", r.cycles);
            add("sim.instructions", r.stats.instructions);
            add("sim.transports", r.stats.payload);
            add("sim.rf_reads", r.stats.rf_reads);
            add("sim.rf_writes", r.stats.rf_writes);
            add("sim.bypass_reads", r.stats.bypass_reads);
            add("sim.limms", r.stats.limms);
            add("sim.branches_taken", r.stats.branches_taken);
            add("sim.stall_cycles", r.stats.stall_cycles);
            add("sim.loads", r.stats.loads);
            add("sim.stores", r.stats.stores);
        }
    }
}
