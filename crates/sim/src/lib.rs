//! # tta-sim — cycle-accurate soft-core simulators
//!
//! Instruction-cycle-accurate simulators for the three programming models,
//! playing the role of the TCE architecture simulator in the paper's
//! methodology. Each simulator implements the timing contract its scheduler
//! plans against and *checks* the dynamic machine rules (result-port
//! lifetimes, write-port budgets, jump nesting), so a scheduler bug
//! surfaces as a hard [`SimError`] or as a differential-test mismatch
//! against the IR interpreter rather than as silently wrong cycle counts.

#![warn(missing_docs)]

pub mod profile;
pub mod result;
pub mod scalar;
mod state;
pub mod tier;
pub mod tta;
pub mod vliw;

pub use profile::{static_activity, CycleActivity, FuProfile, GuestProfile, RfProfile};
pub use result::{SimError, SimResult, SimStats};
pub use tier::{run_with_tiers, Tiers};
pub use tta_isa::TierConfig;
pub use tta_model::io::{IoSpec, IrqAt};

use crate::state::IoCtx;
use tta_isa::Program;
use tta_model::io::IoSystem;
use tta_model::Machine;

/// Default cycle budget for [`run`].
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Run any program on its machine (styles must match).
pub fn run(m: &Machine, program: &Program, memory: Vec<u8>) -> Result<SimResult, SimError> {
    run_with_fuel(m, program, memory, DEFAULT_FUEL)
}

/// [`run`] with an explicit cycle budget.
pub fn run_with_fuel(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<SimResult, SimError> {
    let span = tta_obs::span("simulate");
    let result = match program {
        Program::Tta(insts) => tta::run_tta(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar(m, insts, memory, fuel),
    };
    drop(span);
    flush_obs(&result);
    result
}

/// Run any program while collecting a [`GuestProfile`] (see
/// [`profile`] for the zero-cost-when-disabled contract). The returned
/// `SimResult` is bit-identical to [`run_with_fuel`]'s.
pub fn run_profiled(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
) -> Result<(SimResult, GuestProfile), SimError> {
    run_profiled_with_fuel(m, program, memory, DEFAULT_FUEL)
}

/// [`run_profiled`] with an explicit cycle budget.
pub fn run_profiled_with_fuel(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, GuestProfile), SimError> {
    let span = tta_obs::span("simulate");
    let result = match program {
        Program::Tta(insts) => tta::run_tta_profiled(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw_profiled(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar_profiled(m, insts, memory, fuel),
    };
    drop(span);
    let plain = result
        .as_ref()
        .map(|(r, _)| r.clone())
        .map_err(|e| e.clone());
    flush_obs(&plain);
    result
}

/// Run a reactive program: like [`run_with_fuel`] with a memory-mapped
/// device bus, interrupt controller and scripted interrupt schedule
/// attached. `irq_entry` is where the compiled `__irq` handler region
/// starts (see `tta_compiler::Compiled::irq_entry`); with `None`,
/// interrupts latch in the controller but are never delivered, matching
/// the IR interpreter's semantics for handler-less modules. Builds fresh
/// per-run tier state from the environment configuration.
pub fn run_with_io(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
    spec: &IoSpec,
    irq_entry: Option<u32>,
) -> Result<SimResult, SimError> {
    let tiers = Tiers::for_program(program);
    run_with_io_tiers(m, program, memory, fuel, spec, irq_entry, &tiers)
}

/// [`run_with_io`] against shared compiled-tier state (must have been
/// built for this same `program`). The I/O system itself is always
/// per-run: devices and the interrupt controller reset with the guest.
#[allow(clippy::too_many_arguments)]
pub fn run_with_io_tiers(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
    spec: &IoSpec,
    irq_entry: Option<u32>,
    tiers: &Tiers,
) -> Result<SimResult, SimError> {
    assert_eq!(
        tiers.program_len,
        program.len(),
        "tier state was built for a different program"
    );
    use crate::profile::NoProfile;
    use crate::tier::StyleTiers;
    let mut io = IoSystem::new(spec);
    let span = tta_obs::span("simulate");
    let result = {
        let ctx = Some(IoCtx {
            sys: &mut io,
            irq_entry,
        });
        match (program, &tiers.style) {
            (Program::Tta(insts), StyleTiers::Tta(t)) => {
                tta::run_tta_with(m, insts, memory, fuel, &mut NoProfile, Some(t), ctx)
            }
            (Program::Vliw(bundles), StyleTiers::Vliw(t)) => {
                vliw::run_vliw_with(m, bundles, memory, fuel, &mut NoProfile, Some(t), ctx)
            }
            (Program::Scalar(insts), StyleTiers::Scalar(t)) => {
                scalar::run_scalar_with(m, insts, memory, fuel, &mut NoProfile, Some(t), ctx)
            }
            (Program::Tta(insts), StyleTiers::Off) => {
                tta::run_tta_with(m, insts, memory, fuel, &mut NoProfile, None, ctx)
            }
            (Program::Vliw(bundles), StyleTiers::Off) => {
                vliw::run_vliw_with(m, bundles, memory, fuel, &mut NoProfile, None, ctx)
            }
            (Program::Scalar(insts), StyleTiers::Off) => {
                scalar::run_scalar_with(m, insts, memory, fuel, &mut NoProfile, None, ctx)
            }
            _ => panic!("tier state style does not match the program style"),
        }
    };
    drop(span);
    flush_obs(&result);
    result
}

/// Run any program, also recording the program counter of every executed
/// instruction (dispatches to the per-style `run_*_traced` entry points).
pub fn run_traced(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    fuel: u64,
) -> Result<(SimResult, Vec<u32>), SimError> {
    match program {
        Program::Tta(insts) => tta::run_tta_traced(m, insts, memory, fuel),
        Program::Vliw(bundles) => vliw::run_vliw_traced(m, bundles, memory, fuel),
        Program::Scalar(insts) => scalar::run_scalar_traced(m, insts, memory, fuel),
    }
}

/// Observability: flush the already-collected per-run stats into the
/// global counters *after* the run. The cycle loops stay untouched, so
/// cycle counts and `SimStats` are bit-identical with obs on or off,
/// and the whole block reduces to one branch when obs is disabled.
fn flush_obs(result: &Result<SimResult, SimError>) {
    if tta_obs::enabled() {
        if let Ok(r) = result {
            use tta_obs::counter::add;
            add("sim.runs", 1);
            add("sim.cycles", r.cycles);
            add("sim.instructions", r.stats.instructions);
            add("sim.transports", r.stats.payload);
            add("sim.rf_reads", r.stats.rf_reads);
            add("sim.rf_writes", r.stats.rf_writes);
            add("sim.bypass_reads", r.stats.bypass_reads);
            add("sim.limms", r.stats.limms);
            add("sim.branches_taken", r.stats.branches_taken);
            add("sim.stall_cycles", r.stats.stall_cycles);
            add("sim.loads", r.stats.loads);
            add("sim.stores", r.stats.stores);
            add("sim.irq.delivered", r.stats.irqs);
            add("sim.irq.trap_cycles", r.stats.irq_cycles);
            add("sim.irq.mmio_loads", r.stats.mmio_loads);
            add("sim.irq.mmio_stores", r.stats.mmio_stores);
        }
    }
}
