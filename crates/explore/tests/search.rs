//! End-to-end tests for the Pareto design-space search: seeded
//! determinism and rediscovery of the paper's frontier.
//!
//! Debug builds are slow, so these runs use a two-kernel subset and
//! small per-generation quotas — enough for the gen-0 analytic sweep of
//! the full space plus a few mutation generations.

use tta_explore::search::{dominates, evaluate_paper_points, search};
use tta_explore::SearchParams;
use tta_model::gen;

fn small_params() -> SearchParams {
    SearchParams {
        seed: 7,
        generations: 3,
        probe_quota: 24,
        full_quota: 8,
        kernels: vec!["sha", "aes"],
        ..SearchParams::default()
    }
}

#[test]
fn seeded_search_is_deterministic() {
    let params = SearchParams {
        generations: 1,
        probe_quota: 12,
        full_quota: 4,
        ..small_params()
    };
    let a = search(&params);
    let b = search(&params); // second run hits the compile cache
    let key = |o: &tta_explore::SearchOutcome| {
        o.frontier
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.slices,
                    p.structural,
                    p.geomean_cycles.to_bits(),
                    p.runtime_us.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b), "same seed must give the same frontier");
    assert!(!a.frontier.is_empty());
    assert_eq!(a.stats.probed, b.stats.probed);
    assert_eq!(a.stats.full_evals, b.stats.full_evals);
}

#[test]
fn search_rediscovers_or_dominates_the_paper_bm_points() {
    let params = small_params();
    let outcome = search(&params);
    let paper = evaluate_paper_points(&params);
    assert!(
        outcome.frontier.len() >= 4,
        "expected a non-trivial frontier, got {}",
        outcome.frontier.len()
    );

    // The paper's best TTAs (the bus-merged bm-tta points) must be
    // accounted for: either the search carries a structural twin on its
    // frontier, or it found configs that strictly dominate them.
    for bm in ["bm-tta-2", "bm-tta-3"] {
        let p = paper.iter().find(|p| p.name == bm).expect(bm);
        let on_frontier = outcome
            .frontier
            .iter()
            .any(|f| f.structural == p.structural);
        let dominated = outcome.frontier.iter().any(|f| dominates(f, p));
        assert!(
            on_frontier || dominated,
            "{bm} neither rediscovered nor improved upon (slices {}, {:.2} µs)",
            p.slices,
            p.runtime_us
        );
    }

    // No paper TTA/VLIW point may dominate the discovered frontier: the
    // search must never return points the known design sweep already
    // beats. (The scalar MicroBlaze presets are excluded — they sit
    // outside the searchable space and undercut every TTA on area.)
    for f in &outcome.frontier {
        assert!(
            !paper
                .iter()
                .filter(|p| !p.name.starts_with("mblaze"))
                .any(|p| dominates(p, f)),
            "frontier point {} is dominated by a paper preset",
            f.name
        );
    }

    // And the search must advance the state of the art somewhere: at
    // least one discovered config strictly dominates a paper point.
    assert!(
        outcome
            .frontier
            .iter()
            .any(|f| paper.iter().any(|p| dominates(f, p))),
        "no discovered config dominates any paper point"
    );
}

#[test]
fn gen0_sweep_covers_the_whole_space_and_funnel_tallies_balance() {
    let params = SearchParams {
        generations: 0,
        probe_quota: 10,
        full_quota: 3,
        ..small_params()
    };
    let outcome = search(&params);
    let space = gen::enumerate_space().len() as u64;
    assert_eq!(outcome.stats.proposed, space, "gen 0 proposes the grid");
    let s = &outcome.stats;
    assert_eq!(
        s.configs + s.invalid + s.duplicates,
        space,
        "every grid config is analyzed, rejected, or a structural twin"
    );
    assert!(
        s.configs >= space * 9 / 10,
        "the vast majority of the grid must survive validation, got {}",
        s.configs
    );
    // Every analyzed config ends in exactly one terminal state: pruned
    // (analytically or by probe), failed, fully evaluated, or pooled.
    assert_eq!(
        s.configs,
        s.analytic_pruned + s.probe_pruned + s.eval_failures + s.full_evals + s.deferred,
        "funnel states must partition the analyzed configs"
    );
    assert!(s.probed <= 10, "probe quota respected");
    assert_eq!(s.full_evals, 3, "full quota filled");
    assert!(s.wall_s > 0.0);
    assert!(s.configs_per_s() > 0.0);
}
