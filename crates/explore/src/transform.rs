//! Architecture transformations: the VLIW→TTA optimisation steps of the
//! paper's Fig. 4.
//!
//! * [`partition_rf`] — split a monolithic register file into banks with
//!   fewer ports each (Fig. 4b / §III-D);
//! * [`prune_bypasses`] — drop result-port bus connections no compiled
//!   program uses (Fig. 4c); the scheduler transparently falls back to the
//!   register file where a bypass disappeared;
//! * [`merge_buses`] — greedily merge the pair of buses least often used
//!   concurrently, the Viitanen et al. \[25\] interconnect exploration
//!   heuristic behind the `bm-tta` design points (Fig. 4d).

use std::collections::HashSet;
use tta_chstone::Kernel;
use tta_compiler::compile;
use tta_isa::{MoveDst, MoveSrc, Program};
use tta_model::{Bus, CoreStyle, DstConn, Machine, RegisterFile, RfId, SrcConn};

/// Split every register file of `m` into `banks` equal banks with the
/// given port counts, reconnecting the transport buses the way the
/// partitioned presets are wired (each bank's read and write sockets on
/// two buses, round-robin).
pub fn partition_rf(m: &Machine, banks: u16, read_ports: u8, write_ports: u8) -> Machine {
    let mut out = m.clone();
    let total: u32 = m.total_regs();
    let per_bank = (total / banks as u32) as u16;
    out.rfs = (0..banks)
        .map(|b| RegisterFile {
            name: format!("rf{b}"),
            regs: per_bank,
            width: m.rfs[0].width,
            read_ports,
            write_ports,
        })
        .collect();
    out.name = format!("{}-p{banks}", m.name);

    if m.style == CoreStyle::Tta {
        // Drop the old RF connections, then re-wire per bank.
        for bus in &mut out.buses {
            bus.sources.retain(|s| !matches!(s, SrcConn::RfRead(_)));
            bus.dests.retain(|d| !matches!(d, DstConn::RfWrite(_)));
        }
        let n = out.buses.len();
        let mut next = 0usize;
        for b in 0..banks {
            for _ in 0..read_ports {
                for k in 0..2usize.min(n) {
                    out.buses[(next + k) % n].connect_src(SrcConn::RfRead(RfId(b)));
                }
                next += 2;
            }
        }
        for b in 0..banks {
            for _ in 0..write_ports {
                for k in 0..2usize.min(n) {
                    out.buses[(next + k) % n].connect_dst(DstConn::RfWrite(RfId(b)));
                }
                next += 2;
            }
        }
    }
    out.validate().expect("partitioned machine is valid");
    out
}

/// Per-bus usage and pairwise concurrency counted over the static
/// schedules of the given kernels.
#[derive(Debug, Clone)]
pub struct BusProfile {
    /// Moves carried per bus.
    pub use_count: Vec<u64>,
    /// `pair[i][j]` (i < j): instructions in which both buses carry moves.
    pub pair: Vec<Vec<u64>>,
    /// Bus source/destination connections actually used by some move.
    pub used_src: HashSet<(usize, SrcConn)>,
    /// See `used_src`.
    pub used_dst: HashSet<(usize, DstConn)>,
}

/// Compile the kernels for `m` and profile its transport buses.
pub fn profile_buses(m: &Machine, kernels: &[Kernel]) -> BusProfile {
    assert_eq!(
        m.style,
        CoreStyle::Tta,
        "bus profiling applies to TTA machines"
    );
    let n = m.buses.len();
    let mut p = BusProfile {
        use_count: vec![0; n],
        pair: vec![vec![0; n]; n],
        used_src: HashSet::new(),
        used_dst: HashSet::new(),
    };
    for k in kernels {
        let module = (k.build)();
        let compiled =
            compile(&module, m).unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, m.name));
        let Program::Tta(insts) = &compiled.program else {
            unreachable!()
        };
        for inst in insts {
            let busy: Vec<usize> = inst
                .slots
                .iter()
                .enumerate()
                .filter_map(|(b, s)| s.map(|_| b))
                .collect();
            for &b in &busy {
                p.use_count[b] += 1;
                let mv = inst.slots[b].unwrap();
                match mv.src {
                    MoveSrc::Rf(r) => {
                        p.used_src.insert((b, SrcConn::RfRead(r.rf)));
                    }
                    MoveSrc::FuResult(f) => {
                        p.used_src.insert((b, SrcConn::FuResult(f)));
                    }
                    _ => {}
                }
                match mv.dst {
                    MoveDst::Rf(r) => {
                        p.used_dst.insert((b, DstConn::RfWrite(r.rf)));
                    }
                    MoveDst::FuOperand(f) => {
                        p.used_dst.insert((b, DstConn::FuOperand(f)));
                    }
                    MoveDst::FuTrigger(f, _) => {
                        p.used_dst.insert((b, DstConn::FuTrigger(f)));
                    }
                }
            }
            for i in 0..busy.len() {
                for j in i + 1..busy.len() {
                    p.pair[busy[i]][busy[j]] += 1;
                }
            }
        }
    }
    p
}

/// Remove result-port (bypass) bus connections that no profiled program
/// uses — the paper's Fig. 4c step. The machine stays valid for arbitrary
/// programs because every value can still reach every consumer through the
/// register file.
pub fn prune_bypasses(m: &Machine, profile: &BusProfile) -> Machine {
    let mut out = m.clone();
    for (bi, bus) in out.buses.iter_mut().enumerate() {
        bus.sources.retain(|s| match s {
            SrcConn::FuResult(f) => profile.used_src.contains(&(bi, SrcConn::FuResult(*f))),
            _ => true,
        });
    }
    // Writeback routes must survive pruning: every FU result must still
    // reach every register file's write port on some bus, or values with
    // no usable bypass could never be committed. Restore the minimum.
    for f in m.fu_ids() {
        if !m.fu(f).has_result_port() {
            continue;
        }
        for r in m.rf_ids() {
            let routed = out
                .buses
                .iter()
                .any(|b| b.reads(SrcConn::FuResult(f)) && b.writes(DstConn::RfWrite(r)));
            if !routed {
                if let Some(bus) = out.buses.iter_mut().find(|b| b.writes(DstConn::RfWrite(r))) {
                    bus.connect_src(SrcConn::FuResult(f));
                }
            }
        }
    }
    out.name = format!("{}-pruned", m.name);
    out.validate().expect("pruned machine is valid");
    out
}

/// Greedily merge buses down to `target` buses: repeatedly merge the pair
/// with the lowest pairwise concurrency (their connectivity becomes the
/// union), following the heuristic of \[25\].
pub fn merge_buses(m: &Machine, target: usize, profile: &BusProfile) -> Machine {
    assert_eq!(m.style, CoreStyle::Tta);
    assert!(
        target >= m.limm.bus_slots as usize,
        "too few buses for long immediates"
    );
    let mut buses: Vec<Bus> = m.buses.clone();
    let mut usage: Vec<u64> = profile.use_count.clone();
    let mut pair: Vec<Vec<u64>> = profile.pair.clone();

    while buses.len() > target {
        // Pick the pair (i, j) with the least concurrent use, breaking
        // ties toward the least-used buses.
        let n = buses.len();
        let mut best = (0usize, 1usize);
        let mut best_key = (u64::MAX, u64::MAX);
        for i in 0..n {
            for j in i + 1..n {
                let key = (pair[i][j], usage[i] + usage[j]);
                if key < best_key {
                    best_key = key;
                    best = (i, j);
                }
            }
        }
        let (i, j) = best;
        let merged = {
            let mut b = buses[i].clone();
            b.merge_from(&buses[j]);
            b.name = format!("{}+{}", buses[i].name, buses[j].name);
            b
        };
        buses[i] = merged;
        usage[i] += usage[j];
        buses.remove(j);
        usage.remove(j);
        // Fold the concurrency matrix.
        for r in 0..n {
            if r != i && r != j {
                let v = pair[r.min(j)][r.max(j)];
                let (a, b) = (r.min(i), r.max(i));
                pair[a][b] += v;
            }
        }
        for row in &mut pair {
            row.remove(j);
        }
        pair.remove(j);
    }

    let mut out = m.clone();
    out.buses = buses;
    out.name = format!("{}-bm{target}", m.name);
    out.validate().expect("merged machine is valid");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_ir::interp::Interpreter;
    use tta_model::presets;

    fn kernels(names: &[&str]) -> Vec<Kernel> {
        names
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap())
            .collect()
    }

    /// A kernel must still produce the golden checksum on a transformed
    /// machine.
    fn assert_still_correct(m: &Machine, k: &Kernel) {
        let module = (k.build)();
        let golden = Interpreter::new(&module).run(&[]).unwrap();
        let compiled = compile(&module, m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let r = tta_sim::run(m, &compiled.program, module.initial_memory()).unwrap();
        assert_eq!(Some(r.ret), golden.ret, "{} on {}", k.name, m.name);
    }

    #[test]
    fn partitioning_matches_the_preset_shape() {
        let p = partition_rf(&presets::m_vliw_2(), 2, 2, 1);
        let preset = presets::p_vliw_2();
        assert_eq!(p.total_regs(), preset.total_regs());
        assert_eq!(p.total_read_ports(), preset.total_read_ports());
        assert_eq!(p.total_write_ports(), preset.total_write_ports());
    }

    #[test]
    fn partitioned_tta_still_computes() {
        let p = partition_rf(&presets::m_tta_2(), 2, 1, 1);
        assert_eq!(p.rfs.len(), 2);
        assert_still_correct(&p, &tta_chstone::by_name("motion").unwrap());
    }

    #[test]
    fn bus_profile_counts_something() {
        let m = presets::p_tta_2();
        let p = profile_buses(&m, &kernels(&["gsm"]));
        assert!(p.use_count.iter().sum::<u64>() > 0);
        assert!(!p.used_src.is_empty());
        assert!(!p.used_dst.is_empty());
    }

    #[test]
    fn merging_reduces_width_and_preserves_semantics() {
        let m = presets::p_tta_2();
        let p = profile_buses(&m, &kernels(&["gsm"]));
        let merged = merge_buses(&m, 4, &p);
        assert_eq!(merged.buses.len(), 4);
        let w_before = tta_isa::encoding::instruction_bits(&m);
        let w_after = tta_isa::encoding::instruction_bits(&merged);
        assert!(w_after < w_before, "{w_after} >= {w_before}");
        assert_still_correct(&merged, &tta_chstone::by_name("gsm").unwrap());
        // And on a kernel that was NOT profiled.
        assert_still_correct(&merged, &tta_chstone::by_name("adpcm").unwrap());
    }

    #[test]
    fn pruning_preserves_semantics_even_for_unprofiled_kernels() {
        let m = presets::m_tta_2();
        let p = profile_buses(&m, &kernels(&["motion"]));
        let pruned = prune_bypasses(&m, &p);
        assert_still_correct(&pruned, &tta_chstone::by_name("motion").unwrap());
        assert_still_correct(&pruned, &tta_chstone::by_name("sha").unwrap());
        // Pruning must have removed something.
        let conns = |mm: &Machine| -> usize { mm.buses.iter().map(|b| b.sources.len()).sum() };
        assert!(conns(&pruned) < conns(&m));
    }

    #[test]
    #[should_panic(expected = "too few buses")]
    fn merging_below_limm_capacity_is_rejected() {
        let m = presets::p_tta_2();
        let p = profile_buses(&m, &kernels(&["gsm"]));
        let _ = merge_buses(&m, 2, &p);
    }
}
