//! # tta-explore — the paper's design-space evaluation
//!
//! Drives the full pipeline of the paper's §IV–V: compile the CHStone-style
//! kernels for all thirteen design points, simulate them cycle-accurately,
//! estimate FPGA cost, and regenerate every table and figure of the
//! evaluation. Also provides the VLIW→TTA architecture transformations of
//! Fig. 4 (register-file partitioning, bypass pruning, greedy bus merging).
//!
//! ```no_run
//! // The full 13-machine x 8-kernel evaluation:
//! let reports = tta_explore::evaluate_all();
//! println!("{}", tta_explore::tables::table4(&reports));
//! println!("{}", tta_explore::figures::fig6(&reports));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod compression;
pub mod eval;
pub mod figures;
pub mod imem;
pub mod profile;
pub mod queue;
pub mod search;
pub mod sweep;
pub mod tables;
pub mod transform;

pub use cache::CompileCache;
pub use compression::{dictionary_compress, Compression};
pub use eval::{evaluate, evaluate_all, issue_class, IssueClass, KernelRun, MachineReport};
pub use imem::{kernel_icache, simulate_icache, ICacheConfig, ICacheReport};
pub use profile::{
    profile, profile_all, report_json, trace_json, utilization_markdown, validate_report,
    KernelProfile, MachineProfile, ProfileReport, PROFILE_VERSION,
};
pub use queue::WorkQueue;
pub use search::{search, EvalPoint, Frontier, SearchOutcome, SearchParams, SearchStats};
pub use sweep::{sweep_bus_count, SweepPoint};
pub use transform::{merge_buses, partition_rf, profile_buses, prune_bypasses, BusProfile};
