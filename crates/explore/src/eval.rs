//! The paper's evaluation pipeline: compile every kernel for every design
//! point, simulate cycle-accurately, estimate FPGA cost, and collect the
//! raw numbers behind Tables II–IV and Figs. 5–6.
//!
//! Stage timing is recorded through `tta-obs` spans: [`evaluate`] opens a
//! root `eval` span, workers attach to it, and the compiler/simulator
//! crates charge their own `compile`/`simulate` spans underneath, so the
//! whole call aggregates as one `eval/...` subtree in the obs run report.
//! [`last_timing`] reads that subtree back in the historical
//! [`EvalTiming`] shape.

use std::sync::{Arc, Mutex};
use tta_chstone::reactive::ReactiveGuest;
use tta_chstone::Kernel;
use tta_compiler::{compile, Compiled};
use tta_fpga::Resources;
use tta_ir::interp::Interpreter;
use tta_isa::encoding;
use tta_model::io::IoSystem;
use tta_model::{presets, Machine};
use tta_obs as obs;
use tta_obs::json::Json;
use tta_sim::SimStats;

use crate::cache::{self, CompileCache};
use crate::queue;

/// Cumulative per-stage timing of the most recent [`evaluate`] call.
///
/// Stage fields are summed across worker threads (thread-seconds, not
/// wall-clock); `wall_s` and `threads` describe the call itself. Backed
/// by the `eval/...` spans of the obs registry (all zero when obs is
/// disabled). Retrieved with [`last_timing`] and emitted by the
/// `bench_eval` binary into `BENCH_eval.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalTiming {
    /// Building kernel IR modules from their builders.
    pub build_ir_s: f64,
    /// Golden-model interpreter runs.
    pub golden_interp_s: f64,
    /// Compilation (all passes + scheduling).
    pub compile_s: f64,
    /// Cycle-accurate simulation.
    pub simulate_s: f64,
    /// Result verification plus FPGA estimation and encoding-width work.
    pub verify_estimate_s: f64,
    /// Wall-clock of the whole evaluate call.
    pub wall_s: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// Per-stage timing of the most recent [`evaluate`] call in this process,
/// read back from the obs span registry.
pub fn last_timing() -> EvalTiming {
    let s = |p: &str| obs::span::stat(p).map_or(0.0, |(total_s, _)| total_s);
    EvalTiming {
        build_ir_s: s("eval/build_ir"),
        golden_interp_s: s("eval/golden_interp"),
        compile_s: s("eval/compile"),
        simulate_s: s("eval/simulate"),
        verify_estimate_s: s("eval/verify_estimate"),
        wall_s: s("eval"),
        threads: obs::counter::get_gauge("eval.threads").unwrap_or(0).max(0) as usize,
    }
}

/// Worker threads for [`evaluate`] (and the serve layer's simulation
/// pool): the `TTA_EVAL_THREADS` environment variable when set to a
/// positive integer, otherwise every available core; always capped at
/// the job count (pass `usize::MAX` for an uncapped long-lived pool).
pub fn eval_threads(n_jobs: usize) -> usize {
    std::env::var("TTA_EVAL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8)
        })
        .min(n_jobs.max(1))
}

/// One kernel executed on one machine.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// Cycle count from the cycle-accurate simulation.
    pub cycles: u64,
    /// Static program length in instructions.
    pub program_len: usize,
    /// Program image size in bits.
    pub image_bits: u64,
    /// Dynamic statistics.
    pub sim: SimStats,
    /// TTA schedule quality (zeroed for other styles).
    pub tta: tta_compiler::tta_sched::TtaStats,
    /// Register values spilled during allocation.
    pub spilled: usize,
}

/// A design point with its estimated resources and per-kernel results.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Paper name of the design point.
    pub name: String,
    /// The machine description.
    pub machine: Machine,
    /// FPGA cost estimate.
    pub resources: Resources,
    /// Instruction width in bits.
    pub instr_bits: u32,
    /// One entry per kernel, in kernel order.
    pub runs: Vec<KernelRun>,
}

impl MachineReport {
    /// The run for a named kernel.
    pub fn run(&self, kernel: &str) -> &KernelRun {
        self.runs
            .iter()
            .find(|r| r.kernel == kernel)
            .unwrap_or_else(|| panic!("no run of {kernel} on {}", self.name))
    }

    /// Geometric-mean cycle count across kernels.
    pub fn geomean_cycles(&self) -> f64 {
        let s: f64 = self.runs.iter().map(|r| (r.cycles as f64).ln()).sum();
        (s / self.runs.len() as f64).exp()
    }

    /// Geometric-mean runtime in microseconds at the estimated fmax.
    pub fn geomean_runtime_us(&self) -> f64 {
        self.geomean_cycles() / self.resources.fmax_mhz
    }
}

/// A kernel with its IR module built and golden return value interpreted —
/// both machine-independent, so [`evaluate`] (and the batch server) does
/// this once per kernel instead of once per (kernel × machine).
pub struct PreparedKernel {
    /// Kernel name.
    pub name: &'static str,
    /// The built IR module.
    pub module: tta_ir::Module,
    /// The golden interpreter's return value.
    pub golden_ret: Option<i32>,
    /// The golden interpreter's dynamic execution counts —
    /// machine-independent demand the design-space search turns into
    /// per-config cycle lower bounds without compiling anything.
    pub golden_stats: tta_ir::interp::ExecStats,
    /// Content hash of the kernel's IR text (compile-cache key half).
    pub ir_hash: u64,
}

/// Build a kernel's IR module and run the golden interpreter once,
/// charging the `build_ir`/`golden_interp` spans.
pub fn prepare_kernel(kernel: &Kernel) -> PreparedKernel {
    let module = {
        let _s = obs::span("build_ir");
        (kernel.build)()
    };
    let golden = {
        let _s = obs::span("golden_interp");
        Interpreter::new(&module).run(&[]).expect("interpreter")
    };
    let ir_hash = cache::hash_of(&tta_ir::module_to_text(&module));
    PreparedKernel {
        name: kernel.name,
        module,
        golden_ret: golden.ret,
        golden_stats: golden.stats,
        ir_hash,
    }
}

/// Compile through the process-wide sharded content-keyed cache
/// ([`crate::cache`]). Each (machine × kernel) pair compiles exactly
/// once per process (while resident), however many callers revisit it.
pub fn compile_cached(
    p: &PreparedKernel,
    machine: &Machine,
) -> (Arc<Compiled>, Arc<tta_sim::Tiers>) {
    let key = CompileCache::key_for(machine, p.ir_hash);
    cache::global().get_or_compile(key, &p.module, machine, p.name)
}

/// Compile + simulate one prepared kernel on one machine and verify the
/// result against the golden model. The compiler and simulator charge
/// their own `compile`/`simulate` spans under this thread's ambient span.
///
/// # Panics
/// On compile or simulation failure, and when the simulated return value
/// disagrees with the golden interpreter — all three indicate toolchain
/// bugs (callers that must stay alive, like the batch server, catch the
/// unwind and report a structured error instead).
pub fn run_prepared(p: &PreparedKernel, machine: &Machine) -> KernelRun {
    let (compiled, tiers) = compile_cached(p, machine);
    let result = tta_sim::run_with_tiers(
        machine,
        &compiled.program,
        p.module.initial_memory(),
        tta_sim::DEFAULT_FUEL,
        &tiers,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", p.name, machine.name));
    {
        let _s = obs::span("verify_estimate");
        // Guard the evaluation numbers with the golden model.
        assert_eq!(
            Some(result.ret),
            p.golden_ret,
            "{} on {}",
            p.name,
            machine.name
        );
    }
    KernelRun {
        kernel: p.name.to_string(),
        cycles: result.cycles,
        program_len: compiled.program.len(),
        image_bits: compiled.program.image_bits(machine),
        sim: result.stats,
        tta: compiled.stats.tta,
        spilled: compiled.stats.spilled,
    }
}

/// Run one kernel on one machine (compile + simulate + verify against the
/// interpreter).
pub fn run_kernel(kernel: &Kernel, machine: &Machine) -> KernelRun {
    run_prepared(&prepare_kernel(kernel), machine)
}

/// Evaluate `kernels` on `machines`.
///
/// Kernel modules and golden interpreter runs happen once per kernel; the
/// remaining (machine × kernel) compile/simulate jobs are then drained by a
/// pool of workers off a shared atomic counter, so a slow machine's jobs
/// spread across threads instead of serialising on one
/// machine-per-thread worker.
pub fn evaluate(machines: &[Machine], kernels: &[Kernel]) -> Vec<MachineReport> {
    let n_jobs = machines.len() * kernels.len();
    let threads = eval_threads(n_jobs);
    // Zero this call's subtree so `last_timing` describes the most recent
    // call — the historical contract of the old stage accumulators.
    obs::span::reset_prefix("eval");
    obs::counter::set_gauge("eval.threads", threads as i64);
    let eval_span = obs::span_under(obs::SpanHandle::ROOT, "eval");
    let here = obs::current();

    let prepared: Vec<PreparedKernel> = kernels.iter().map(prepare_kernel).collect();

    // One result slot per job; each is written by exactly one worker.
    let slots: Vec<Mutex<Option<KernelRun>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    queue::drain_indexed(n_jobs, threads, here, |ji| {
        let (mi, ki) = (ji / kernels.len(), ji % kernels.len());
        let run = run_prepared(&prepared[ki], &machines[mi]);
        *slots[ji].lock().unwrap() = Some(run);
    });

    let mut runs = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("job completed"));
    let reports = machines
        .iter()
        .map(|machine| {
            let runs: Vec<KernelRun> = runs.by_ref().take(kernels.len()).collect();
            let _s = obs::span("verify_estimate");
            MachineReport {
                name: machine.name.clone(),
                machine: machine.clone(),
                resources: tta_fpga::estimate(machine),
                instr_bits: encoding::instruction_bits(machine),
                runs,
            }
        })
        .collect();
    drop(eval_span);
    reports
}

/// Evaluate all eight kernels on all thirteen design points.
pub fn evaluate_all() -> Vec<MachineReport> {
    evaluate(&presets::all_design_points(), &tta_chstone::all_kernels())
}

/// The canonical machine-readable form of one [`KernelRun`] — the per-job
/// payload the batch server streams as NDJSON. Built from the same
/// [`KernelRun`] values [`evaluate`] produces, so a served job's report is
/// bit-identical to the equivalent single-run evaluation (the simulators
/// are cycle-deterministic and the compile cache is shared).
pub fn job_report_json(machine: &str, run: &KernelRun) -> Json {
    let n = |v: u64| Json::Num(v as f64);
    Json::Obj(vec![
        ("machine".into(), Json::Str(machine.into())),
        ("kernel".into(), Json::Str(run.kernel.clone())),
        ("cycles".into(), n(run.cycles)),
        ("program_len".into(), Json::Num(run.program_len as f64)),
        ("image_bits".into(), n(run.image_bits)),
        ("spilled".into(), Json::Num(run.spilled as f64)),
        (
            "sim".into(),
            Json::Obj(vec![
                ("instructions".into(), n(run.sim.instructions)),
                ("payload".into(), n(run.sim.payload)),
                ("rf_reads".into(), n(run.sim.rf_reads)),
                ("rf_writes".into(), n(run.sim.rf_writes)),
                ("bypass_reads".into(), n(run.sim.bypass_reads)),
                ("limms".into(), n(run.sim.limms)),
                ("branches_taken".into(), n(run.sim.branches_taken)),
                ("stall_cycles".into(), n(run.sim.stall_cycles)),
                ("loads".into(), n(run.sim.loads)),
                ("stores".into(), n(run.sim.stores)),
            ]),
        ),
    ])
}

/// One reactive guest executed on one machine: cycle numbers plus the
/// interrupt-side observables.
#[derive(Debug, Clone)]
pub struct ReactiveRun {
    /// Guest name.
    pub guest: String,
    /// Cycle count from the cycle-accurate simulation.
    pub cycles: u64,
    /// Interrupts delivered during the run.
    pub irqs: u64,
    /// Cycles charged to trap entry/return overhead.
    pub irq_cycles: u64,
    /// The UART transmit stream (bit-identical across styles by
    /// construction of the guests).
    pub uart_tx: Vec<u8>,
    /// Dynamic statistics.
    pub sim: SimStats,
}

/// Compile + simulate one reactive guest on one machine under the
/// guest's own I/O spec, verified three ways: the golden interpreter run
/// must match the guest's native expected checksum and transmit stream,
/// and the simulated run must match both.
///
/// Interrupt *counts* are only checked against the golden run for
/// guests driven by an external schedule; self-clocked guests (the
/// timer producer/consumer) legitimately take a style-dependent number
/// of interrupts, which is exactly why their checksums are
/// timing-invariant.
pub fn run_reactive(guest: &ReactiveGuest, machine: &Machine) -> ReactiveRun {
    let module = {
        let _s = obs::span("build_ir");
        (guest.build)()
    };
    let spec = (guest.spec)();
    let (golden_ret, golden_tx, golden_irqs) = {
        let _s = obs::span("golden_interp");
        let mut io = IoSystem::new(&spec);
        let r = Interpreter::new(&module)
            .run_with_io(&[], &mut io)
            .unwrap_or_else(|e| panic!("{} interpreter: {e}", guest.name));
        (r.ret, io.uart_tx(), io.irqs_delivered)
    };
    let compiled = compile(&module, machine)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", guest.name, machine.name));
    let result = tta_sim::run_with_io(
        machine,
        &compiled.program,
        module.initial_memory(),
        tta_sim::DEFAULT_FUEL,
        &spec,
        compiled.irq_entry,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", guest.name, machine.name));
    {
        let _s = obs::span("verify_estimate");
        assert_eq!(
            golden_ret,
            Some((guest.expected)()),
            "{}: golden interpreter vs native checksum",
            guest.name
        );
        assert_eq!(
            golden_tx,
            (guest.expected_tx)(),
            "{}: golden interpreter transmit stream",
            guest.name
        );
        assert_eq!(
            result.ret,
            (guest.expected)(),
            "{} on {}: checksum (tx {:x?}, stats {:?})",
            guest.name,
            machine.name,
            result.uart_tx,
            result.stats
        );
        assert_eq!(
            result.uart_tx, golden_tx,
            "{} on {}: transmit stream",
            guest.name, machine.name
        );
        if spec.uart_irq_on_rx || !spec.schedule.is_empty() {
            assert_eq!(
                result.stats.irqs, golden_irqs,
                "{} on {}: interrupts delivered",
                guest.name, machine.name
            );
        }
        assert!(
            result.stats.irqs > 0,
            "{} on {}: a reactive guest must actually take interrupts",
            guest.name,
            machine.name
        );
    }
    ReactiveRun {
        guest: guest.name.to_string(),
        cycles: result.cycles,
        irqs: result.stats.irqs,
        irq_cycles: result.stats.irq_cycles,
        uart_tx: result.uart_tx,
        sim: result.stats,
    }
}

/// Evaluate reactive guests on `machines`: one `(machine name, runs)`
/// entry per machine, guests in order. The jobs are few (guests ×
/// machines) and sub-millisecond, so this runs serially under one
/// `eval` span.
pub fn evaluate_reactive(
    machines: &[Machine],
    guests: &[ReactiveGuest],
) -> Vec<(String, Vec<ReactiveRun>)> {
    let eval_span = obs::span_under(obs::SpanHandle::ROOT, "eval");
    let reports = machines
        .iter()
        .map(|m| {
            let runs = guests.iter().map(|g| run_reactive(g, m)).collect();
            (m.name.clone(), runs)
        })
        .collect();
    drop(eval_span);
    reports
}

/// Evaluate all reactive example guests on all thirteen design points.
pub fn evaluate_reactive_all() -> Vec<(String, Vec<ReactiveRun>)> {
    evaluate_reactive(
        &presets::all_design_points(),
        &tta_chstone::reactive::all_guests(),
    )
}

/// The issue-width class a design point is reported under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueClass {
    /// mblaze-3/5, m-tta-1 (normalised to mblaze-3).
    Single,
    /// the 2-issue machines (normalised to m-vliw-2).
    Two,
    /// the 3-issue machines (normalised to m-vliw-3).
    Three,
}

/// Classify a report by its machine's issue width.
pub fn issue_class(m: &Machine) -> IssueClass {
    match m.issue_width {
        1 => IssueClass::Single,
        2 => IssueClass::Two,
        _ => IssueClass::Three,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The eval tests share the global obs registry (the `eval` subtree
    /// is reset per call), so they must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn small_eval() -> Vec<MachineReport> {
        let machines = vec![presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()];
        let kernels: Vec<Kernel> = ["sha", "motion"]
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap())
            .collect();
        evaluate(&machines, &kernels)
    }

    #[test]
    fn evaluation_produces_ordered_reports() {
        let _l = lock();
        let reports = small_eval();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "mblaze-3");
        assert_eq!(reports[2].name, "m-tta-2");
        for r in &reports {
            assert_eq!(r.runs.len(), 2);
            assert!(r.runs.iter().all(|k| k.cycles > 0));
            assert!(r.resources.fmax_mhz > 50.0);
        }
    }

    #[test]
    fn geomeans_are_positive_and_bounded() {
        let _l = lock();
        let reports = small_eval();
        for r in &reports {
            let g = r.geomean_cycles();
            let min = r.runs.iter().map(|k| k.cycles).min().unwrap() as f64;
            let max = r.runs.iter().map(|k| k.cycles).max().unwrap() as f64;
            assert!(
                g >= min && g <= max,
                "{}: {g} not within [{min}, {max}]",
                r.name
            );
        }
    }

    #[test]
    fn tta_beats_vliw_in_cycles_on_this_sample() {
        let _l = lock();
        let reports = small_eval();
        let vliw = reports[1].geomean_cycles();
        let tta = reports[2].geomean_cycles();
        assert!(tta < vliw, "m-tta-2 {tta} vs m-vliw-2 {vliw}");
    }

    #[test]
    fn timing_comes_from_obs_spans() {
        let _l = lock();
        let _ = small_eval();
        let t = last_timing();
        assert!(t.wall_s > 0.0, "{t:?}");
        assert!(t.compile_s > 0.0, "{t:?}");
        assert!(t.simulate_s > 0.0, "{t:?}");
        assert!(t.golden_interp_s > 0.0, "{t:?}");
        assert!(t.threads >= 1, "{t:?}");
        // Thread-seconds can exceed wall-clock, but never by more than the
        // worker count.
        let stages = t.compile_s + t.simulate_s + t.verify_estimate_s;
        assert!(stages <= t.wall_s * t.threads as f64 + 0.5, "{t:?}");
    }

    /// The full reactive sweep: every example guest on every design
    /// point converges on its timing-invariant checksum and an
    /// identical UART transmit stream (`run_reactive` asserts both
    /// internally), and the interrupt observables are live.
    #[test]
    fn reactive_guests_sweep_all_design_points() {
        let _l = lock();
        let reports = evaluate_reactive_all();
        assert_eq!(reports.len(), presets::all_design_points().len());
        let guests = tta_chstone::reactive::all_guests();
        for (name, runs) in &reports {
            assert_eq!(runs.len(), guests.len(), "{name}");
            for r in runs {
                assert!(r.cycles > 0, "{name}/{}", r.guest);
                assert!(r.irqs > 0, "{name}/{}", r.guest);
                assert!(
                    r.irq_cycles > 0,
                    "{name}/{}: trap overhead must be charged",
                    r.guest
                );
            }
        }
        // The transmit stream is style-invariant: every machine saw the
        // same bytes for the same guest.
        for gi in 0..guests.len() {
            let first = &reports[0].1[gi].uart_tx;
            for (name, runs) in &reports {
                assert_eq!(&runs[gi].uart_tx, first, "{name}/{}", runs[gi].guest);
            }
        }
        // And the sweep charged the eval span tree.
        assert!(last_timing().golden_interp_s > 0.0);
    }

    #[test]
    fn issue_classes() {
        assert_eq!(issue_class(&presets::mblaze_3()), IssueClass::Single);
        assert_eq!(issue_class(&presets::p_tta_2()), IssueClass::Two);
        assert_eq!(issue_class(&presets::bm_tta_3()), IssueClass::Three);
    }
}
