//! The paper's evaluation pipeline: compile every kernel for every design
//! point, simulate cycle-accurately, estimate FPGA cost, and collect the
//! raw numbers behind Tables II–IV and Figs. 5–6.

use std::sync::Mutex;
use tta_chstone::Kernel;
use tta_compiler::compile;
use tta_fpga::Resources;
use tta_ir::interp::Interpreter;
use tta_isa::encoding;
use tta_model::{presets, Machine};
use tta_sim::SimStats;

/// One kernel executed on one machine.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// Cycle count from the cycle-accurate simulation.
    pub cycles: u64,
    /// Static program length in instructions.
    pub program_len: usize,
    /// Program image size in bits.
    pub image_bits: u64,
    /// Dynamic statistics.
    pub sim: SimStats,
    /// TTA schedule quality (zeroed for other styles).
    pub tta: tta_compiler::tta_sched::TtaStats,
    /// Register values spilled during allocation.
    pub spilled: usize,
}

/// A design point with its estimated resources and per-kernel results.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Paper name of the design point.
    pub name: String,
    /// The machine description.
    pub machine: Machine,
    /// FPGA cost estimate.
    pub resources: Resources,
    /// Instruction width in bits.
    pub instr_bits: u32,
    /// One entry per kernel, in kernel order.
    pub runs: Vec<KernelRun>,
}

impl MachineReport {
    /// The run for a named kernel.
    pub fn run(&self, kernel: &str) -> &KernelRun {
        self.runs
            .iter()
            .find(|r| r.kernel == kernel)
            .unwrap_or_else(|| panic!("no run of {kernel} on {}", self.name))
    }

    /// Geometric-mean cycle count across kernels.
    pub fn geomean_cycles(&self) -> f64 {
        let s: f64 = self.runs.iter().map(|r| (r.cycles as f64).ln()).sum();
        (s / self.runs.len() as f64).exp()
    }

    /// Geometric-mean runtime in microseconds at the estimated fmax.
    pub fn geomean_runtime_us(&self) -> f64 {
        self.geomean_cycles() / self.resources.fmax_mhz
    }
}

/// Run one kernel on one machine (compile + simulate + verify against the
/// interpreter).
pub fn run_kernel(kernel: &Kernel, machine: &Machine) -> KernelRun {
    let module = (kernel.build)();
    let compiled = compile(&module, machine)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, machine.name));
    let result = tta_sim::run(machine, &compiled.program, module.initial_memory())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, machine.name));
    // Guard the evaluation numbers with the golden model.
    let golden = Interpreter::new(&module).run(&[]).expect("interpreter");
    assert_eq!(Some(result.ret), golden.ret, "{} on {}", kernel.name, machine.name);
    KernelRun {
        kernel: kernel.name.to_string(),
        cycles: result.cycles,
        program_len: compiled.program.len(),
        image_bits: compiled.program.image_bits(machine),
        sim: result.stats,
        tta: compiled.stats.tta,
        spilled: compiled.stats.spilled,
    }
}

/// Evaluate `kernels` on `machines`, in parallel across machines.
pub fn evaluate(machines: &[Machine], kernels: &[Kernel]) -> Vec<MachineReport> {
    let reports: Mutex<Vec<(usize, MachineReport)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (mi, machine) in machines.iter().enumerate() {
            let reports = &reports;
            scope.spawn(move || {
                let runs: Vec<KernelRun> =
                    kernels.iter().map(|k| run_kernel(k, machine)).collect();
                let report = MachineReport {
                    name: machine.name.clone(),
                    machine: machine.clone(),
                    resources: tta_fpga::estimate(machine),
                    instr_bits: encoding::instruction_bits(machine),
                    runs,
                };
                reports.lock().unwrap().push((mi, report));
            });
        }
    });
    let mut v = reports.into_inner().unwrap();
    v.sort_by_key(|(mi, _)| *mi);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Evaluate all eight kernels on all thirteen design points.
pub fn evaluate_all() -> Vec<MachineReport> {
    evaluate(&presets::all_design_points(), &tta_chstone::all_kernels())
}

/// The issue-width class a design point is reported under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueClass {
    /// mblaze-3/5, m-tta-1 (normalised to mblaze-3).
    Single,
    /// the 2-issue machines (normalised to m-vliw-2).
    Two,
    /// the 3-issue machines (normalised to m-vliw-3).
    Three,
}

/// Classify a report by its machine's issue width.
pub fn issue_class(m: &Machine) -> IssueClass {
    match m.issue_width {
        1 => IssueClass::Single,
        2 => IssueClass::Two,
        _ => IssueClass::Three,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_eval() -> Vec<MachineReport> {
        let machines =
            vec![presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()];
        let kernels: Vec<Kernel> = ["sha", "motion"]
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap())
            .collect();
        evaluate(&machines, &kernels)
    }

    #[test]
    fn evaluation_produces_ordered_reports() {
        let reports = small_eval();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "mblaze-3");
        assert_eq!(reports[2].name, "m-tta-2");
        for r in &reports {
            assert_eq!(r.runs.len(), 2);
            assert!(r.runs.iter().all(|k| k.cycles > 0));
            assert!(r.resources.fmax_mhz > 50.0);
        }
    }

    #[test]
    fn geomeans_are_positive_and_bounded() {
        let reports = small_eval();
        for r in &reports {
            let g = r.geomean_cycles();
            let min = r.runs.iter().map(|k| k.cycles).min().unwrap() as f64;
            let max = r.runs.iter().map(|k| k.cycles).max().unwrap() as f64;
            assert!(g >= min && g <= max, "{}: {g} not within [{min}, {max}]", r.name);
        }
    }

    #[test]
    fn tta_beats_vliw_in_cycles_on_this_sample() {
        let reports = small_eval();
        let vliw = reports[1].geomean_cycles();
        let tta = reports[2].geomean_cycles();
        assert!(tta < vliw, "m-tta-2 {tta} vs m-vliw-2 {vliw}");
    }

    #[test]
    fn issue_classes() {
        assert_eq!(issue_class(&presets::mblaze_3()), IssueClass::Single);
        assert_eq!(issue_class(&presets::p_tta_2()), IssueClass::Two);
        assert_eq!(issue_class(&presets::bm_tta_3()), IssueClass::Three);
    }
}
