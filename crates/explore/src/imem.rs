//! Instruction-memory hierarchy model.
//!
//! The paper's §V-D argues that TTA's larger program images matter less
//! than the per-core register-file savings because instruction storage sits
//! behind a (shareable) memory hierarchy: a small on-chip instruction cache
//! plus external storage. This module makes that argument quantitative: a
//! direct-mapped/set-associative I-cache simulated over the real dynamic
//! PC traces of the cycle-accurate simulators, with line fills costed in
//! *bits* so the wide TTA words and the narrow MicroBlaze words are
//! compared fairly.

use tta_isa::Program;
use tta_model::Machine;

/// An instruction-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total cache capacity in *bits* of instruction storage.
    pub capacity_bits: u64,
    /// Instructions per cache line.
    pub line_insts: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Extra cycles to refill one line from backing store.
    pub miss_penalty: u32,
}

impl ICacheConfig {
    /// A small per-core cache of the kind §V-D suggests: 16 kbit of
    /// instruction storage, 8-instruction lines, 2-way, 10-cycle refills.
    pub fn small() -> Self {
        ICacheConfig {
            capacity_bits: 16 * 1024,
            line_insts: 8,
            ways: 2,
            miss_penalty: 10,
        }
    }
}

/// Result of simulating a PC trace against an I-cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ICacheReport {
    /// Instruction fetches (= executed instructions).
    pub accesses: u64,
    /// Line misses.
    pub misses: u64,
    /// Cache lines available for this machine's instruction width.
    pub lines: u32,
    /// Extra cycles spent refilling.
    pub stall_cycles: u64,
}

impl ICacheReport {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Simulate the cache over a dynamic PC trace for a machine (the machine's
/// instruction width determines how many lines fit in the bit budget).
pub fn simulate_icache(m: &Machine, trace: &[u32], cfg: ICacheConfig) -> ICacheReport {
    let width = tta_isa::encoding::instruction_bits(m) as u64;
    let line_bits = width * cfg.line_insts as u64;
    let lines = ((cfg.capacity_bits / line_bits) as u32).max(cfg.ways);
    let sets = (lines / cfg.ways).max(1);

    // Per set: the resident line tags in LRU order (most recent last).
    let mut cache: Vec<Vec<u32>> = vec![Vec::new(); sets as usize];
    let mut misses = 0u64;
    for &pc in trace {
        let line = pc / cfg.line_insts;
        let set = (line % sets) as usize;
        let resident = &mut cache[set];
        if let Some(pos) = resident.iter().position(|&t| t == line) {
            let t = resident.remove(pos);
            resident.push(t);
        } else {
            misses += 1;
            if resident.len() == cfg.ways as usize {
                resident.remove(0);
            }
            resident.push(line);
        }
    }
    ICacheReport {
        accesses: trace.len() as u64,
        misses,
        lines,
        stall_cycles: misses * cfg.miss_penalty as u64,
    }
}

/// Run a compiled program with tracing and report its I-cache behaviour
/// plus the effective slowdown `(cycles + stalls) / cycles`.
pub fn kernel_icache(
    m: &Machine,
    program: &Program,
    memory: Vec<u8>,
    cfg: ICacheConfig,
) -> (ICacheReport, f64) {
    let fuel = 200_000_000;
    let (result, trace) = match program {
        Program::Tta(p) => tta_sim::tta::run_tta_traced(m, p, memory, fuel),
        Program::Vliw(p) => tta_sim::vliw::run_vliw_traced(m, p, memory, fuel),
        Program::Scalar(p) => tta_sim::scalar::run_scalar_traced(m, p, memory, fuel),
    }
    .expect("traced run");
    let report = simulate_icache(m, &trace, cfg);
    let slowdown = (result.cycles + report.stall_cycles) as f64 / result.cycles as f64;
    (report, slowdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    #[test]
    fn sequential_trace_misses_once_per_line() {
        let m = presets::mblaze_3();
        let cfg = ICacheConfig {
            capacity_bits: 1 << 20,
            line_insts: 8,
            ways: 2,
            miss_penalty: 10,
        };
        let trace: Vec<u32> = (0..64).collect();
        let r = simulate_icache(&m, &trace, cfg);
        assert_eq!(r.accesses, 64);
        assert_eq!(r.misses, 8); // 64 instructions / 8 per line
        assert_eq!(r.stall_cycles, 80);
    }

    #[test]
    fn loops_hit_after_the_first_pass() {
        let m = presets::mblaze_3();
        let cfg = ICacheConfig::small();
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.extend(0u32..16);
        }
        let r = simulate_icache(&m, &trace, cfg);
        assert_eq!(r.misses, 2, "a 16-instruction loop fits; only cold misses");
        assert!(r.miss_rate() < 0.01);
    }

    #[test]
    fn wider_instructions_mean_fewer_lines() {
        let narrow = presets::mblaze_3(); // 32b
        let wide = presets::m_tta_3(); // ~126b
        let cfg = ICacheConfig::small();
        let r_n = simulate_icache(&narrow, &[0], cfg);
        let r_w = simulate_icache(&wide, &[0], cfg);
        assert!(r_w.lines < r_n.lines);
    }

    #[test]
    fn thrashing_working_set_misses() {
        // A working set larger than the cache keeps missing.
        let m = presets::mblaze_3();
        let cfg = ICacheConfig {
            capacity_bits: 1024,
            line_insts: 4,
            ways: 1,
            miss_penalty: 10,
        };
        // 8 lines of capacity (1024/32/4=8); touch 64 lines round-robin.
        let mut trace = Vec::new();
        for _ in 0..10 {
            for l in 0..64u32 {
                trace.push(l * 4);
            }
        }
        let r = simulate_icache(&m, &trace, cfg);
        assert_eq!(r.misses, r.accesses, "every access maps to an evicted line");
    }

    #[test]
    fn end_to_end_kernel_trace() {
        let m = presets::m_tta_2();
        let k = tta_chstone::by_name("gsm").unwrap();
        let module = (k.build)();
        let compiled = tta_compiler::compile(&module, &m).unwrap();
        let (report, slowdown) = kernel_icache(
            &m,
            &compiled.program,
            module.initial_memory(),
            ICacheConfig::small(),
        );
        assert!(report.accesses > 10_000);
        // Loop-dominated kernels should hit nearly always even in a small
        // cache.
        assert!(
            report.miss_rate() < 0.05,
            "miss rate {:.3}",
            report.miss_rate()
        );
        assert!(slowdown < 1.5);
    }
}
