//! Bus-count design-space sweep.
//!
//! The `bm-tta` design points sample two spots of a larger trade-off: how
//! many transport buses a TTA needs. This sweep walks the whole curve for
//! a given issue width — instruction width, cycle count, FPGA cost — the
//! greedy-exploration territory of Viitanen et al. \[25\] that the paper
//! builds on.

use tta_chstone::Kernel;
use tta_model::{presets, Machine, RegisterFile};

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of transport buses.
    pub buses: usize,
    /// Instruction width in bits.
    pub instr_bits: u32,
    /// Geometric-mean cycles over the sweep kernels.
    pub geomean_cycles: f64,
    /// Estimated core LUTs.
    pub lut_core: u32,
    /// Estimated fmax.
    pub fmax_mhz: f64,
    /// The machine itself.
    pub machine: Machine,
}

/// Sweep bus counts `min_buses..=max_buses` for a dual-issue partitioned
/// TTA, evaluating the given kernels at every point.
pub fn sweep_bus_count(
    issue: u8,
    min_buses: usize,
    max_buses: usize,
    kernels: &[Kernel],
) -> Vec<SweepPoint> {
    assert!(min_buses >= 3, "long immediates need at least 3 bus slots");
    (min_buses..=max_buses)
        .map(|n| {
            let banks = issue.min(3) as u16;
            let rfs: Vec<RegisterFile> = (0..banks)
                .map(|b| RegisterFile::new(format!("rf{b}"), 32, 1, 1))
                .collect();
            // Full RF connectivity everywhere: the sweep varies ONLY the
            // transport bandwidth, avoiding the preset's pruned/merged
            // wiring discontinuity at 3 x issue buses.
            let machine = presets::custom_tta(&format!("tta-{issue}w-{n}b"), issue, rfs, n, true);
            let reports = crate::eval::evaluate(std::slice::from_ref(&machine), kernels);
            let r = &reports[0];
            SweepPoint {
                buses: n,
                instr_bits: r.instr_bits,
                geomean_cycles: r.geomean_cycles(),
                lut_core: r.resources.lut_core,
                fmax_mhz: r.resources.fmax_mhz,
                machine: machine.clone(),
            }
        })
        .collect()
}

/// Render a sweep as a small table.
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::from("bus-count sweep\n");
    out.push_str(&format!(
        "{:>5} {:>6} {:>12} {:>8} {:>7}\n",
        "buses", "bits", "geo cycles", "LUT", "fmax"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>5} {:>5}b {:>12.0} {:>8} {:>4.0}MHz\n",
            p.buses, p.instr_bits, p.geomean_cycles, p.lut_core, p.fmax_mhz
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Kernel> {
        vec![tta_chstone::by_name("gsm").unwrap()]
    }

    #[test]
    fn width_grows_and_cycles_shrink_with_buses() {
        let pts = sweep_bus_count(2, 3, 7, &kernels());
        assert_eq!(pts.len(), 5);
        // Instruction width is monotone in bus count.
        for w in pts.windows(2) {
            assert!(w[1].instr_bits > w[0].instr_bits, "{w:?}");
        }
        // More transport bandwidth never costs cycles, and the sweep ends
        // faster than it starts.
        let first = pts.first().unwrap().geomean_cycles;
        let last = pts.last().unwrap().geomean_cycles;
        assert!(last <= first * 1.01, "{first} -> {last}");
    }

    #[test]
    fn render_contains_every_point() {
        let pts = sweep_bus_count(2, 3, 5, &kernels());
        let s = render(&pts);
        for p in &pts {
            assert!(s.contains(&format!("{:>5}", p.buses)));
        }
    }
}
