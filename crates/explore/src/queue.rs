//! Reusable worker pools behind the evaluation pipeline and the batch
//! server.
//!
//! Two shapes of the same idea — N threads draining a shared queue, each
//! attached to a caller-supplied obs span so their `compile`/`simulate`
//! spans aggregate under the call that spawned them:
//!
//! * [`drain_indexed`] — the *scoped* form used by [`crate::evaluate`]:
//!   a fixed job count, borrowed data, an atomic next-job counter, and
//!   all workers joined before it returns.
//! * [`WorkQueue`] — the *long-lived* form used by the serve layer:
//!   `'static` closures submitted over a channel to persistent workers,
//!   with graceful shutdown (close, drain, join).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use tta_obs as obs;

/// Run `f(0..n_jobs)` across `threads` scoped workers pulling job
/// indices off a shared atomic counter, so a slow job spreads the rest
/// across threads instead of serialising on a static partition. Each
/// worker attaches to `parent` for span accounting. Returns once every
/// job has finished.
pub fn drain_indexed(
    n_jobs: usize,
    threads: usize,
    parent: obs::SpanHandle,
    f: impl Fn(usize) + Sync,
) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let _ctx = obs::attach(parent);
                loop {
                    let ji = next.fetch_add(1, Ordering::Relaxed);
                    if ji >= n_jobs {
                        break;
                    }
                    f(ji);
                }
            });
        }
    });
}

/// A boxed unit of work for a [`WorkQueue`].
pub type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of persistent worker threads draining submitted jobs in
/// FIFO order. [`WorkQueue::shutdown`] closes the queue, lets the workers
/// drain what was already submitted, and joins them; dropping the queue
/// shuts it down implicitly.
pub struct WorkQueue {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl WorkQueue {
    /// Spawn `threads` workers (at least one), each attached to `parent`
    /// for span accounting and named for thread listings.
    pub fn new(threads: usize, name: &str, parent: obs::SpanHandle) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        let _ctx = obs::attach(parent);
                        loop {
                            // Take the job while holding the receiver lock,
                            // run it after releasing, so one long job never
                            // blocks the other workers' dequeues.
                            let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                                Ok(job) => job,
                                Err(_) => break, // queue closed and drained
                            };
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkQueue {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// Submit one job. Fails only after [`WorkQueue::shutdown`].
    pub fn submit(&self, job: Job) -> Result<(), &'static str> {
        match self.tx.lock().unwrap().as_ref() {
            Some(tx) => tx.send(job).map_err(|_| "work queue closed"),
            None => Err("work queue closed"),
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Close the queue, drain already-submitted jobs, and join every
    /// worker. Idempotent.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for WorkQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn drain_indexed_runs_every_job_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        drain_indexed(hits.len(), 4, obs::SpanHandle::ROOT, |ji| {
            hits[ji].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drain_indexed_tolerates_more_threads_than_jobs() {
        let count = AtomicUsize::new(0);
        drain_indexed(3, 16, obs::SpanHandle::ROOT, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn work_queue_drains_everything_on_shutdown() {
        let q = WorkQueue::new(3, "test-wq", obs::SpanHandle::ROOT);
        assert_eq!(q.threads(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            q.submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }))
            .unwrap();
        }
        q.shutdown();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        // Closed for business afterwards, and shutdown is idempotent.
        assert!(q.submit(Box::new(|| {})).is_err());
        q.shutdown();
    }

    #[test]
    fn work_queue_runs_jobs_concurrently() {
        // Two jobs that each wait for the other prove two workers run at
        // once (a single worker would deadlock; the 5s bound fails fast).
        let q = WorkQueue::new(2, "test-conc", obs::SpanHandle::ROOT);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let done = done_tx.clone();
            q.submit(Box::new(move || {
                barrier.wait();
                done.send(()).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..2 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("both jobs must rendezvous");
        }
        q.shutdown();
    }
}
