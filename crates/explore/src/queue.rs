//! Reusable worker pools behind the evaluation pipeline and the batch
//! server.
//!
//! Two shapes of the same idea — N threads draining a shared queue, each
//! attached to a caller-supplied obs span so their `compile`/`simulate`
//! spans aggregate under the call that spawned them:
//!
//! * [`drain_indexed`] — the *scoped* form used by [`crate::evaluate`]:
//!   a fixed job count, borrowed data, an atomic next-job counter, and
//!   all workers joined before it returns.
//! * [`WorkQueue`] — the *long-lived* form used by the serve layer:
//!   `'static` closures submitted over a channel to persistent workers,
//!   with graceful shutdown (close, drain, join).

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use tta_obs as obs;

/// Run `f(0..n_jobs)` across `threads` scoped workers pulling job
/// indices off a shared atomic counter, so a slow job spreads the rest
/// across threads instead of serialising on a static partition. Each
/// worker attaches to `parent` for span accounting. Returns once every
/// job has finished.
pub fn drain_indexed(
    n_jobs: usize,
    threads: usize,
    parent: obs::SpanHandle,
    f: impl Fn(usize) + Sync,
) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let _ctx = obs::attach(parent);
                loop {
                    let ji = next.fetch_add(1, Ordering::Relaxed);
                    if ji >= n_jobs {
                        break;
                    }
                    f(ji);
                }
            });
        }
    });
}

/// A boxed unit of work for a [`WorkQueue`].
pub type Job = Box<dyn FnOnce() + Send>;

/// Telemetry wiring for a [`WorkQueue`]: obs gauge names for the queue
/// depth (submitted, not yet started) and in-flight count (started, not
/// yet finished), plus a histogram name for per-job queue wait in
/// microseconds. Names are `&'static str` because the obs registries
/// intern by static name.
#[derive(Debug, Clone, Copy)]
pub struct QueueMetrics {
    /// Gauge tracking jobs submitted but not yet dequeued.
    pub depth_gauge: &'static str,
    /// Gauge tracking jobs currently executing.
    pub in_flight_gauge: &'static str,
    /// Histogram of submit→dequeue wait times, microseconds.
    pub wait_hist: &'static str,
}

/// A fixed pool of persistent worker threads draining submitted jobs in
/// FIFO order. [`WorkQueue::shutdown`] closes the queue, lets the workers
/// drain what was already submitted, and joins them; dropping the queue
/// shuts it down implicitly. Queue depth and in-flight counts are always
/// tracked ([`WorkQueue::depth`] / [`WorkQueue::in_flight`]); passing a
/// [`QueueMetrics`] additionally publishes them as obs gauges and records
/// per-job queue waits into an obs histogram.
pub struct WorkQueue {
    tx: Mutex<Option<mpsc::Sender<(Instant, Job)>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
    depth: Arc<AtomicI64>,
    in_flight: Arc<AtomicI64>,
    metrics: Option<QueueMetrics>,
}

impl WorkQueue {
    /// Spawn `threads` workers (at least one), each attached to `parent`
    /// for span accounting and named for thread listings.
    pub fn new(threads: usize, name: &str, parent: obs::SpanHandle) -> Self {
        Self::new_with_metrics(threads, name, parent, None)
    }

    /// [`WorkQueue::new`] plus queue telemetry published through the obs
    /// registries (see [`QueueMetrics`]).
    pub fn new_with_metrics(
        threads: usize,
        name: &str,
        parent: obs::SpanHandle,
        metrics: Option<QueueMetrics>,
    ) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<(Instant, Job)>();
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicI64::new(0));
        let in_flight = Arc::new(AtomicI64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let depth = Arc::clone(&depth);
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        let _ctx = obs::attach(parent);
                        loop {
                            // Take the job while holding the receiver lock,
                            // run it after releasing, so one long job never
                            // blocks the other workers' dequeues.
                            let (queued_at, job) =
                                match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                                    Ok(job) => job,
                                    Err(_) => break, // queue closed and drained
                                };
                            let d = depth.fetch_sub(1, Ordering::Relaxed) - 1;
                            let f = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                            if let Some(m) = metrics {
                                obs::counter::set_gauge(m.depth_gauge, d);
                                obs::counter::set_gauge(m.in_flight_gauge, f);
                                obs::hist::record(
                                    m.wait_hist,
                                    queued_at.elapsed().as_micros() as u64,
                                );
                            }
                            job();
                            let f = in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
                            if let Some(m) = metrics {
                                obs::counter::set_gauge(m.in_flight_gauge, f);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkQueue {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            threads,
            depth,
            in_flight,
            metrics,
        }
    }

    /// Submit one job. Fails only after [`WorkQueue::shutdown`].
    pub fn submit(&self, job: Job) -> Result<(), &'static str> {
        match self.tx.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            Some(tx) => {
                let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(m) = self.metrics {
                    obs::counter::set_gauge(m.depth_gauge, d);
                }
                tx.send((Instant::now(), job)).map_err(|_| {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    "work queue closed"
                })
            }
            None => Err("work queue closed"),
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs submitted but not yet started (approximate under concurrency,
    /// never negative in steady state).
    pub fn depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed).max(0)
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed).max(0)
    }

    /// Re-publish the current depth/in-flight values to the configured
    /// gauges (a no-op without [`QueueMetrics`]) — called at scrape time
    /// so an idle queue still exports fresh series.
    pub fn publish_gauges(&self) {
        if let Some(m) = self.metrics {
            obs::counter::set_gauge(m.depth_gauge, self.depth());
            obs::counter::set_gauge(m.in_flight_gauge, self.in_flight());
        }
    }

    /// Close the queue, drain already-submitted jobs, and join every
    /// worker. Idempotent.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for WorkQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn drain_indexed_runs_every_job_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        drain_indexed(hits.len(), 4, obs::SpanHandle::ROOT, |ji| {
            hits[ji].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drain_indexed_tolerates_more_threads_than_jobs() {
        let count = AtomicUsize::new(0);
        drain_indexed(3, 16, obs::SpanHandle::ROOT, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn work_queue_drains_everything_on_shutdown() {
        let q = WorkQueue::new(3, "test-wq", obs::SpanHandle::ROOT);
        assert_eq!(q.threads(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            q.submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }))
            .unwrap();
        }
        q.shutdown();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        // Closed for business afterwards, and shutdown is idempotent.
        assert!(q.submit(Box::new(|| {})).is_err());
        q.shutdown();
    }

    #[test]
    fn work_queue_tracks_depth_in_flight_and_wait() {
        let m = QueueMetrics {
            depth_gauge: "test.q.depth",
            in_flight_gauge: "test.q.in_flight",
            wait_hist: "test.q.wait_us",
        };
        let q = WorkQueue::new_with_metrics(1, "test-metrics", obs::SpanHandle::ROOT, Some(m));
        assert_eq!(q.depth(), 0);
        assert_eq!(q.in_flight(), 0);
        // Hold the single worker so later submissions pile up as depth.
        let gate = Arc::new(std::sync::Barrier::new(2));
        {
            let gate = Arc::clone(&gate);
            q.submit(Box::new(move || {
                gate.wait();
            }))
            .unwrap();
        }
        for _ in 0..3 {
            q.submit(Box::new(|| {})).unwrap();
        }
        // The blocked job is either still queued or already in flight;
        // the three behind it cannot start until the gate opens.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while q.depth() < 3 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(q.depth() >= 3, "blocked worker leaves later jobs queued");
        gate.wait();
        q.shutdown();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.in_flight(), 0);
        q.publish_gauges();
        assert_eq!(obs::counter::get_gauge("test.q.depth"), Some(0));
        assert_eq!(obs::counter::get_gauge("test.q.in_flight"), Some(0));
        let wait = obs::hist::get("test.q.wait_us").expect("queue waits recorded");
        assert_eq!(wait.count, 4, "every dequeued job records a wait");
    }

    #[test]
    fn work_queue_runs_jobs_concurrently() {
        // Two jobs that each wait for the other prove two workers run at
        // once (a single worker would deadlock; the 5s bound fails fast).
        let q = WorkQueue::new(2, "test-conc", obs::SpanHandle::ROOT);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let done = done_tx.clone();
            q.submit(Box::new(move || {
                barrier.wait();
                done.send(()).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..2 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("both jobs must rendezvous");
        }
        q.shutdown();
    }
}
