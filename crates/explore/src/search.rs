//! Parallel Pareto-frontier search over the generated config space.
//!
//! Where [`crate::eval`] *enumerates* the paper's 13 design points, this
//! module *searches* the ~1500-config space of [`tta_model::gen`] on the
//! paper's Fig. 6 axes — geomean runtime at the estimated fmax versus
//! slices — and keeps the non-dominated set. The throughput story is a
//! staged evaluation funnel; each stage prunes before the next pays:
//!
//! 1. **Analytic** (µs/config, no compiler): the `tta-fpga` area/fmax
//!    estimate plus a machine-independent cycle *lower bound* derived
//!    from the golden interpreter's dynamic counts ([`KernelDemand`],
//!    computed once per kernel and shared by every config). Because the
//!    bound is optimistic, pruning a config whose *bound* is strictly
//!    dominated by a frontier point is sound: its real runtime can only
//!    be worse. A Pareto-layered quota then admits the most promising
//!    survivors.
//! 2. **Probe** (couple of compiles/config): short-fuel simulation of the
//!    two dynamically smallest kernels. Pruning here is heuristic —
//!    sampled geomeans are estimates, so a configurable margin keeps
//!    near-frontier configs alive.
//! 3. **Full** (the price [`crate::evaluate`] pays): all kernels,
//!    golden-verified, default fuel — only for frontier candidates, which
//!    insert into the shared [`Frontier`] under a short lock as they
//!    finish.
//!
//! Compiles all go through the bounded process-wide
//! [`crate::cache::CompileCache`], so a config revisited by a later
//! stage (or a later generation's profile run) never compiles twice.
//! Each stage bumps a `search.*` obs counter.
//!
//! **Determinism.** Same seed, same params ⇒ same frontier, whatever the
//! thread count: proposals are drawn serially from the seeded PRNG and
//! the generation-start frontier snapshot; parallel stages write to
//! per-index slots; pruning/admission decisions replay serially from
//! those slots; and the Pareto set itself is insertion-order independent
//! (ties on both axes keep both points, structural duplicates are
//! rejected), so concurrent frontier insertion cannot change the result.
//!
//! Mutation is profile-guided, echoing the dynamic hardware/software
//! partitioning idea: a parent's microarchitectural profile
//! ([`tta_sim::GuestProfile`]) proposes spending hardware where the
//! pressure is (add a bus when move slots saturate, a read port when the
//! RF port-pressure histogram rides its ceiling) and reclaiming it where
//! there is none (drop an idle ALU, shed a bus).

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use tta_chstone::Kernel;
use tta_model::gen::{self, SearchConfig, TtaParams, VliwParams};
use tta_model::{presets, CoreStyle, FuKind, Machine};
use tta_obs as obs;
use tta_sim::GuestProfile;
use tta_testutil::Rng;

use crate::eval::{self, PreparedKernel};
use crate::queue;

/// Fuel cap for stage-2 probe simulations: an order of magnitude above
/// any kernel's real cycle count, two orders below [`tta_sim::DEFAULT_FUEL`]
/// — a pathological schedule burns milliseconds, not minutes.
pub const PROBE_FUEL: u64 = 4_000_000;

/// Tuning knobs of one search run. Every field participates in the
/// deterministic replay: same params + same seed ⇒ same frontier.
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// PRNG seed for mutation/fresh-config draws.
    pub seed: u64,
    /// Mutation generations after the generation-0 analytic sweep of the
    /// whole space.
    pub generations: usize,
    /// Stage-A survivors admitted to probe simulation per generation
    /// (Pareto-layered admission).
    pub probe_quota: usize,
    /// Probe survivors admitted to full evaluation per generation.
    pub full_quota: usize,
    /// Frontier members expanded (profiled + mutated) per generation.
    pub parents: usize,
    /// Random mutations proposed per parent per generation.
    pub mutants_per_parent: usize,
    /// Fresh uniform-random configs proposed per generation.
    pub fresh_per_generation: usize,
    /// Stage-B pruning margin: a config is dropped only when a frontier
    /// point's probe runtime beats it by more than this fraction at equal
    /// or smaller area. 0 = aggressive, 1 = probe pruning off.
    pub probe_margin: f64,
    /// Probe-kernel count (the dynamically smallest kernels).
    pub probe_kernels: usize,
    /// Kernel subset by name; empty = the full suite.
    pub kernels: Vec<&'static str>,
    /// Worker threads; 0 = [`eval::eval_threads`].
    pub threads: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            seed: 1,
            generations: 6,
            probe_quota: 48,
            full_quota: 16,
            parents: 8,
            mutants_per_parent: 4,
            fresh_per_generation: 16,
            probe_margin: 0.15,
            probe_kernels: 2,
            kernels: Vec::new(),
            threads: 0,
        }
    }
}

/// Machine-independent dynamic demand of one kernel, read off the golden
/// interpreter's counts once and reused for every config's cycle lower
/// bound.
#[derive(Debug, Clone, Copy)]
pub struct KernelDemand {
    /// Dynamic ALU-class operations (non-memory instructions).
    pub alu_ops: u64,
    /// Dynamic loads + stores.
    pub mem_ops: u64,
    /// Dynamic control transfers.
    pub ctrl_ops: u64,
}

impl KernelDemand {
    /// Derive the demand from a prepared kernel's golden stats.
    pub fn of(p: &PreparedKernel) -> KernelDemand {
        let s = &p.golden_stats;
        let mem_ops = s.loads + s.stores;
        KernelDemand {
            alu_ops: s.insts.saturating_sub(mem_ops),
            mem_ops,
            ctrl_ops: s.terminators,
        }
    }

    /// Total dynamic operations.
    pub fn total(&self) -> u64 {
        self.alu_ops + self.mem_ops + self.ctrl_ops
    }
}

/// An *optimistic* cycle count for running a kernel with demand `d` on
/// `m`: the binding structural resource at perfect utilisation. Real
/// schedules pay dependences, transport conflicts, delay slots and
/// spills on top, so `real_cycles >= cycle_lower_bound` always — which
/// is what makes analytic pruning sound.
pub fn cycle_lower_bound(d: &KernelDemand, m: &Machine) -> u64 {
    let n_alu = m
        .funits
        .iter()
        .filter(|f| f.kind == FuKind::Alu)
        .count()
        .max(1) as u64;
    let n_lsu = m
        .funits
        .iter()
        .filter(|f| f.kind == FuKind::Lsu)
        .count()
        .max(1) as u64;
    let per_fu = (d.alu_ops.div_ceil(n_alu)).max(d.mem_ops.div_ceil(n_lsu));
    match m.style {
        // Every operation costs at least its trigger move on some bus.
        CoreStyle::Tta => per_fu.max(d.total().div_ceil(m.buses.len().max(1) as u64)),
        CoreStyle::Vliw => per_fu.max(d.total().div_ceil(m.slots.len().max(1) as u64)),
        CoreStyle::Scalar => d.total(),
    }
}

/// One fully evaluated design point on the Fig. 6 axes.
#[derive(Debug, Clone)]
pub struct EvalPoint {
    /// The generating config; `None` for paper presets evaluated for
    /// comparison.
    pub config: Option<SearchConfig>,
    /// Machine name.
    pub name: String,
    /// Slices (area axis).
    pub slices: u32,
    /// Core LUTs (finer-grained area, informational).
    pub lut_core: u32,
    /// Estimated fmax in MHz.
    pub fmax_mhz: f64,
    /// Geomean cycle count over the kernel set.
    pub geomean_cycles: f64,
    /// Geomean runtime in µs at fmax (performance axis).
    pub runtime_us: f64,
    /// Geomean runtime over the probe-kernel subset (stage-B pruning
    /// reference; computed from the same full-run cycle counts).
    pub probe_runtime_us: f64,
    /// Name-erased structural hash ([`gen::structural_hash`]).
    pub structural: u64,
}

/// Pareto dominance on (area, runtime): `a` at least as good on both
/// axes and strictly better on one.
pub fn dominates(a: &EvalPoint, b: &EvalPoint) -> bool {
    a.slices <= b.slices
        && a.runtime_us <= b.runtime_us
        && (a.slices < b.slices || a.runtime_us < b.runtime_us)
}

/// The incrementally maintained non-dominated set. Insertions take one
/// short lock; the final contents are independent of insertion order:
/// dominated points never enter (or are swept out by their dominator,
/// whichever arrives first), ties on both axes coexist, and structural
/// duplicates are rejected.
#[derive(Default)]
pub struct Frontier {
    pts: Mutex<Vec<EvalPoint>>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Insert `p` if no current point dominates it (and it is not a
    /// structural duplicate), sweeping out any points it dominates.
    /// Returns whether the point was kept.
    pub fn insert(&self, p: EvalPoint) -> bool {
        let mut pts = self.pts.lock().unwrap();
        if pts.iter().any(|q| q.structural == p.structural) {
            return false;
        }
        if pts.iter().any(|q| dominates(q, &p)) {
            return false;
        }
        pts.retain(|q| !dominates(&p, q));
        pts.push(p);
        true
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.pts.lock().unwrap().len()
    }

    /// Whether the frontier holds no points yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current points, sorted by (slices, runtime, structural hash) —
    /// a canonical order so two identical frontiers compare equal.
    pub fn snapshot(&self) -> Vec<EvalPoint> {
        let mut pts = self.pts.lock().unwrap().clone();
        pts.sort_by(|a, b| {
            a.slices
                .cmp(&b.slices)
                .then(a.runtime_us.total_cmp(&b.runtime_us))
                .then(a.structural.cmp(&b.structural))
        });
        pts
    }
}

/// Funnel tallies of one search run (also mirrored onto `search.*` obs
/// counters as the run progresses).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Configs proposed (grid + mutations + fresh), pre-dedup.
    pub proposed: u64,
    /// Proposals already seen this run (O(1) rejects).
    pub duplicates: u64,
    /// Proposals outside the space bounds or failing
    /// [`Machine::validate_generated`].
    pub invalid: u64,
    /// Unique valid configs that entered the funnel (received an
    /// analytic estimate).
    pub configs: u64,
    /// Dropped by the analytic stage (bound dominated by the frontier).
    pub analytic_pruned: u64,
    /// Configs still pooled (analyzed but never probed or evaluated)
    /// when the search ended — quota deferral is not a drop.
    pub deferred: u64,
    /// Probe simulations run.
    pub probed: u64,
    /// Dropped after probing (margin-dominated by the frontier).
    pub probe_pruned: u64,
    /// Probe runs that hit [`PROBE_FUEL`] or failed; config discarded.
    pub eval_failures: u64,
    /// Full evaluations run.
    pub full_evals: u64,
    /// Frontier insertions that were kept.
    pub inserted: u64,
    /// Wall-clock of the whole search, seconds.
    pub wall_s: f64,
}

impl SearchStats {
    /// The headline throughput: unique configs through the funnel per
    /// wall-clock second.
    pub fn configs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.configs as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Proposals processed per second (duplicates included — the
    /// mutation loop's raw rate).
    pub fn proposals_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.proposed as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Result of one [`search`] run.
pub struct SearchOutcome {
    /// The final frontier in canonical order.
    pub frontier: Vec<EvalPoint>,
    /// Funnel tallies.
    pub stats: SearchStats,
}

/// A stage-A survivor: pooled across generations until probed, pruned,
/// or fully evaluated.
struct Analyzed {
    cfg: SearchConfig,
    machine: Machine,
    slices: u32,
    fmax_mhz: f64,
    /// Optimistic analytic runtime bound (µs).
    bound_us: f64,
    /// Probe-stage sampled runtime (µs), once stage B has run — kept so
    /// a config deferred at the full-eval quota never re-simulates.
    probe_us: Option<f64>,
    structural: u64,
}

impl Analyzed {
    /// Best current runtime estimate: the probe sample when we have one,
    /// the analytic bound otherwise.
    fn score_us(&self) -> f64 {
        self.probe_us.unwrap_or(self.bound_us)
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        sum += v.max(1.0).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Resolve the kernel set (all when `names` is empty).
fn resolve_kernels(names: &[&'static str]) -> Vec<Kernel> {
    if names.is_empty() {
        tta_chstone::all_kernels()
    } else {
        names
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap_or_else(|| panic!("unknown kernel {n}")))
            .collect()
    }
}

/// Indices of the `count` dynamically smallest kernels — cheapest to
/// compile and simulate, which is what a probe wants.
fn probe_indices(prepared: &[PreparedKernel], count: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    order.sort_by_key(|&i| (prepared[i].golden_stats.insts, prepared[i].name));
    order.truncate(count.max(1).min(prepared.len()));
    order
}

/// Evaluate one machine fully: every kernel compiled (through the cache)
/// and simulated at default fuel with golden verification.
fn eval_machine_full(
    config: Option<SearchConfig>,
    machine: &Machine,
    prepared: &[PreparedKernel],
    probe_idx: &[usize],
) -> EvalPoint {
    let res = tta_fpga::estimate(machine);
    let cycles: Vec<u64> = prepared
        .iter()
        .map(|p| eval::run_prepared(p, machine).cycles)
        .collect();
    let geomean_cycles = geomean(cycles.iter().map(|&c| c as f64));
    let probe_geo = geomean(probe_idx.iter().map(|&i| cycles[i] as f64));
    EvalPoint {
        config,
        name: machine.name.clone(),
        slices: res.slices,
        lut_core: res.lut_core,
        fmax_mhz: res.fmax_mhz,
        geomean_cycles,
        runtime_us: geomean_cycles / res.fmax_mhz,
        probe_runtime_us: probe_geo / res.fmax_mhz,
        structural: gen::structural_hash(machine),
    }
}

/// Evaluate the paper's 13 presets on the same axes/kernel set as a
/// search run, for frontier-quality comparison. Uses the shared compile
/// cache, so after a search this mostly hits.
pub fn evaluate_paper_points(params: &SearchParams) -> Vec<EvalPoint> {
    let kernels = resolve_kernels(&params.kernels);
    let prepared: Vec<PreparedKernel> = kernels.iter().map(eval::prepare_kernel).collect();
    let probe_idx = probe_indices(&prepared, params.probe_kernels);
    presets::all_design_points()
        .iter()
        .map(|m| eval_machine_full(None, m, &prepared, &probe_idx))
        .collect()
}

/// Probe one machine: short-fuel simulation of the probe kernels.
/// Returns the probe geomean runtime in µs, or `None` when fuel runs out
/// or the result mismatches the golden model (the config is discarded).
fn probe_machine(
    machine: &Machine,
    prepared: &[PreparedKernel],
    probe_idx: &[usize],
    fmax_mhz: f64,
) -> Option<f64> {
    let mut cycles = Vec::with_capacity(probe_idx.len());
    for &ki in probe_idx {
        let p = &prepared[ki];
        let (compiled, tiers) = eval::compile_cached(p, machine);
        let r = tta_sim::run_with_tiers(
            machine,
            &compiled.program,
            p.module.initial_memory(),
            PROBE_FUEL,
            &tiers,
        )
        .ok()?;
        if Some(r.ret) != p.golden_ret {
            return None;
        }
        cycles.push(r.cycles as f64);
    }
    Some(geomean(cycles.into_iter()) / fmax_mhz)
}

/// Pareto-layered admission: keep whole non-dominated layers of
/// (slices, score) until `quota` fills; break the overflowing layer by
/// the area×runtime product. Returns `(admitted, deferred)` — deferred
/// candidates go back to the pool, not to the floor. Deterministic:
/// the sort key ends on the (unique) structural hash.
fn admit(mut cands: Vec<Analyzed>, quota: usize) -> (Vec<Analyzed>, Vec<Analyzed>) {
    if cands.len() <= quota {
        return (cands, Vec::new());
    }
    cands.sort_by(|a, b| {
        a.slices
            .cmp(&b.slices)
            .then(a.score_us().total_cmp(&b.score_us()))
            .then(a.structural.cmp(&b.structural))
    });
    let mut admitted: Vec<Analyzed> = Vec::with_capacity(quota);
    while admitted.len() < quota && !cands.is_empty() {
        // Non-dominated layer of the remainder.
        let mut layer_idx: Vec<usize> = Vec::new();
        for i in 0..cands.len() {
            let dominated = cands.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.slices <= cands[i].slices
                    && q.score_us() <= cands[i].score_us()
                    && (q.slices < cands[i].slices || q.score_us() < cands[i].score_us())
            });
            if !dominated {
                layer_idx.push(i);
            }
        }
        if layer_idx.len() > quota - admitted.len() {
            layer_idx.sort_by(|&a, &b| {
                let pa = cands[a].slices as f64 * cands[a].score_us();
                let pb = cands[b].slices as f64 * cands[b].score_us();
                pa.total_cmp(&pb)
                    .then(cands[a].structural.cmp(&cands[b].structural))
            });
            layer_idx.truncate(quota - admitted.len());
        }
        layer_idx.sort_unstable();
        for &i in layer_idx.iter().rev() {
            admitted.push(cands.swap_remove(i));
        }
    }
    (admitted, cands)
}

/// Profile-guided proposals: read the parent's microarchitectural
/// pressure and move hardware toward it (or away from idle resources).
fn guided_mutations(cfg: &SearchConfig, prof: &GuestProfile) -> Vec<SearchConfig> {
    let mut out = Vec::new();
    match *cfg {
        SearchConfig::Tta(p) => {
            let tta = |p: TtaParams| SearchConfig::Tta(p);
            let util = prof.slot_utilization();
            // Moves stalling on transport: add a bus. Mostly-idle
            // buses: shed one (narrower instruction, same schedule).
            if util > 0.5 {
                out.push(tta(TtaParams {
                    buses: p.buses + 1,
                    ..p
                }));
            }
            if util < 0.22 && p.buses > gen::MIN_BUSES {
                out.push(tta(TtaParams {
                    buses: p.buses - 1,
                    ..p
                }));
            }
            // FU occupancy: a saturated ALU asks for a second one
            // (issue 3 widens the inventory); an idle second ALU asks
            // to be dropped.
            let alu_occ: Vec<f64> = prof
                .fu
                .iter()
                .filter(|f| f.name.starts_with("alu"))
                .map(|f| {
                    if prof.cycles == 0 {
                        0.0
                    } else {
                        f.busy_cycles as f64 / prof.cycles as f64
                    }
                })
                .collect();
            let max_occ = alu_occ.iter().cloned().fold(0.0, f64::max);
            let min_occ = alu_occ.iter().cloned().fold(1.0, f64::min);
            if max_occ > 0.45 && p.issue < 3 {
                out.push(tta(TtaParams {
                    issue: p.issue + 1,
                    ..p
                }));
            }
            if min_occ < 0.10 && p.issue > 1 {
                out.push(tta(TtaParams {
                    issue: p.issue - 1,
                    ..p
                }));
            }
            // RF port pressure: mean accesses per cycle riding the port
            // ceiling wants another port (or another bank to spread
            // across); a cold port wants dropping.
            let (mut reads, mut read_cap) = (0.0, 0.0);
            let (mut writes, mut write_cap) = (0.0, 0.0);
            for r in &prof.rf {
                reads += r.mean_reads();
                read_cap += r.read_ports as f64;
                writes += r.mean_writes();
                write_cap += r.write_ports as f64;
            }
            if read_cap > 0.0 && reads / read_cap > 0.7 {
                out.push(tta(TtaParams {
                    read_ports: p.read_ports + 1,
                    ..p
                }));
                out.push(tta(TtaParams {
                    banks: p.banks + 1,
                    ..p
                }));
            }
            if read_cap > 0.0 && reads / read_cap < 0.15 && p.read_ports > 1 {
                out.push(tta(TtaParams {
                    read_ports: p.read_ports - 1,
                    ..p
                }));
            }
            if write_cap > 0.0 && writes / write_cap > 0.7 {
                out.push(tta(TtaParams {
                    write_ports: p.write_ports + 1,
                    ..p
                }));
            }
            if write_cap > 0.0 && writes / write_cap < 0.15 && p.write_ports > 1 {
                out.push(tta(TtaParams {
                    write_ports: p.write_ports - 1,
                    ..p
                }));
            }
            // Saturated transport also wants richer wiring per bus.
            if util > 0.5 && !p.full_conn {
                out.push(tta(TtaParams {
                    full_conn: true,
                    ..p
                }));
            }
        }
        SearchConfig::Vliw(p) => {
            let occ_any_high = prof.fu.iter().any(|f| {
                f.name.starts_with("alu")
                    && prof.cycles > 0
                    && f.busy_cycles as f64 / prof.cycles as f64 > 0.45
            });
            if occ_any_high && p.issue < 3 {
                out.push(SearchConfig::Vliw(VliwParams {
                    issue: p.issue + 1,
                    ..p
                }));
            }
            out.push(SearchConfig::Vliw(VliwParams {
                partitioned: !p.partitioned,
                ..p
            }));
            // The paper's own move: transform the VLIW into the TTA with
            // the same datapath and let the frontier decide.
            out.push(SearchConfig::Tta(TtaParams {
                issue: p.issue,
                banks: if p.partitioned { p.issue } else { 1 },
                regs_per_bank: p.regs_per_bank,
                read_ports: 1,
                write_ports: 1,
                buses: 3 * p.issue,
                full_conn: false,
            }));
        }
    }
    out
}

fn step_regs(regs: u16, up: bool) -> u16 {
    let i = gen::REGS_CHOICES
        .iter()
        .position(|&r| r == regs)
        .unwrap_or(0);
    let n = gen::REGS_CHOICES.len();
    gen::REGS_CHOICES[if up { (i + 1) % n } else { (i + n - 1) % n }]
}

/// One random structural step from `cfg` (may land out of space — the
/// proposal filter counts and drops those).
fn random_mutation(cfg: &SearchConfig, rng: &mut Rng) -> SearchConfig {
    match *cfg {
        SearchConfig::Tta(p) => {
            let mut p = p;
            match rng.below(7) {
                0 => {
                    p.issue = if rng.next_bool() {
                        p.issue + 1
                    } else {
                        p.issue.wrapping_sub(1)
                    }
                }
                1 => {
                    p.banks = if rng.next_bool() {
                        p.banks + 1
                    } else {
                        p.banks.wrapping_sub(1)
                    }
                }
                2 => p.regs_per_bank = step_regs(p.regs_per_bank, rng.next_bool()),
                3 => {
                    p.read_ports = if rng.next_bool() {
                        p.read_ports + 1
                    } else {
                        p.read_ports.wrapping_sub(1)
                    }
                }
                4 => {
                    p.write_ports = if rng.next_bool() {
                        p.write_ports + 1
                    } else {
                        p.write_ports.wrapping_sub(1)
                    }
                }
                5 => {
                    p.buses = if rng.next_bool() {
                        p.buses + 1
                    } else {
                        p.buses.wrapping_sub(1)
                    }
                }
                _ => p.full_conn = !p.full_conn,
            }
            SearchConfig::Tta(p)
        }
        SearchConfig::Vliw(p) => {
            let mut p = p;
            match rng.below(3) {
                0 => {
                    p.issue = if rng.next_bool() {
                        p.issue + 1
                    } else {
                        p.issue.wrapping_sub(1)
                    }
                }
                1 => p.partitioned = !p.partitioned,
                _ => p.regs_per_bank = step_regs(p.regs_per_bank, rng.next_bool()),
            }
            SearchConfig::Vliw(p)
        }
    }
}

/// A uniform-random in-space config.
fn random_config(rng: &mut Rng) -> SearchConfig {
    if rng.chance(1, 8) {
        SearchConfig::Vliw(VliwParams {
            issue: rng.range(2, 4) as u8,
            partitioned: rng.next_bool(),
            regs_per_bank: gen::REGS_CHOICES[rng.below(gen::REGS_CHOICES.len())],
        })
    } else {
        SearchConfig::Tta(TtaParams {
            issue: rng.range(1, 4) as u8,
            banks: rng.range(1, gen::MAX_BANKS as usize + 1) as u8,
            regs_per_bank: gen::REGS_CHOICES[rng.below(gen::REGS_CHOICES.len())],
            read_ports: rng.range(1, gen::MAX_PORTS as usize + 1) as u8,
            write_ports: rng.range(1, gen::MAX_PORTS as usize + 1) as u8,
            buses: rng.range(gen::MIN_BUSES as usize, gen::MAX_BUSES as usize + 1) as u8,
            full_conn: rng.next_bool(),
        })
    }
}

/// Profile a frontier parent on the smallest probe kernel (compile is a
/// cache hit — the parent went through full evaluation) and return its
/// microarchitectural profile.
fn profile_parent(
    parent: &EvalPoint,
    prepared: &[PreparedKernel],
    probe_idx: &[usize],
) -> Option<GuestProfile> {
    let machine = parent.config.as_ref()?.build();
    let p = &prepared[probe_idx[0]];
    let (compiled, _tiers) = eval::compile_cached(p, &machine);
    let (r, prof) =
        tta_sim::run_profiled(&machine, &compiled.program, p.module.initial_memory()).ok()?;
    if Some(r.ret) != p.golden_ret {
        return None;
    }
    Some(prof)
}

/// Deterministically spread `count` parent picks across the frontier
/// snapshot (always including both ends).
fn pick_parents(snapshot: &[EvalPoint], count: usize) -> Vec<&EvalPoint> {
    if snapshot.is_empty() || count == 0 {
        return Vec::new();
    }
    let count = count.min(snapshot.len());
    if count == 1 {
        return vec![&snapshot[0]];
    }
    let mut idx: Vec<usize> = (0..count)
        .map(|i| i * (snapshot.len() - 1) / (count - 1))
        .collect();
    idx.dedup();
    idx.into_iter().map(|i| &snapshot[i]).collect()
}

/// Run the staged Pareto search. See the module docs for the design and
/// the determinism contract.
pub fn search(params: &SearchParams) -> SearchOutcome {
    let t0 = Instant::now();
    let search_span = obs::span_under(obs::SpanHandle::ROOT, "search");
    let here = obs::current();

    let kernels = resolve_kernels(&params.kernels);
    let prepared: Vec<PreparedKernel> = {
        let _s = obs::span("prepare");
        kernels.iter().map(eval::prepare_kernel).collect()
    };
    let demands: Vec<KernelDemand> = prepared.iter().map(KernelDemand::of).collect();
    let probe_idx = probe_indices(&prepared, params.probe_kernels);

    let frontier = Frontier::new();
    let mut seen: HashSet<SearchConfig> = HashSet::new();
    // Stage-A survivors not yet probed away or fully evaluated. Deferred
    // at a quota means *pooled*, not dropped: every generation re-prunes
    // the pool against the improved frontier and re-admits from it, so a
    // config missed in one generation competes again in the next.
    let mut pool: Vec<Analyzed> = Vec::new();
    let mut rng = Rng::new(params.seed);
    let mut stats = SearchStats::default();

    for generation in 0..=params.generations {
        let snapshot = frontier.snapshot();

        // ---- propose ----
        let proposals: Vec<SearchConfig> = if generation == 0 {
            gen::enumerate_space()
        } else {
            let mut out = Vec::new();
            for parent in pick_parents(&snapshot, params.parents) {
                if let Some(prof) = profile_parent(parent, &prepared, &probe_idx) {
                    if let Some(cfg) = parent.config {
                        out.extend(guided_mutations(&cfg, &prof));
                    }
                }
                if let Some(cfg) = parent.config {
                    for _ in 0..params.mutants_per_parent {
                        out.push(random_mutation(&cfg, &mut rng));
                    }
                }
            }
            for _ in 0..params.fresh_per_generation {
                out.push(random_config(&mut rng));
            }
            out
        };
        stats.proposed += proposals.len() as u64;
        obs::counter::add("search.proposed", proposals.len() as u64);

        // ---- dedup + boost ----
        // A mutation proposing a config the grid already pooled is not
        // wasted: it marks that config *boosted* — the parent's profile
        // vouches for its neighbourhood — and boosted pool entries get
        // admission priority this generation.
        let mut unique: Vec<SearchConfig> = Vec::new();
        let mut boost: HashSet<SearchConfig> = HashSet::new();
        for cfg in proposals {
            if !cfg.in_space() {
                stats.invalid += 1;
                obs::counter::add("search.invalid", 1);
                continue;
            }
            if generation > 0 {
                boost.insert(cfg);
            }
            if !seen.insert(cfg) {
                stats.duplicates += 1;
                obs::counter::add("search.duplicates", 1);
                continue;
            }
            unique.push(cfg);
        }

        // ---- stage A: analytic estimate + demand lower bound ----
        for cfg in unique {
            let machine = cfg.build();
            if machine.validate_generated().is_err() {
                stats.invalid += 1;
                obs::counter::add("search.invalid", 1);
                continue;
            }
            let structural = gen::structural_hash(&machine);
            if pool.iter().any(|a| a.structural == structural) {
                stats.duplicates += 1;
                obs::counter::add("search.duplicates", 1);
                continue;
            }
            stats.configs += 1;
            let res = tta_fpga::estimate(&machine);
            let bound_us = geomean(
                demands
                    .iter()
                    .map(|d| cycle_lower_bound(d, &machine) as f64),
            ) / res.fmax_mhz;
            pool.push(Analyzed {
                cfg,
                machine,
                slices: res.slices,
                fmax_mhz: res.fmax_mhz,
                bound_us,
                probe_us: None,
                structural,
            });
        }

        // ---- analytic prune of the whole pool ----
        // Sound: a frontier point strictly better than even a config's
        // optimistic bound dominates its real point too. Repeated every
        // generation, so the pool shrinks as the frontier improves.
        pool.retain(|a| {
            let pruned = snapshot
                .iter()
                .any(|f| f.slices <= a.slices && f.runtime_us < a.bound_us);
            if pruned {
                stats.analytic_pruned += 1;
                obs::counter::add("search.pruned_analytic", 1);
            }
            !pruned
        });

        // ---- probe-quota admission (Pareto-layered, boosted first) ----
        let (boosted, rest): (Vec<Analyzed>, Vec<Analyzed>) = std::mem::take(&mut pool)
            .into_iter()
            .partition(|a| boost.contains(&a.cfg));
        let (mut admitted, deferred) = admit(boosted, params.probe_quota);
        pool = deferred;
        let (more, deferred) = admit(rest, params.probe_quota - admitted.len());
        admitted.extend(more);
        pool.extend(deferred);

        // ---- stage B: short-fuel probes, in parallel ----
        // Entries that kept a probe result from an earlier generation
        // skip the simulator entirely.
        let threads = if params.threads > 0 {
            params.threads
        } else {
            eval::eval_threads(admitted.len())
        };
        let todo: Vec<usize> = (0..admitted.len())
            .filter(|&i| admitted[i].probe_us.is_none())
            .collect();
        let probe_slots: Vec<Mutex<Option<Option<f64>>>> =
            (0..todo.len()).map(|_| Mutex::new(None)).collect();
        queue::drain_indexed(todo.len(), threads, here, |t| {
            let a = &admitted[todo[t]];
            let out = catch_unwind(AssertUnwindSafe(|| {
                probe_machine(&a.machine, &prepared, &probe_idx, a.fmax_mhz)
            }))
            .unwrap_or(None);
            *probe_slots[t].lock().unwrap() = Some(out);
        });
        stats.probed += todo.len() as u64;
        obs::counter::add("search.probed", todo.len() as u64);
        let mut failed: HashSet<usize> = HashSet::new();
        for (t, slot) in todo.iter().zip(probe_slots) {
            match slot.into_inner().unwrap().expect("probe job ran") {
                None => {
                    stats.eval_failures += 1;
                    obs::counter::add("search.eval_failures", 1);
                    failed.insert(*t);
                }
                Some(probe_us) => admitted[*t].probe_us = Some(probe_us),
            }
        }
        let mut survivors: Vec<Analyzed> = Vec::new();
        for (i, a) in admitted.into_iter().enumerate() {
            if failed.contains(&i) {
                continue;
            }
            let probe_us = a.probe_us.expect("probed or cached");
            // Heuristic prune with margin: only drop configs a frontier
            // point beats clearly on the probe subset.
            let margin = params.probe_margin.clamp(0.0, 1.0);
            let pruned = snapshot
                .iter()
                .any(|f| f.slices <= a.slices && f.probe_runtime_us < probe_us * (1.0 - margin));
            if pruned {
                stats.probe_pruned += 1;
                obs::counter::add("search.pruned_probe", 1);
            } else {
                survivors.push(a);
            }
        }

        // ---- full-eval admission (ranks on the probe sample now) ----
        let (mut finalists, deferred) = admit(survivors, params.full_quota);
        finalists.sort_by_key(|a| a.structural);
        pool.extend(deferred);

        // ---- stage C: full evaluation, inserting as results finish ----
        let full_slots: Vec<Mutex<Option<bool>>> =
            (0..finalists.len()).map(|_| Mutex::new(None)).collect();
        queue::drain_indexed(finalists.len(), threads, here, |i| {
            let a = &finalists[i];
            let kept = catch_unwind(AssertUnwindSafe(|| {
                eval_machine_full(Some(a.cfg), &a.machine, &prepared, &probe_idx)
            }))
            .ok()
            .map(|p| frontier.insert(p));
            *full_slots[i].lock().unwrap() = Some(kept.unwrap_or(false));
            if kept.is_none() {
                obs::counter::add("search.eval_failures", 1);
            }
        });
        for slot in full_slots {
            stats.full_evals += 1;
            obs::counter::add("search.full_evals", 1);
            if slot.into_inner().unwrap() == Some(true) {
                stats.inserted += 1;
                obs::counter::add("search.frontier_inserted", 1);
            }
        }
    }

    stats.deferred = pool.len() as u64;
    stats.wall_s = t0.elapsed().as_secs_f64();
    obs::counter::set_gauge("search.pool_remaining", pool.len() as i64);
    obs::counter::set_gauge("search.frontier_size", frontier.len() as i64);
    drop(search_span);
    SearchOutcome {
        frontier: frontier.snapshot(),
        stats,
    }
}

/// Render a frontier (or any point list) as a markdown table on the
/// Fig. 6 axes.
pub fn frontier_markdown(points: &[EvalPoint]) -> String {
    let mut out = String::from(
        "| design | slices | LUTs | fmax (MHz) | geomean cycles | runtime (µs) |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.2} |\n",
            p.name, p.slices, p.lut_core, p.fmax_mhz, p.geomean_cycles, p.runtime_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(name: &str, slices: u32, runtime_us: f64, structural: u64) -> EvalPoint {
        EvalPoint {
            config: None,
            name: name.into(),
            slices,
            lut_core: slices * 4,
            fmax_mhz: 100.0,
            geomean_cycles: runtime_us * 100.0,
            runtime_us,
            probe_runtime_us: runtime_us,
            structural,
        }
    }

    #[test]
    fn dominance_is_strict_on_at_least_one_axis() {
        let a = pt("a", 100, 10.0, 1);
        let b = pt("b", 100, 10.0, 2);
        let c = pt("c", 90, 10.0, 3);
        let d = pt("d", 90, 9.0, 4);
        assert!(!dominates(&a, &b), "equal points do not dominate");
        assert!(!dominates(&b, &a));
        assert!(dominates(&c, &a), "better area, equal runtime dominates");
        assert!(!dominates(&a, &c));
        assert!(dominates(&d, &a), "better on both axes dominates");
        assert!(!dominates(&a, &d));
    }

    #[test]
    fn frontier_insertion_and_domination() {
        let f = Frontier::new();
        assert!(f.insert(pt("a", 100, 10.0, 1)));
        assert!(f.insert(pt("b", 200, 5.0, 2)), "incomparable point joins");
        assert_eq!(f.len(), 2);
        assert!(!f.insert(pt("c", 250, 6.0, 3)), "dominated point rejected");
        assert_eq!(f.len(), 2);
        assert!(f.insert(pt("d", 90, 4.0, 4)), "dominating point sweeps");
        assert_eq!(f.len(), 1, "both originals were dominated by d");
        assert_eq!(f.snapshot()[0].name, "d");
    }

    #[test]
    fn frontier_keeps_ties_but_rejects_structural_duplicates() {
        let f = Frontier::new();
        assert!(f.insert(pt("a", 100, 10.0, 1)));
        assert!(
            f.insert(pt("b", 100, 10.0, 2)),
            "tie on both axes, different structure: both stay"
        );
        assert_eq!(f.len(), 2);
        assert!(
            !f.insert(pt("a2", 100, 10.0, 1)),
            "structural duplicate rejected"
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn frontier_content_is_insertion_order_independent() {
        let points = [
            pt("a", 100, 10.0, 1),
            pt("b", 200, 5.0, 2),
            pt("c", 250, 6.0, 3), // dominated by b
            pt("d", 90, 4.0, 4),  // dominates everything
            pt("e", 90, 4.0, 5),  // ties d
        ];
        let orders: [[usize; 5]; 4] = [
            [0, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [3, 4, 0, 1, 2],
        ];
        let mut results: Vec<Vec<(String, u64)>> = Vec::new();
        for order in orders {
            let f = Frontier::new();
            for i in order {
                f.insert(points[i].clone());
            }
            results.push(
                f.snapshot()
                    .iter()
                    .map(|p| (p.name.clone(), p.structural))
                    .collect(),
            );
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0].len(), 2, "d and its tie e survive");
    }

    #[test]
    fn cycle_lower_bound_is_optimistic_and_style_aware() {
        let d = KernelDemand {
            alu_ops: 900,
            mem_ops: 300,
            ctrl_ops: 100,
        };
        let tta = presets::m_tta_2(); // 1 ALU, 1 LSU, 6 buses
        let lb = cycle_lower_bound(&d, &tta);
        assert_eq!(lb, 900, "ALU-bound: 900 ops on one ALU");
        let tta3 = presets::m_tta_3(); // 2 ALUs
        assert_eq!(cycle_lower_bound(&d, &tta3), 450);
        let scalar = presets::mblaze_3();
        assert_eq!(cycle_lower_bound(&d, &scalar), 1300, "scalar: 1/cycle");
        // A 3-bus TTA is transport-bound on this demand mix with 2 ALUs
        // hypothetically — check the bus term binds when buses are scarce.
        let m1 = presets::m_tta_1(); // 3 buses, 1 ALU
        assert_eq!(cycle_lower_bound(&d, &m1), 900.max(1300u64.div_ceil(3)));
    }

    #[test]
    fn admission_respects_quota_and_keeps_the_first_layer() {
        let mk = |slices: u32, bound: f64, s: u64| Analyzed {
            cfg: gen::paper_configs()[0].1,
            machine: presets::m_tta_1(),
            slices,
            fmax_mhz: 100.0,
            bound_us: bound,
            probe_us: None,
            structural: s,
        };
        let cands = vec![
            mk(100, 10.0, 1), // layer 1
            mk(200, 5.0, 2),  // layer 1
            mk(210, 11.0, 3), // dominated
            mk(300, 12.0, 4), // dominated
        ];
        let (admitted, deferred) = admit(cands, 2);
        assert_eq!(admitted.len(), 2);
        assert_eq!(deferred.len(), 2, "the rest is deferred, not dropped");
        let mut s: Vec<u64> = admitted.iter().map(|a| a.structural).collect();
        s.sort_unstable();
        assert_eq!(s, [1, 2], "the non-dominated layer is admitted first");
        let mut d: Vec<u64> = deferred.iter().map(|a| a.structural).collect();
        d.sort_unstable();
        assert_eq!(d, [3, 4]);
    }

    #[test]
    fn admission_prefers_a_probe_sample_over_the_bound() {
        let mk = |slices: u32, bound: f64, probe: Option<f64>, s: u64| Analyzed {
            cfg: gen::paper_configs()[0].1,
            machine: presets::m_tta_1(),
            slices,
            fmax_mhz: 100.0,
            bound_us: bound,
            probe_us: probe,
            structural: s,
        };
        // Same area: the probed entry's (worse) sample outranks its own
        // optimistic bound, so the unprobed candidate wins the slot.
        let cands = vec![mk(100, 2.0, Some(20.0), 1), mk(100, 10.0, None, 2)];
        let (admitted, _) = admit(cands, 1);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].structural, 2);
    }
}
