//! Dictionary-based instruction compression for TTA programs.
//!
//! The paper names its wide instructions as TTA's main drawback and points
//! at dictionary compression (Heikkinen et al. \[24\]) and FPGA-optimised
//! compression as future work (§VI). This module implements the classic
//! full-instruction dictionary scheme: the program stores one
//! `ceil(log2(|dictionary|))`-bit index per instruction plus the dictionary
//! of distinct instruction words — profitable exactly when the move-level
//! redundancy of TTA code keeps the dictionary small.

use std::collections::HashMap;
use tta_isa::{Program, TtaInst};
use tta_model::Machine;

/// Result of compressing one program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Compression {
    /// Instructions in the program.
    pub instructions: usize,
    /// Distinct instruction words (dictionary entries).
    pub dictionary_entries: usize,
    /// Uncompressed image bits (instructions x width).
    pub uncompressed_bits: u64,
    /// Compressed image bits (indices + dictionary storage).
    pub compressed_bits: u64,
}

impl Compression {
    /// Compression ratio (compressed / uncompressed; < 1 is a win).
    pub fn ratio(&self) -> f64 {
        self.compressed_bits as f64 / self.uncompressed_bits as f64
    }
}

/// Compress a TTA program with a full-instruction dictionary.
///
/// # Panics
///
/// Panics if the program is not TTA-style (the scheme relies on the wide,
/// redundant TTA words; VLIW/scalar programs are out of scope, as in
/// \[24\]).
pub fn dictionary_compress(m: &Machine, program: &Program) -> Compression {
    let Program::Tta(insts) = program else {
        panic!("dictionary compression applies to TTA programs")
    };
    let width = tta_isa::encoding::instruction_bits(m) as u64;
    let mut dict: HashMap<&TtaInst, u32> = HashMap::new();
    for inst in insts {
        let next = dict.len() as u32;
        dict.entry(inst).or_insert(next);
    }
    let entries = dict.len().max(1);
    let index_bits = tta_isa::encoding::ceil_log2(entries).max(1) as u64;
    Compression {
        instructions: insts.len(),
        dictionary_entries: entries,
        uncompressed_bits: insts.len() as u64 * width,
        compressed_bits: insts.len() as u64 * index_bits + entries as u64 * width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_compiler::compile;
    use tta_model::presets;

    fn compress_kernel(kernel: &str, machine: &Machine) -> Compression {
        let k = tta_chstone::by_name(kernel).unwrap();
        let module = (k.build)();
        let compiled = compile(&module, machine).unwrap();
        dictionary_compress(machine, &compiled.program)
    }

    #[test]
    fn kernels_compress_below_unity() {
        // NOP-heavy, repetitive TTA schedules must compress.
        for kernel in ["gsm", "sha", "motion"] {
            let c = compress_kernel(kernel, &presets::m_tta_2());
            assert!(c.ratio() < 1.0, "{kernel}: ratio {:.2}", c.ratio());
            assert!(c.dictionary_entries < c.instructions);
        }
    }

    #[test]
    fn accounting_adds_up() {
        let m = presets::m_tta_1();
        let c = compress_kernel("adpcm", &m);
        let width = tta_isa::encoding::instruction_bits(&m) as u64;
        assert_eq!(c.uncompressed_bits, c.instructions as u64 * width);
        assert!(c.compressed_bits >= c.dictionary_entries as u64 * width);
    }

    #[test]
    #[should_panic(expected = "TTA programs")]
    fn rejects_non_tta_programs() {
        let m = presets::m_vliw_2();
        let k = tta_chstone::by_name("sha").unwrap();
        let module = (k.build)();
        let compiled = compile(&module, &m).unwrap();
        let _ = dictionary_compress(&m, &compiled.program);
    }
}
