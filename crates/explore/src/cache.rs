//! The sharded, content-keyed compile cache.
//!
//! Every consumer of the pipeline — the evaluation work queue, the batch
//! server, repeated bench repetitions — revisits the same
//! (machine × kernel) pairs, so compilation is memoised process-wide.
//! Keys are *content* hashes (the machine's full `Debug` form and the
//! kernel's IR text), never identities, so equivalent requests from
//! different call sites share one artefact.
//!
//! The map is split across [`SHARDS`] independently-locked shards chosen
//! by key hash: a server draining dozens of concurrent simulations then
//! only contends on a shard when two jobs race for the *same* artefact's
//! neighbourhood, not on one global mutex. Values are
//! `(Arc<Compiled>, Arc<Tiers>)` — the shared tier table means superblocks
//! promoted by the first run of a pair are reused by every later run
//! (promotion is lock-free, so sharing across worker threads is safe).
//!
//! The cache is *bounded*: each shard keeps at most its share of the
//! configured capacity and evicts its oldest insertion first (FIFO — the
//! access pattern is "a burst of evaluations revisits a working set, a
//! design-space search streams through thousands of one-shot configs",
//! where FIFO behaves like LRU without per-hit bookkeeping). Evictions
//! land on the `cache.evictions` obs counter. The default capacity holds
//! the full 13×8 evaluation working set (104 pairs) plus an order of
//! magnitude of head room, so `evaluate_all` hit rates are unaffected.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use tta_compiler::{compile, Compiled};
use tta_model::Machine;
use tta_obs as obs;

/// A cached compile artefact: the compiled program plus its shared
/// compiled-tier promotion state.
pub type Entry = (Arc<Compiled>, Arc<tta_sim::Tiers>);

/// Cache key: (machine-`Debug` hash, IR-text hash).
pub type Key = (u64, u64);

/// Shard count. A small power of two: enough to spread the handful of
/// hot keys a concurrent batch touches, cheap enough that an idle cache
/// costs nothing.
pub const SHARDS: usize = 16;

/// Default total capacity (entries across all shards): the 104-pair
/// evaluation working set never evicts, a thousand-config search stays
/// bounded at a few GB of compiled artefacts at most.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Hash any `Hash` value with the std default hasher.
pub fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// One shard: the key→entry map plus the FIFO insertion order backing
/// eviction.
#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
}

/// A sharded, bounded `Key → Entry` map. See the module docs for the
/// design.
pub struct CompileCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry cap (total capacity / shard count, at least 1).
    shard_cap: usize,
}

impl CompileCache {
    /// A cache with [`SHARDS`] shards and the [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        CompileCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded to roughly `capacity` entries in total (rounded up
    /// to a multiple of the shard count; at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        CompileCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity.div_ceil(SHARDS).max(1),
        }
    }

    /// Total entry capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_cap * self.shards.len()
    }

    /// The shard holding `key`: mix both halves so machines (which share
    /// an IR hash across kernels) and kernels (which share a machine
    /// hash across machines) both spread.
    fn shard(&self, key: Key) -> &Mutex<Shard> {
        let mixed = key.0.rotate_left(17) ^ key.1.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// The cache key for compiling `ir_hash` on `machine`.
    pub fn key_for(machine: &Machine, ir_hash: u64) -> Key {
        (hash_of(&format!("{machine:?}")), ir_hash)
    }

    /// Look up `key`, or compile `module` for `machine` and insert. The
    /// hit path still charges a (tiny) `compile` span so stage accounting
    /// always reflects the stage that ran; misses are charged in full by
    /// `compile` itself. Hit/miss totals land on the
    /// `eval.compile_cache.{hits,misses}` counters.
    ///
    /// Compilation happens *outside* the shard lock: a racing worker may
    /// compile the same key concurrently and insert second, but both
    /// artefacts have identical content, so last-write-wins is fine.
    pub fn get_or_compile(
        &self,
        key: Key,
        module: &tta_ir::Module,
        machine: &Machine,
        what: &str,
    ) -> Entry {
        {
            let _s = obs::span("compile");
            if let Some(hit) = self.shard(key).lock().unwrap().map.get(&key) {
                obs::counter::add("eval.compile_cache.hits", 1);
                return hit.clone();
            }
        }
        obs::counter::add("eval.compile_cache.misses", 1);
        let compiled = Arc::new(
            compile(module, machine).unwrap_or_else(|e| panic!("{what} on {}: {e}", machine.name)),
        );
        let tiers = Arc::new(tta_sim::Tiers::for_program(&compiled.program));
        let entry = (compiled, tiers);
        self.insert(key, entry.clone());
        entry
    }

    /// Insert `entry`, evicting the shard's oldest insertions past its
    /// capacity (counted on `cache.evictions`).
    fn insert(&self, key: Key, entry: Entry) {
        let mut shard = self.shard(key).lock().unwrap();
        if shard.map.insert(key, entry).is_none() {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while shard.map.len() > self.shard_cap {
            let oldest = shard.order.pop_front().expect("order tracks the map");
            shard.map.remove(&oldest);
            evicted += 1;
        }
        if evicted > 0 {
            obs::counter::add("cache.evictions", evicted);
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

/// The process-wide cache shared by the evaluation pipeline and the
/// batch server.
pub fn global() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(CompileCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    fn small_module() -> tta_ir::Module {
        tta_chstone::by_name("sha").map(|k| (k.build)()).unwrap()
    }

    #[test]
    fn hit_returns_the_same_artefact() {
        let cache = CompileCache::new();
        let module = small_module();
        let machine = presets::mblaze_3();
        let key = CompileCache::key_for(&machine, hash_of("sha-ir"));
        let a = cache.get_or_compile(key, &module, &machine, "sha");
        let b = cache.get_or_compile(key, &module, &machine, "sha");
        assert!(Arc::ptr_eq(&a.0, &b.0), "hit must share the artefact");
        assert!(Arc::ptr_eq(&a.1, &b.1), "hit must share the tier table");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_machines_get_distinct_entries() {
        let cache = CompileCache::new();
        let module = small_module();
        let ir = hash_of("sha-ir");
        for m in [presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()] {
            cache.get_or_compile(CompileCache::key_for(&m, ir), &module, &m, "sha");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.shard_count(), SHARDS);
    }

    #[test]
    fn capacity_is_enforced_with_fifo_eviction() {
        // One entry per shard: every second distinct key in a shard
        // evicts the oldest one.
        let cache = CompileCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let module = small_module();
        let machine = presets::mblaze_3();
        let before = tta_obs::counter::get("cache.evictions").unwrap_or(0);
        // Distinct IR hashes spread across shards; 4x capacity forces
        // evictions no matter how the hashes land.
        for i in 0..(4 * SHARDS as u64) {
            let key = CompileCache::key_for(&machine, i);
            cache.get_or_compile(key, &module, &machine, "sha");
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds capacity {}",
            cache.len(),
            cache.capacity()
        );
        let evicted = tta_obs::counter::get("cache.evictions").unwrap_or(0) - before;
        assert!(evicted > 0, "overfilling must evict");

        // An evicted key recompiles (miss), a resident key still hits.
        let misses_before = tta_obs::counter::get("eval.compile_cache.misses").unwrap_or(0);
        let key0 = CompileCache::key_for(&machine, 0);
        cache.get_or_compile(key0, &module, &machine, "sha");
        let misses_after = tta_obs::counter::get("eval.compile_cache.misses").unwrap_or(0);
        assert_eq!(misses_after, misses_before + 1, "oldest key was evicted");
    }

    #[test]
    fn default_capacity_holds_the_evaluation_working_set() {
        // 13 machines x 8 kernels = 104 pairs; the default capacity must
        // keep them all resident so evaluate_all hit rates are unchanged.
        assert!(CompileCache::new().capacity() >= 104 * 4);
    }

    #[test]
    fn reinserting_the_same_key_does_not_count_as_growth() {
        let cache = CompileCache::with_capacity(SHARDS);
        let module = small_module();
        let machine = presets::mblaze_3();
        let key = CompileCache::key_for(&machine, 7);
        let before = tta_obs::counter::get("cache.evictions").unwrap_or(0);
        for _ in 0..5 {
            cache.get_or_compile(key, &module, &machine, "sha");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(
            tta_obs::counter::get("cache.evictions").unwrap_or(0),
            before,
            "hits never evict"
        );
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry_per_key() {
        let cache = CompileCache::new();
        let module = small_module();
        let machine = presets::mblaze_3();
        let key = CompileCache::key_for(&machine, hash_of("sha-ir"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..3 {
                        let e = cache.get_or_compile(key, &module, &machine, "sha");
                        assert!(!e.0.program.is_empty());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
