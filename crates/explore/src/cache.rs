//! The sharded, content-keyed compile cache.
//!
//! Every consumer of the pipeline — the evaluation work queue, the batch
//! server, repeated bench repetitions — revisits the same
//! (machine × kernel) pairs, so compilation is memoised process-wide.
//! Keys are *content* hashes (the machine's full `Debug` form and the
//! kernel's IR text), never identities, so equivalent requests from
//! different call sites share one artefact.
//!
//! The map is split across [`SHARDS`] independently-locked shards chosen
//! by key hash: a server draining dozens of concurrent simulations then
//! only contends on a shard when two jobs race for the *same* artefact's
//! neighbourhood, not on one global mutex. Values are
//! `(Arc<Compiled>, Arc<Tiers>)` — the shared tier table means superblocks
//! promoted by the first run of a pair are reused by every later run
//! (promotion is lock-free, so sharing across worker threads is safe).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use tta_compiler::{compile, Compiled};
use tta_model::Machine;
use tta_obs as obs;

/// A cached compile artefact: the compiled program plus its shared
/// compiled-tier promotion state.
pub type Entry = (Arc<Compiled>, Arc<tta_sim::Tiers>);

/// Cache key: (machine-`Debug` hash, IR-text hash).
pub type Key = (u64, u64);

/// Shard count. A small power of two: enough to spread the handful of
/// hot keys a concurrent batch touches, cheap enough that an idle cache
/// costs nothing.
pub const SHARDS: usize = 16;

/// Hash any `Hash` value with the std default hasher.
pub fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// A sharded `Key → Entry` map. See the module docs for the design.
pub struct CompileCache {
    shards: Vec<Mutex<HashMap<Key, Entry>>>,
}

impl CompileCache {
    /// An empty cache with [`SHARDS`] shards.
    pub fn new() -> Self {
        CompileCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The shard holding `key`: mix both halves so machines (which share
    /// an IR hash across kernels) and kernels (which share a machine
    /// hash across machines) both spread.
    fn shard(&self, key: Key) -> &Mutex<HashMap<Key, Entry>> {
        let mixed = key.0.rotate_left(17) ^ key.1.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// The cache key for compiling `ir_hash` on `machine`.
    pub fn key_for(machine: &Machine, ir_hash: u64) -> Key {
        (hash_of(&format!("{machine:?}")), ir_hash)
    }

    /// Look up `key`, or compile `module` for `machine` and insert. The
    /// hit path still charges a (tiny) `compile` span so stage accounting
    /// always reflects the stage that ran; misses are charged in full by
    /// `compile` itself. Hit/miss totals land on the
    /// `eval.compile_cache.{hits,misses}` counters.
    ///
    /// Compilation happens *outside* the shard lock: a racing worker may
    /// compile the same key concurrently and insert second, but both
    /// artefacts have identical content, so last-write-wins is fine.
    pub fn get_or_compile(
        &self,
        key: Key,
        module: &tta_ir::Module,
        machine: &Machine,
        what: &str,
    ) -> Entry {
        {
            let _s = obs::span("compile");
            if let Some(hit) = self.shard(key).lock().unwrap().get(&key) {
                obs::counter::add("eval.compile_cache.hits", 1);
                return hit.clone();
            }
        }
        obs::counter::add("eval.compile_cache.misses", 1);
        let compiled = Arc::new(
            compile(module, machine).unwrap_or_else(|e| panic!("{what} on {}: {e}", machine.name)),
        );
        let tiers = Arc::new(tta_sim::Tiers::for_program(&compiled.program));
        let entry = (compiled, tiers);
        self.shard(key).lock().unwrap().insert(key, entry.clone());
        entry
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::new()
    }
}

/// The process-wide cache shared by the evaluation pipeline and the
/// batch server.
pub fn global() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(CompileCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    fn small_module() -> tta_ir::Module {
        tta_chstone::by_name("sha").map(|k| (k.build)()).unwrap()
    }

    #[test]
    fn hit_returns_the_same_artefact() {
        let cache = CompileCache::new();
        let module = small_module();
        let machine = presets::mblaze_3();
        let key = CompileCache::key_for(&machine, hash_of("sha-ir"));
        let a = cache.get_or_compile(key, &module, &machine, "sha");
        let b = cache.get_or_compile(key, &module, &machine, "sha");
        assert!(Arc::ptr_eq(&a.0, &b.0), "hit must share the artefact");
        assert!(Arc::ptr_eq(&a.1, &b.1), "hit must share the tier table");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_machines_get_distinct_entries() {
        let cache = CompileCache::new();
        let module = small_module();
        let ir = hash_of("sha-ir");
        for m in [presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()] {
            cache.get_or_compile(CompileCache::key_for(&m, ir), &module, &m, "sha");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.shard_count(), SHARDS);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry_per_key() {
        let cache = CompileCache::new();
        let module = small_module();
        let machine = presets::mblaze_3();
        let key = CompileCache::key_for(&machine, hash_of("sha-ir"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..3 {
                        let e = cache.get_or_compile(key, &module, &machine, "sha");
                        assert!(!e.0.program.is_empty());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
    }
}
