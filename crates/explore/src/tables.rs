//! Regeneration of the paper's tables from an evaluation.
//!
//! Each function renders the same rows the paper prints: absolute values
//! for the baseline of each issue class and relative factors for the
//! alternatives (Table II relative to MicroBlaze / m-vliw-N, Table IV the
//! same, Table III relative to mblaze-3 / m-vliw-2 / m-vliw-3).

use crate::eval::MachineReport;
use tta_model::Opcode;

/// Render Table I: the operation set with latencies.
pub fn table1() -> String {
    let mut out = String::from("Table I: integer operations and latencies\n");
    out.push_str("ALU:\n");
    for op in Opcode::ALU_OPS {
        out.push_str(&format!("  {:5} ({})\n", op.mnemonic(), op.latency()));
    }
    out.push_str("LSU:\n");
    for op in Opcode::LSU_OPS {
        out.push_str(&format!("  {:5} ({})\n", op.mnemonic(), op.latency()));
    }
    out
}

fn find<'a>(reports: &'a [MachineReport], name: &str) -> &'a MachineReport {
    reports
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no report for {name}"))
}

/// The paper's reporting groups: (group members, baseline) per issue class.
pub fn groups() -> Vec<(Vec<&'static str>, &'static str)> {
    vec![
        (vec!["mblaze-3", "mblaze-5", "m-tta-1"], "mblaze-3"),
        (
            vec!["m-vliw-2", "p-vliw-2", "m-tta-2", "p-tta-2", "bm-tta-2"],
            "m-vliw-2",
        ),
        (
            vec!["m-vliw-3", "p-vliw-3", "m-tta-3", "p-tta-3", "bm-tta-3"],
            "m-vliw-3",
        ),
    ]
}

/// Render Table II: instruction widths and program image sizes (kbit),
/// relative to the class baseline.
pub fn table2(reports: &[MachineReport]) -> String {
    let kernels: Vec<&str> = reports[0].runs.iter().map(|r| r.kernel.as_str()).collect();
    let mut out = String::from("Table II: instruction widths and program image sizes\n");
    out.push_str(&format!("{:10} {:>8}", "machine", "width"));
    for k in &kernels {
        out.push_str(&format!(" {:>9}", k));
    }
    out.push('\n');
    // The two MicroBlaze pipelines are binary compatible, so Table II lists
    // the single-issue class once, as the paper does.
    let t2_groups: Vec<(Vec<&str>, &str)> = groups()
        .into_iter()
        .map(|(members, base)| {
            (
                members.into_iter().filter(|m| *m != "mblaze-5").collect(),
                base,
            )
        })
        .collect();
    for (members, baseline) in t2_groups {
        let base = find(reports, baseline);
        for name in members {
            let r = find(reports, name);
            out.push_str(&format!(
                "{:10} {:>4}b ({:4.2}x)",
                r.name,
                r.instr_bits,
                r.instr_bits as f64 / base.instr_bits as f64
            ));
            for k in &kernels {
                let bits = r.run(k).image_bits as f64;
                if r.name == base.name {
                    out.push_str(&format!(" {:>7.0}kb", bits / 1000.0));
                } else {
                    let rel = bits / base.run(k).image_bits as f64;
                    out.push_str(&format!(" {:>8.2}x", rel));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Render Table III: fmax and FPGA resource usage, relative to the class
/// baseline.
pub fn table3(reports: &[MachineReport]) -> String {
    let mut out = String::from("Table III: FPGA resource usage and maximum clock frequency\n");
    out.push_str(&format!(
        "{:10} {:>5} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
        "machine", "R/W", "fmax", "core LUT", "RF LUT", "LUTRAM", "IC", "FF"
    ));
    for (members, baseline) in groups() {
        let base = find(reports, baseline);
        for name in members {
            let r = find(reports, name);
            let res = &r.resources;
            let ports = format!(
                "{}/{}",
                r.machine.total_read_ports(),
                r.machine.total_write_ports()
            );
            out.push_str(&format!(
                "{:10} {:>5} {:>4.0}MHz {:>5} ({:4.2}x) {:>5} ({:4.2}x) {:>6} {:>7} {:>7}\n",
                r.name,
                ports,
                res.fmax_mhz,
                res.lut_core,
                res.lut_core as f64 / base.resources.lut_core as f64,
                res.lut_rf,
                res.lut_rf as f64 / base.resources.lut_rf.max(1) as f64,
                res.lut_as_ram,
                res.lut_ic,
                res.ff,
            ));
        }
    }
    out
}

/// Render Table IV: cycle counts, relative to the class baseline.
pub fn table4(reports: &[MachineReport]) -> String {
    let kernels: Vec<&str> = reports[0].runs.iter().map(|r| r.kernel.as_str()).collect();
    let mut out = String::from("Table IV: cycle counts\n");
    out.push_str(&format!("{:10}", "machine"));
    for k in &kernels {
        out.push_str(&format!(" {:>9}", k));
    }
    out.push('\n');
    for (members, baseline) in groups() {
        let base = find(reports, baseline);
        for name in members {
            let r = find(reports, name);
            out.push_str(&format!("{:10}", r.name));
            for k in &kernels {
                if r.name == base.name {
                    out.push_str(&format!(" {:>9}", r.run(k).cycles));
                } else {
                    let rel = r.run(k).cycles as f64 / base.run(k).cycles as f64;
                    out.push_str(&format!(" {:>8.2}x", rel));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// A machine-readable Table IV row set: (machine, kernel, cycles, relative
/// to the class baseline).
pub fn table4_data(reports: &[MachineReport]) -> Vec<(String, String, u64, f64)> {
    let mut rows = Vec::new();
    for (members, baseline) in groups() {
        let base = find(reports, baseline);
        for name in members {
            let r = find(reports, name);
            for run in &r.runs {
                let rel = run.cycles as f64 / base.run(&run.kernel).cycles as f64;
                rows.push((r.name.clone(), run.kernel.clone(), run.cycles, rel));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use tta_model::presets;

    fn reports() -> Vec<MachineReport> {
        let machines = vec![
            presets::mblaze_3(),
            presets::mblaze_5(),
            presets::m_tta_1(),
            presets::m_vliw_2(),
            presets::p_vliw_2(),
            presets::m_tta_2(),
            presets::p_tta_2(),
            presets::bm_tta_2(),
            presets::m_vliw_3(),
            presets::p_vliw_3(),
            presets::m_tta_3(),
            presets::p_tta_3(),
            presets::bm_tta_3(),
        ];
        let kernels: Vec<_> = ["gsm", "motion"]
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap())
            .collect();
        evaluate(&machines, &kernels)
    }

    #[test]
    fn tables_render_all_design_points() {
        let r = reports();
        let t2 = table2(&r);
        let t3 = table3(&r);
        let t4 = table4(&r);
        for name in ["mblaze-3", "m-tta-1", "m-vliw-2", "bm-tta-3"] {
            // mblaze-5 is deliberately absent from Table II (binary
            // compatible with mblaze-3), matching the paper.
            assert!(
                t3.contains(name) || name == "mblaze-5",
                "{name} missing in t3"
            );
            assert!(t4.contains(name), "{name} missing in t4");
            let _ = &t2;
        }
        assert!(table1().contains("mul"));
    }

    #[test]
    fn table4_relatives_are_sane() {
        let r = reports();
        for (machine, kernel, cycles, rel) in table4_data(&r) {
            assert!(cycles > 0, "{machine}/{kernel}");
            assert!(
                (0.1..10.0).contains(&rel),
                "{machine}/{kernel}: relative {rel}"
            );
        }
    }
}
