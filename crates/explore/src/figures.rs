//! Regeneration of the paper's figures from an evaluation.
//!
//! * **Fig. 5** — execution time at the achieved fmax, normalised to
//!   mblaze-3 (single-issue group) or m-vliw-2/3 (multi-issue groups),
//!   one bar per benchmark per machine.
//! * **Fig. 6** — slice utilisation vs. overall execution time (geometric
//!   mean over benchmarks, normalised to m-tta-1): the performance/area
//!   scatter whose near-origin points are the paper's best designs.

use crate::eval::MachineReport;
use crate::tables::groups;

/// One bar of Fig. 5: normalised runtime of a kernel on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Bar {
    /// Design point.
    pub machine: String,
    /// Benchmark.
    pub kernel: String,
    /// Runtime relative to the issue-class baseline.
    pub relative_runtime: f64,
}

fn runtime_us(r: &MachineReport, kernel: &str) -> f64 {
    r.run(kernel).cycles as f64 / r.resources.fmax_mhz
}

/// Compute the Fig. 5 data set.
pub fn fig5_data(reports: &[MachineReport]) -> Vec<Fig5Bar> {
    let find = |n: &str| reports.iter().find(|r| r.name == n).expect("report");
    let mut bars = Vec::new();
    for (members, baseline) in groups() {
        let base = find(baseline);
        for name in members {
            let r = find(name);
            for run in &r.runs {
                bars.push(Fig5Bar {
                    machine: r.name.clone(),
                    kernel: run.kernel.clone(),
                    relative_runtime: runtime_us(r, &run.kernel) / runtime_us(base, &run.kernel),
                });
            }
        }
    }
    bars
}

/// Render Fig. 5 as ASCII bars.
pub fn fig5(reports: &[MachineReport]) -> String {
    let mut out = String::from("Fig. 5: execution times at achieved fmax (normalised)\n");
    let bars = fig5_data(reports);
    let mut machines: Vec<&str> = Vec::new();
    for b in &bars {
        if !machines.contains(&b.machine.as_str()) {
            machines.push(&b.machine);
        }
    }
    let kernels: Vec<&str> = reports[0].runs.iter().map(|r| r.kernel.as_str()).collect();
    for k in &kernels {
        out.push_str(&format!("-- {k}\n"));
        for m in &machines {
            let bar = bars
                .iter()
                .find(|b| b.machine == *m && b.kernel == *k)
                .expect("bar");
            let n = (bar.relative_runtime * 40.0).round() as usize;
            out.push_str(&format!(
                "{:10} {:5.2} |{}\n",
                m,
                bar.relative_runtime,
                "#".repeat(n.min(80))
            ));
        }
    }
    out
}

/// One point of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Design point.
    pub machine: String,
    /// Estimated slice utilisation.
    pub slices: u32,
    /// Geomean execution time normalised to m-tta-1.
    pub relative_time: f64,
}

/// Compute the Fig. 6 scatter.
pub fn fig6_data(reports: &[MachineReport]) -> Vec<Fig6Point> {
    let base = reports
        .iter()
        .find(|r| r.name == "m-tta-1")
        .expect("m-tta-1 present")
        .geomean_runtime_us();
    reports
        .iter()
        .map(|r| Fig6Point {
            machine: r.name.clone(),
            slices: r.resources.slices,
            relative_time: r.geomean_runtime_us() / base,
        })
        .collect()
}

/// Render Fig. 6 as an ASCII scatter plot.
pub fn fig6(reports: &[MachineReport]) -> String {
    let pts = fig6_data(reports);
    let max_slices = pts.iter().map(|p| p.slices).max().unwrap_or(1) as f64;
    let max_t = pts.iter().map(|p| p.relative_time).fold(0.0f64, f64::max);
    let (w, h) = (64usize, 20usize);
    let mut grid = vec![vec![b' '; w + 1]; h + 1];
    let mut labels = Vec::new();
    for (i, p) in pts.iter().enumerate() {
        let x = ((p.slices as f64 / max_slices) * w as f64).round() as usize;
        let y = h - ((p.relative_time / max_t) * h as f64).round() as usize;
        let c = b'A' + (i as u8);
        grid[y.min(h)][x.min(w)] = c;
        labels.push(format!(
            "  {} = {:10} slices {:5}  time {:4.2}x",
            c as char, p.machine, p.slices, p.relative_time
        ));
    }
    let mut out = String::from(
        "Fig. 6: slice utilisation vs overall execution time (geomean, norm. to m-tta-1)\n",
    );
    for row in grid {
        out.push_str("  |");
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(w + 1));
    out.push_str("> slices\n");
    for l in labels {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use tta_model::presets;

    fn reports() -> Vec<MachineReport> {
        let kernels: Vec<_> = ["adpcm", "sha"]
            .iter()
            .map(|n| tta_chstone::by_name(n).unwrap())
            .collect();
        evaluate(&presets::all_design_points(), &kernels)
    }

    #[test]
    fn fig5_baselines_are_unity() {
        let r = reports();
        for b in fig5_data(&r) {
            if b.machine == "mblaze-3" || b.machine == "m-vliw-2" || b.machine == "m-vliw-3" {
                assert!((b.relative_runtime - 1.0).abs() < 1e-9, "{b:?}");
            } else {
                assert!(b.relative_runtime > 0.0);
            }
        }
    }

    #[test]
    fn fig6_m_tta_1_is_unity() {
        let r = reports();
        let pts = fig6_data(&r);
        let p = pts.iter().find(|p| p.machine == "m-tta-1").unwrap();
        assert!((p.relative_time - 1.0).abs() < 1e-9);
        assert!(pts.iter().all(|p| p.slices > 0));
    }

    #[test]
    fn figures_render() {
        let r = reports();
        let f5 = fig5(&r);
        let f6 = fig6(&r);
        assert!(f5.contains("adpcm"));
        assert!(f6.contains("slices"));
        assert!(f6.contains("m-tta-1"));
    }

    #[test]
    fn ttas_run_faster_than_vliw_at_fmax() {
        // The paper's Fig. 5 claim: TTA outruns its VLIW counterpart once
        // clock frequency is taken into account.
        let r = reports();
        let bars = fig5_data(&r);
        for k in ["adpcm", "sha"] {
            let tta = bars
                .iter()
                .find(|b| b.machine == "m-tta-2" && b.kernel == k)
                .unwrap();
            assert!(tta.relative_runtime < 1.0, "{k}: {tta:?}");
        }
    }
}
