//! Microarchitectural profile reports across the design space.
//!
//! Where [`crate::eval`] answers *how fast* each design point runs the
//! kernels, this module answers *why*: it re-runs the kernels through the
//! profiled simulator entry points ([`tta_sim::run_profiled`]) and
//! aggregates the per-bus move densities, per-FU occupancies, RF
//! port-pressure histograms and bypass ratios into one report — the
//! quantities the paper's utilization argument rests on. The report
//! renders as markdown ([`utilization_markdown`]) and as a
//! machine-readable JSON document under the stable
//! [`PROFILE_VERSION`] schema ([`report_json`], checked by
//! [`validate_report`] and the CI `profile-smoke` job).
//!
//! [`trace_json`] additionally renders one (machine, kernel) run as a
//! Chrome trace-event / Perfetto document: host-side pipeline spans from
//! the obs registry on one track, guest datapath activity (moves, RF
//! port traffic, FU starts per cycle bucket) as counter tracks below it.

use tta_chstone::Kernel;
use tta_compiler::compile;
use tta_ir::interp::Interpreter;
use tta_model::{CoreStyle, Machine};
use tta_obs::json::Json;
use tta_obs::TraceBuilder;
use tta_sim::{GuestProfile, SimStats};

/// Version of the JSON schema emitted by [`report_json`]. Bump when a
/// field is renamed or changes meaning; adding fields is backwards
/// compatible.
pub const PROFILE_VERSION: u64 = 1;

/// One kernel profiled on one machine.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub kernel: String,
    /// The reconstructed microarchitectural profile.
    pub profile: GuestProfile,
    /// The run's dynamic statistics (bit-identical to an unprofiled run).
    pub stats: SimStats,
}

/// All kernel profiles of one design point.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// The machine description.
    pub machine: Machine,
    /// One entry per kernel, in kernel order.
    pub kernels: Vec<KernelProfile>,
}

/// The profile report of a (machines × kernels) sweep.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// One entry per machine, in machine order.
    pub machines: Vec<MachineProfile>,
}

fn style_name(style: CoreStyle) -> &'static str {
    match style {
        CoreStyle::Tta => "tta",
        CoreStyle::Vliw => "vliw",
        CoreStyle::Scalar => "scalar",
    }
}

/// Compile and profile `kernels` on `machines`, verifying every run
/// against the IR interpreter and the profile against the run's stats.
///
/// Panics on a compile/simulate failure or a profile inconsistency —
/// both indicate repo bugs, exactly like [`crate::evaluate`].
pub fn profile(machines: &[Machine], kernels: &[Kernel]) -> ProfileReport {
    let prepared: Vec<(String, tta_ir::Module, Option<i32>)> = kernels
        .iter()
        .map(|k| {
            let module = (k.build)();
            let golden = Interpreter::new(&module).run(&[]).expect("interpreter");
            (k.name.to_string(), module, golden.ret)
        })
        .collect();
    let machines = machines
        .iter()
        .map(|machine| {
            let kernels = prepared
                .iter()
                .map(|(name, module, golden_ret)| {
                    let compiled = compile(module, machine)
                        .unwrap_or_else(|e| panic!("{name} on {}: {e}", machine.name));
                    let (r, p) =
                        tta_sim::run_profiled(machine, &compiled.program, module.initial_memory())
                            .unwrap_or_else(|e| panic!("{name} on {}: {e}", machine.name));
                    assert_eq!(Some(r.ret), *golden_ret, "{name} on {}", machine.name);
                    p.check_against(&r.stats)
                        .unwrap_or_else(|e| panic!("{name} on {}: {e}", machine.name));
                    KernelProfile {
                        kernel: name.clone(),
                        profile: p,
                        stats: r.stats,
                    }
                })
                .collect();
            MachineProfile {
                machine: machine.clone(),
                kernels,
            }
        })
        .collect();
    ProfileReport { machines }
}

/// Profile all eight kernels on all thirteen design points.
pub fn profile_all() -> ProfileReport {
    profile(
        &tta_model::presets::all_design_points(),
        &tta_chstone::all_kernels(),
    )
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn hist_json(hist: &[u64]) -> Json {
    Json::Arr(hist.iter().map(|&c| num(c)).collect())
}

fn kernel_json(k: &KernelProfile) -> Json {
    let p = &k.profile;
    let fu =
        p.fu.iter()
            .map(|f| {
                let occupancy = if p.cycles == 0 {
                    0.0
                } else {
                    f.busy_cycles as f64 / p.cycles as f64
                };
                Json::Obj(vec![
                    ("name".into(), Json::Str(f.name.clone())),
                    ("ops".into(), num(f.ops)),
                    ("busy_cycles".into(), num(f.busy_cycles)),
                    ("occupancy".into(), Json::Num(occupancy)),
                ])
            })
            .collect();
    let rf =
        p.rf.iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("read_ports".into(), num(r.read_ports as u64)),
                    ("write_ports".into(), num(r.write_ports as u64)),
                    ("read_hist".into(), hist_json(&r.read_hist)),
                    ("write_hist".into(), hist_json(&r.write_hist)),
                    ("mean_reads".into(), Json::Num(r.mean_reads())),
                    ("mean_writes".into(), Json::Num(r.mean_writes())),
                ])
            })
            .collect();
    let hot = p
        .hot_pcs(8)
        .into_iter()
        .map(|(pc, c)| Json::Arr(vec![num(pc as u64), num(c)]))
        .collect();
    Json::Obj(vec![
        ("kernel".into(), Json::Str(k.kernel.clone())),
        ("cycles".into(), num(p.cycles)),
        ("samples".into(), num(p.samples)),
        ("stall_cycles".into(), num(k.stats.stall_cycles)),
        ("slots".into(), num(p.slots as u64)),
        ("slot_moves".into(), hist_json(&p.slot_moves)),
        (
            "slot_density".into(),
            Json::Arr(p.slot_density().into_iter().map(Json::Num).collect()),
        ),
        ("slot_utilization".into(), Json::Num(p.slot_utilization())),
        ("limm_slot_samples".into(), num(p.limm_slot_samples)),
        ("nop_fraction".into(), Json::Num(p.nop_fraction())),
        ("fu".into(), Json::Arr(fu)),
        ("rf".into(), Json::Arr(rf)),
        (
            "reads".into(),
            Json::Obj(vec![
                ("rf".into(), num(p.rf_reads)),
                ("bypass".into(), num(p.bypass_reads)),
                ("bypass_fraction".into(), Json::Num(p.bypass_fraction())),
            ]),
        ),
        ("hot_pcs".into(), Json::Arr(hot)),
    ])
}

/// Render a report as the versioned JSON document (see
/// [`validate_report`] for the schema contract).
pub fn report_json(report: &ProfileReport) -> Json {
    let machines = report
        .machines
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("machine".into(), Json::Str(m.machine.name.clone())),
                (
                    "style".into(),
                    Json::Str(style_name(m.machine.style).into()),
                ),
                (
                    "kernels".into(),
                    Json::Arr(m.kernels.iter().map(kernel_json).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("profile_version".into(), num(PROFILE_VERSION)),
        ("machines".into(), Json::Arr(machines)),
    ])
}

fn expect_num(j: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    j.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a number"))
}

fn expect_frac(j: &Json, key: &str, ctx: &str) -> Result<(), String> {
    let v = expect_num(j, key, ctx)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{ctx}: \"{key}\" = {v} outside [0, 1]"));
    }
    Ok(())
}

fn expect_hist(j: &Json, key: &str, ctx: &str) -> Result<(), String> {
    match j.get(key) {
        Some(Json::Arr(items)) => {
            for (i, item) in items.iter().enumerate() {
                if item.as_f64().is_none() {
                    return Err(format!("{ctx}: \"{key}\"[{i}] is not a number"));
                }
            }
            Ok(())
        }
        Some(_) => Err(format!("{ctx}: \"{key}\" is not an array")),
        None => Err(format!("{ctx}: missing \"{key}\"")),
    }
}

/// Validate a [`report_json`] document against the `profile_version: 1`
/// schema — the structural contract the CI `profile-smoke` job and
/// downstream consumers rely on. Returns the first violation.
pub fn validate_report(j: &Json) -> Result<(), String> {
    let version = expect_num(j, "profile_version", "report")?;
    if version != PROFILE_VERSION as f64 {
        return Err(format!("unsupported profile_version {version}"));
    }
    let Some(Json::Arr(machines)) = j.get("machines") else {
        return Err("report: \"machines\" is not an array".into());
    };
    if machines.is_empty() {
        return Err("report: \"machines\" is empty".into());
    }
    for m in machines {
        let name = m
            .get("machine")
            .and_then(|v| v.as_str())
            .ok_or("machine entry: missing \"machine\" name")?
            .to_string();
        let style = m
            .get("style")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{name}: missing \"style\""))?;
        if !["tta", "vliw", "scalar"].contains(&style) {
            return Err(format!("{name}: unknown style \"{style}\""));
        }
        let Some(Json::Arr(kernels)) = m.get("kernels") else {
            return Err(format!("{name}: \"kernels\" is not an array"));
        };
        if kernels.is_empty() {
            return Err(format!("{name}: \"kernels\" is empty"));
        }
        for k in kernels {
            let kn = k
                .get("kernel")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{name}: kernel entry missing \"kernel\""))?;
            let ctx = format!("{name}/{kn}");
            for key in [
                "cycles",
                "samples",
                "stall_cycles",
                "slots",
                "limm_slot_samples",
            ] {
                let v = expect_num(k, key, &ctx)?;
                if v < 0.0 {
                    return Err(format!("{ctx}: \"{key}\" is negative"));
                }
            }
            if expect_num(k, "cycles", &ctx)? < expect_num(k, "samples", &ctx)? {
                return Err(format!("{ctx}: cycles < samples"));
            }
            expect_frac(k, "slot_utilization", &ctx)?;
            expect_frac(k, "nop_fraction", &ctx)?;
            expect_hist(k, "slot_moves", &ctx)?;
            expect_hist(k, "slot_density", &ctx)?;
            let Some(Json::Arr(fus)) = k.get("fu") else {
                return Err(format!("{ctx}: \"fu\" is not an array"));
            };
            for f in fus {
                let fctx = format!("{ctx} fu");
                f.get("name")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("{fctx}: missing \"name\""))?;
                expect_num(f, "ops", &fctx)?;
                expect_num(f, "busy_cycles", &fctx)?;
                expect_num(f, "occupancy", &fctx)?;
            }
            let Some(Json::Arr(rfs)) = k.get("rf") else {
                return Err(format!("{ctx}: \"rf\" is not an array"));
            };
            for r in rfs {
                let rctx = format!("{ctx} rf");
                r.get("name")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("{rctx}: missing \"name\""))?;
                let read_ports = expect_num(r, "read_ports", &rctx)?;
                let write_ports = expect_num(r, "write_ports", &rctx)?;
                expect_hist(r, "read_hist", &rctx)?;
                expect_hist(r, "write_hist", &rctx)?;
                let mr = expect_num(r, "mean_reads", &rctx)?;
                let mw = expect_num(r, "mean_writes", &rctx)?;
                if mr > read_ports || mw > write_ports {
                    return Err(format!("{rctx}: mean pressure exceeds the port count"));
                }
            }
            let reads = k
                .get("reads")
                .ok_or_else(|| format!("{ctx}: missing \"reads\""))?;
            expect_num(reads, "rf", &ctx)?;
            expect_num(reads, "bypass", &ctx)?;
            expect_frac(reads, "bypass_fraction", &ctx)?;
            expect_hist(k, "hot_pcs", &ctx).or_else(|_| -> Result<(), String> {
                // hot_pcs entries are [pc, count] pairs, not flat numbers.
                match k.get("hot_pcs") {
                    Some(Json::Arr(_)) => Ok(()),
                    _ => Err(format!("{ctx}: \"hot_pcs\" is not an array")),
                }
            })?;
        }
    }
    Ok(())
}

/// Render the per-machine utilization summary as a markdown table
/// (means across kernels; the EXPERIMENTS.md "where the cycles go"
/// table).
pub fn utilization_markdown(report: &ProfileReport) -> String {
    let mut out = String::new();
    out.push_str(
        "| machine | style | slot util | NOP frac | bypass frac | RF reads/sample | RF writes/sample |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for m in &report.machines {
        let n = m.kernels.len().max(1) as f64;
        let mean =
            |f: &dyn Fn(&KernelProfile) -> f64| -> f64 { m.kernels.iter().map(f).sum::<f64>() / n };
        let slot_util = mean(&|k| k.profile.slot_utilization());
        let nop = mean(&|k| k.profile.nop_fraction());
        let bypass = mean(&|k| k.profile.bypass_fraction());
        let reads = mean(&|k| {
            if k.profile.samples == 0 {
                0.0
            } else {
                k.profile.rf_reads as f64 / k.profile.samples as f64
            }
        });
        let writes = mean(&|k| {
            if k.profile.samples == 0 {
                0.0
            } else {
                k.profile.rf_writes as f64 / k.profile.samples as f64
            }
        });
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            m.machine.name,
            style_name(m.machine.style),
            slot_util,
            nop,
            bypass,
            reads,
            writes,
        ));
    }
    out
}

/// Render one (machine, kernel) run as a Chrome trace-event document:
/// host pipeline spans (whatever the obs registry currently holds) as a
/// synthetic flame on pid 0, the guest run and its datapath activity as
/// counter tracks on pid 1. One guest cycle is rendered as one
/// microsecond; `bucket` cycles are averaged per counter event to keep
/// the document small (clamped to ≥ 1).
pub fn trace_json(machine: &Machine, kernel: &Kernel, bucket: u64) -> Json {
    let bucket = bucket.max(1);
    let module = (kernel.build)();
    let compiled = compile(&module, machine)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, machine.name));
    let (r, trace) = tta_sim::run_traced(
        machine,
        &compiled.program,
        module.initial_memory(),
        tta_sim::DEFAULT_FUEL,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, machine.name));
    let activity = tta_sim::static_activity(&compiled.program);

    let mut b = TraceBuilder::new();
    b.process_name(0, "host: tta pipeline");
    b.process_name(1, &format!("guest: {} / {}", machine.name, kernel.name));
    b.thread_name(1, 1, "datapath");
    b.add_host_spans(0);
    b.complete(
        1,
        1,
        &format!("{} on {}", kernel.name, machine.name),
        0.0,
        r.cycles as f64,
        vec![
            ("cycles", num(r.cycles)),
            ("instructions", num(r.stats.instructions)),
            ("ret", Json::Num(r.ret as f64)),
        ],
    );
    // One counter event per bucket of executed instructions, at the
    // bucket's first sample index (== cycle for the statically scheduled
    // styles).
    for (start, chunk) in trace
        .chunks(bucket as usize)
        .enumerate()
        .map(|(i, c)| (i as u64 * bucket, c))
    {
        let mut moves = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut fu_starts = 0u64;
        for &pc in chunk {
            let a = activity[pc as usize];
            moves += a.moves as u64;
            reads += a.rf_reads as u64;
            writes += a.rf_writes as u64;
            fu_starts += a.fu_starts as u64;
        }
        let per = chunk.len() as f64;
        b.counter(
            1,
            "datapath activity",
            start as f64,
            &[
                ("moves", moves as f64 / per),
                ("rf_reads", reads as f64 / per),
                ("rf_writes", writes as f64 / per),
                ("fu_starts", fu_starts as f64 / per),
            ],
        );
    }
    b.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    fn small_report() -> ProfileReport {
        let machines = vec![presets::mblaze_3(), presets::m_vliw_2(), presets::m_tta_2()];
        let kernels = vec![tta_chstone::by_name("sha").unwrap()];
        profile(&machines, &kernels)
    }

    #[test]
    fn report_json_validates_against_its_own_schema() {
        let report = small_report();
        let j = report_json(&report);
        validate_report(&j).unwrap();
        // Round-trip through text keeps it valid.
        let parsed = tta_obs::json::parse(&j.to_pretty()).unwrap();
        validate_report(&parsed).unwrap();
    }

    #[test]
    fn profiles_reflect_the_styles() {
        let report = small_report();
        let scalar = &report.machines[0].kernels[0].profile;
        let vliw = &report.machines[1].kernels[0].profile;
        let tta = &report.machines[2].kernels[0].profile;
        // Only the TTA style bypasses reads; only the scalar style stalls.
        assert!(tta.bypass_fraction() > 0.0);
        assert_eq!(vliw.bypass_reads, 0);
        assert_eq!(scalar.bypass_reads, 0);
        assert!(report.machines[0].kernels[0].stats.stall_cycles > 0);
        assert!(scalar.cycles > scalar.samples);
        assert_eq!(tta.cycles, tta.samples);
    }

    #[test]
    fn validation_rejects_tampered_documents() {
        let j = report_json(&small_report());
        let mut bad = j.clone();
        if let Json::Obj(fields) = &mut bad {
            fields[0].1 = Json::Num(999.0);
        }
        assert!(validate_report(&bad).unwrap_err().contains("version"));

        let mut empty = j.clone();
        if let Json::Obj(fields) = &mut empty {
            fields[1].1 = Json::Arr(vec![]);
        }
        assert!(validate_report(&empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn markdown_has_one_row_per_machine() {
        let report = small_report();
        let md = utilization_markdown(&report);
        assert_eq!(md.lines().count(), 2 + report.machines.len());
        assert!(md.contains("| m-tta-2 | tta |"));
    }

    #[test]
    fn trace_json_is_a_valid_chrome_trace() {
        let m = presets::m_tta_2();
        let kernel = tta_chstone::by_name("sha").unwrap();
        let j = trace_json(&m, &kernel, 64);
        let Some(Json::Arr(events)) = j.get("traceEvents") else {
            panic!("no traceEvents");
        };
        assert!(events.len() > 4);
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            assert!(["M", "X", "C"].contains(&ph), "bad phase {ph}");
        }
        // Counter events cover the whole run.
        let counters = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .count();
        assert!(counters >= 1);
    }
}
