//! Pareto design-space search CLI.
//!
//! Runs the staged-funnel search over the generated config space and
//! prints the discovered frontier next to the paper's 13 presets on the
//! Fig. 6 axes, plus the funnel tallies.
//!
//! Usage:
//! `cargo run --release -p tta-explore --bin search [--seed N]
//!  [--generations N] [--probe-quota N] [--full-quota N] [--threads N]
//!  [--kernels a,b,c]`

use tta_explore::search::{dominates, evaluate_paper_points, frontier_markdown, search};
use tta_explore::SearchParams;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    tta_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = SearchParams::default();
    let kernels: Vec<&'static str> = arg_value(&args, "--kernels")
        .map(|list| {
            list.split(',')
                .map(|n| {
                    tta_chstone::by_name(n.trim())
                        .unwrap_or_else(|| panic!("unknown kernel {n}"))
                        .name
                })
                .collect()
        })
        .unwrap_or_default();
    let params = SearchParams {
        seed: parse(&args, "--seed", defaults.seed),
        generations: parse(&args, "--generations", defaults.generations),
        probe_quota: parse(&args, "--probe-quota", defaults.probe_quota),
        full_quota: parse(&args, "--full-quota", defaults.full_quota),
        threads: parse(&args, "--threads", defaults.threads),
        kernels,
        ..defaults
    };

    let outcome = search(&params);
    let paper = evaluate_paper_points(&params);

    println!("## Discovered frontier (seed {})\n", params.seed);
    println!("{}", frontier_markdown(&outcome.frontier));

    println!("## Paper presets on the same axes\n");
    println!("{}", frontier_markdown(&paper));

    println!("## Paper points vs the discovered frontier\n");
    for p in &paper {
        let matched = outcome
            .frontier
            .iter()
            .any(|f| f.structural == p.structural);
        let dominated_by: Vec<&str> = outcome
            .frontier
            .iter()
            .filter(|f| dominates(f, p))
            .map(|f| f.name.as_str())
            .collect();
        let verdict = if matched {
            "on the frontier".to_string()
        } else if dominated_by.is_empty() {
            "not dominated".to_string()
        } else {
            format!("dominated by {}", dominated_by.join(", "))
        };
        println!("- {}: {verdict}", p.name);
    }

    let s = &outcome.stats;
    println!(
        "\nfunnel: {} proposed, {} unique configs, {} analytic-pruned, \
         {} probed, {} probe-pruned, {} full evals, {} inserted, \
         {} failures, {} still pooled",
        s.proposed,
        s.configs,
        s.analytic_pruned,
        s.probed,
        s.probe_pruned,
        s.full_evals,
        s.inserted,
        s.eval_failures,
        s.deferred
    );
    println!(
        "wall {:.2}s, {:.0} configs/s, frontier size {}",
        s.wall_s,
        s.configs_per_s(),
        outcome.frontier.len()
    );
}
