//! The batch simulation server.
//!
//! Hand-rolled HTTP/1.1 over `std::net` plus two [`WorkQueue`] pools —
//! no async runtime, matching the repo's no-heavy-deps style:
//!
//! * a small **connection pool** accepts sockets and runs the per-request
//!   state machine (parse → validate → stream);
//! * the **simulation pool** (sized like the evaluation work queue,
//!   `TTA_EVAL_THREADS`-overridable) drains `(machine × kernel)` jobs
//!   from *all* in-flight batches, so one large batch saturates every
//!   core and two concurrent batches interleave instead of queueing
//!   head-to-tail.
//!
//! Compilation goes through the process-wide sharded compile cache
//! ([`tta_explore::cache`]): a 1000-job batch over 104 distinct pairs
//! compiles each pair once and simulates the rest from cache. Per-job
//! results stream back as NDJSON the moment they complete (completion
//! order, client-indexed), followed by one summary line; the whole
//! response rides `Connection: close` framing.
//!
//! # Telemetry
//!
//! Every request carries a **trace ID** — the client's `x-trace-id`
//! header when present (sanitised), a generated one otherwise — stamped
//! on the request log line, every NDJSON job/summary line, every error
//! body, and every flight-recorder event, so one grep correlates a
//! request across all four. Both worker pools publish queue-depth and
//! in-flight gauges plus a queue-wait histogram; per-job service time and
//! per-batch wall time land in histograms too. `GET /v1/metrics` renders
//! all of it in Prometheus text format, `GET /healthz` summarises the
//! live values, and `GET /v1/debug/flight` serves the flight recorder's
//! recent request/job/shutdown events (also dumped to stderr on panic or
//! batch timeout).

use std::collections::HashMap;
use std::io::{self, BufWriter, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tta_explore::eval::{self, PreparedKernel};
use tta_explore::queue::{QueueMetrics, WorkQueue};
use tta_model::{presets, Machine};
use tta_obs as obs;
use tta_obs::json::Json;
use tta_obs::ndjson;

use crate::schema::{self, ApiError, BatchRequest, ErrorCode, OBS_VERSION};

/// Server tunables. `Default` gives the production shape; tests shrink
/// the limits to exercise the error paths.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads; `0` sizes like the evaluation pipeline
    /// (every available core, `TTA_EVAL_THREADS` override).
    pub sim_threads: usize,
    /// Connection handler threads (each streams one response at a time).
    pub conn_threads: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Largest accepted per-batch job count.
    pub max_jobs: usize,
    /// Deadline for one batch, milliseconds: the default when the client
    /// sends no `timeout_ms`, and the cap when it does.
    pub max_timeout_ms: u64,
    /// Socket read/write timeout, milliseconds.
    pub io_timeout_ms: u64,
    /// Scrape-time cardinality budget for the per-kernel latency series
    /// on `/v1/metrics`: at most this many kernels get their own
    /// `kernel="..."` label, the rest fold into `kernel="_other"`.
    pub kernel_series_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            sim_threads: 0,
            conn_threads: 4,
            max_body_bytes: 1 << 20,
            max_jobs: 10_000,
            max_timeout_ms: 60_000,
            io_timeout_ms: 10_000,
            kernel_series_budget: crate::metrics::DEFAULT_KERNEL_SERIES_BUDGET,
        }
    }
}

/// State shared between the accept loop and the connection handlers.
struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    sim: WorkQueue,
    conns: WorkQueue,
}

impl Shared {
    /// Flag shutdown and poke the accept loop awake with a throwaway
    /// connection so it re-checks the flag.
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            obs::flight::record("shutdown.request", "", format!("addr {}", self.addr));
        }
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running batch server. Spawn with [`Server::spawn`]; stop gracefully
/// with [`Server::shutdown`] (or `POST /v1/shutdown` + [`Server::wait`]) —
/// both drain in-flight connections and simulation jobs before returning.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr` and start the accept loop plus worker pools.
    pub fn spawn(cfg: ServerConfig) -> io::Result<Server> {
        install_panic_hook();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let sim_threads = match cfg.sim_threads {
            0 => eval::eval_threads(usize::MAX),
            n => n,
        };
        let shared = Arc::new(Shared {
            sim: WorkQueue::new_with_metrics(
                sim_threads,
                "tta-serve-sim",
                obs::SpanHandle::ROOT,
                Some(QueueMetrics {
                    depth_gauge: "serve.sim.queue_depth",
                    in_flight_gauge: "serve.sim.in_flight",
                    wait_hist: "serve.sim.queue_wait_us",
                }),
            ),
            conns: WorkQueue::new_with_metrics(
                cfg.conn_threads,
                "tta-serve-conn",
                obs::SpanHandle::ROOT,
                Some(QueueMetrics {
                    depth_gauge: "serve.conn.queue_depth",
                    in_flight_gauge: "serve.conn.in_flight",
                    wait_hist: "serve.conn.queue_wait_us",
                }),
            ),
            cfg,
            addr,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("tta-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    if accept_shared
                        .conns
                        .submit(Box::new(move || handle_conn(conn_shared, stream)))
                        .is_err()
                    {
                        break;
                    }
                }
            })?;
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Simulation worker threads in the pool.
    pub fn sim_threads(&self) -> usize {
        self.shared.sim.threads()
    }

    /// Ask the server to stop accepting new connections (non-blocking;
    /// also reachable over the wire as `POST /v1/shutdown`).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until a shutdown request arrives (API or wire), then drain
    /// connections and simulation jobs and join every thread.
    pub fn wait(mut self) {
        self.join();
    }

    /// Graceful stop: request shutdown, then drain and join everything.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connections first (they feed the sim queue), then the sims.
        self.shared.conns.shutdown();
        self.shared.sim.shutdown();
        obs::flight::record("shutdown.done", "", format!("addr {}", self.shared.addr));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.request_shutdown();
            self.join();
        }
    }
}

/// Kernel preparation (IR build + golden interpreter run) memoised
/// process-wide: the catalogue is small and immutable, so every server
/// instance and every batch shares one prepared form per kernel.
fn prepared_kernel(name: &str) -> Option<Arc<PreparedKernel>> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<PreparedKernel>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    // The map holds only complete entries (insertion is the last step),
    // so a lock poisoned by a panicking job thread is still safe to read
    // through — clearing the memo on poison would punish every later
    // request with a re-prepare instead.
    if let Some(p) = memo.lock().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Some(Arc::clone(p));
    }
    let kernel = tta_chstone::by_name(name)?;
    // Prepare outside the lock; a racing request prepares the same
    // content and last-write-wins.
    let p = Arc::new(eval::prepare_kernel(&kernel));
    memo.lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name.to_string(), Arc::clone(&p));
    Some(p)
}

/// Dump the flight recorder on any unhandled panic, then run the
/// previously-installed hook. Installed once per process, the first time
/// a server spawns.
fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            obs::flight::dump("panic");
            prev(info);
        }));
    });
}

/// Keep a client-supplied `x-trace-id` only if it is non-empty, at most
/// 64 characters, and entirely `[A-Za-z0-9._-]` — anything else is
/// discarded (a fresh ID is generated) so trace IDs are always safe to
/// echo into logs, JSON, and metrics labels.
fn sanitize_trace(raw: &str) -> Option<String> {
    let raw = raw.trim();
    let ok = !raw.is_empty()
        && raw.len() <= 64
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    ok.then(|| raw.to_string())
}

/// A process-unique trace ID for requests that did not bring their own:
/// a per-process random-ish seed (start time) plus a monotonic counter.
fn fresh_trace_id() -> String {
    use std::sync::atomic::AtomicU64;
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("t-{:08x}-{n}", (seed ^ (seed >> 32)) as u32)
}

struct HttpRequest {
    method: String,
    path: String,
    body: String,
    /// Sanitised `x-trace-id` header, if the client sent a usable one.
    trace: Option<String>,
}

/// Read and frame one HTTP request (request line, headers,
/// `Content-Length` body). The body-size limit is enforced on the
/// declared length *before* the body is read, so an oversized upload is
/// rejected without buffering it.
fn read_request(stream: &mut TcpStream, cfg: &ServerConfig) -> Result<HttpRequest, ApiError> {
    const MAX_HEADER: usize = 16 * 1024;
    let bad = |m: String| ApiError::new(ErrorCode::BadRequest, m);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEADER {
            return Err(ApiError::new(
                ErrorCode::Oversized,
                format!("headers exceed {MAX_HEADER} bytes"),
            ));
        }
        let n = stream
            .read(&mut tmp)
            .map_err(|e| bad(format!("read: {e}")))?;
        if n == 0 {
            return Err(bad("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&tmp[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| bad("headers are not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("").to_string();
    let path = request_line.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(bad("malformed request line".into()));
    }
    let mut content_length = 0usize;
    let mut trace = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length".into()))?;
            } else if name.eq_ignore_ascii_case("x-trace-id") {
                trace = sanitize_trace(value);
            }
        }
    }
    if content_length > cfg.max_body_bytes {
        return Err(ApiError::new(
            ErrorCode::Oversized,
            format!(
                "{content_length} byte body exceeds the {} byte limit",
                cfg.max_body_bytes
            ),
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut tmp)
            .map_err(|e| bad(format!("read body: {e}")))?;
        if n == 0 {
            return Err(bad("connection closed mid-body".into()));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| ApiError::new(ErrorCode::MalformedJson, "body is not UTF-8"))?;
    Ok(HttpRequest {
        method,
        path,
        body,
        trace,
    })
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// One-shot JSON response with explicit length framing.
fn write_json(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    let text = body.to_pretty();
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        reason(status),
        text.len(),
    )?;
    stream.flush()
}

/// One-shot plain-text response (the `/v1/metrics` exposition document).
fn write_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    text: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        reason(status),
        text.len(),
    )?;
    stream.flush()
}

/// Write a whole-request error (traced body), bump the aggregate and
/// per-class error counters, and leave a flight event behind.
fn write_error(stream: &mut TcpStream, e: &ApiError, trace: &str) {
    obs::counter::add("serve.errors", 1);
    obs::counter::add(e.code.counter_name(), 1);
    obs::flight::record(
        "req.reject",
        trace,
        format!("{}: {}", e.code.as_str(), e.message),
    );
    let _ = write_json(stream, e.code.http_status(), &e.to_body_traced(trace));
}

/// The per-route request counter (`serve.requests.<route>`); static so
/// the counter registry can intern it. Unknown paths share one bucket.
fn route_counter(path: &str) -> &'static str {
    match path {
        "/v1/batch" => "serve.requests.batch",
        "/healthz" => "serve.requests.healthz",
        "/v1/metrics" => "serve.requests.metrics",
        "/v1/debug/flight" => "serve.requests.flight",
        "/v1/shutdown" => "serve.requests.shutdown",
        _ => "serve.requests.other",
    }
}

/// The `/healthz` body: liveness plus live queue/cache/telemetry state.
fn healthz_body(shared: &Shared) -> Json {
    let c = |name: &str| obs::counter::get(name).unwrap_or(0) as f64;
    Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("ok".into(), Json::Bool(true)),
        ("sim_threads".into(), Json::Num(shared.sim.threads() as f64)),
        ("queue_depth".into(), Json::Num(shared.sim.depth() as f64)),
        ("in_flight".into(), Json::Num(shared.sim.in_flight() as f64)),
        (
            "conn_queue_depth".into(),
            Json::Num(shared.conns.depth() as f64),
        ),
        (
            "conn_in_flight".into(),
            Json::Num(shared.conns.in_flight() as f64),
        ),
        (
            "cache_entries".into(),
            Json::Num(tta_explore::cache::global().len() as f64),
        ),
        ("cache_hits".into(), Json::Num(c("eval.compile_cache.hits"))),
        (
            "cache_misses".into(),
            Json::Num(c("eval.compile_cache.misses")),
        ),
        (
            "dropped".into(),
            Json::Obj(vec![
                ("spans".into(), Json::Num(obs::span::dropped() as f64)),
                ("counters".into(), Json::Num(obs::counter::dropped() as f64)),
                (
                    "gauges".into(),
                    Json::Num(obs::counter::dropped_gauges() as f64),
                ),
                ("hists".into(), Json::Num(obs::hist::dropped() as f64)),
            ]),
        ),
    ])
}

/// Dispatch one accepted connection.
fn handle_conn(shared: Arc<Shared>, mut stream: TcpStream) {
    let _span = obs::span("serve.request");
    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);
    obs::counter::add("serve.requests", 1);
    let req = match read_request(&mut stream, &shared.cfg) {
        Ok(r) => r,
        Err(e) => {
            // The request never parsed far enough to carry a trace ID;
            // generate one so the error body and log line still correlate.
            let trace = fresh_trace_id();
            obs::counter::add("serve.requests.invalid", 1);
            eprintln!("tta-serve: [{trace}] <unreadable request>: {}", e.message);
            return write_error(&mut stream, &e, &trace);
        }
    };
    let trace = req.trace.clone().unwrap_or_else(fresh_trace_id);
    obs::counter::add(route_counter(&req.path), 1);
    obs::flight::record("req.start", &trace, format!("{} {}", req.method, req.path));
    eprintln!("tta-serve: [{trace}] {} {}", req.method, req.path);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/batch") => {
            let _ = handle_batch(&shared, stream, &req.body, &trace);
        }
        ("GET", "/healthz") => {
            let _ = write_json(&mut stream, 200, &healthz_body(&shared));
        }
        ("GET", "/v1/metrics") => {
            // Re-publish so an idle queue still scrapes fresh gauges.
            shared.sim.publish_gauges();
            shared.conns.publish_gauges();
            obs::counter::set_gauge(
                "serve.cache.entries",
                tta_explore::cache::global().len() as i64,
            );
            let mut text = obs::prom::render();
            text.push_str(&crate::metrics::kernel_exposition(
                shared.cfg.kernel_series_budget,
            ));
            let _ = write_text(&mut stream, 200, "text/plain; version=0.0.4", &text);
        }
        ("GET", "/v1/debug/flight") => {
            let mut fields = vec![("obs_version".into(), Json::Num(OBS_VERSION as f64))];
            match obs::flight::to_json() {
                Json::Obj(inner) => fields.extend(inner),
                other => fields.push(("flight".into(), other)),
            }
            let _ = write_json(&mut stream, 200, &Json::Obj(fields));
        }
        ("POST", "/v1/shutdown") => {
            let body = Json::Obj(vec![
                ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
                ("trace_id".into(), Json::Str(trace.clone())),
                ("ok".into(), Json::Bool(true)),
                ("shutting_down".into(), Json::Bool(true)),
            ]);
            let _ = write_json(&mut stream, 200, &body);
            shared.request_shutdown();
        }
        (_, "/v1/batch" | "/healthz" | "/v1/metrics" | "/v1/debug/flight" | "/v1/shutdown") => {
            write_error(
                &mut stream,
                &ApiError::new(
                    ErrorCode::BadMethod,
                    format!("{} is not valid for {}", req.method, req.path),
                ),
                &trace,
            )
        }
        _ => write_error(
            &mut stream,
            &ApiError::new(ErrorCode::NotFound, format!("no route for {}", req.path)),
            &trace,
        ),
    }
    obs::flight::record("req.end", &trace, format!("{} {}", req.method, req.path));
}

/// One per-job success line.
fn job_ok_line(job: usize, trace: &str, machine: &str, run: &tta_explore::KernelRun) -> Json {
    Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("trace_id".into(), Json::Str(trace.into())),
        ("job".into(), Json::Num(job as f64)),
        ("ok".into(), Json::Bool(true)),
        ("report".into(), eval::job_report_json(machine, run)),
    ])
}

/// One per-job failure line (internal panic or deadline expiry).
fn job_error_line(job: usize, trace: &str, e: &ApiError) -> Json {
    Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("trace_id".into(), Json::Str(trace.into())),
        ("job".into(), Json::Num(job as f64)),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), e.to_json()),
    ])
}

/// Run one job on a simulation worker, catching toolchain panics so a
/// bug in one job degrades to a structured error line instead of
/// poisoning the whole batch. Service time (the run itself, not queue
/// wait) lands in the `serve.job.service_us` histogram.
fn run_job(job: usize, trace: &str, machine: &Machine, p: &PreparedKernel) -> (Json, bool) {
    let started = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        eval::run_prepared(p, machine)
    }));
    let service_us = started.elapsed().as_micros() as u64;
    obs::hist::record("serve.job.service_us", service_us);
    crate::metrics::record_kernel_service(p.name, service_us);
    match outcome {
        Ok(run) => {
            obs::counter::add("serve.jobs.ok", 1);
            obs::flight::record("job.done", trace, format!("job {job} ({})", machine.name));
            (job_ok_line(job, trace, &machine.name, &run), true)
        }
        Err(panic) => {
            obs::counter::add("serve.jobs.internal_error", 1);
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            obs::flight::record("job.panic", trace, format!("job {job}: {msg}"));
            let e = ApiError::new(ErrorCode::Internal, format!("job panicked: {msg}"));
            (job_error_line(job, trace, &e), false)
        }
    }
}

/// Validate a batch, fan its jobs out over the simulation pool, and
/// stream one NDJSON line per completed job plus a final summary line —
/// every line stamped with the request's trace ID.
fn handle_batch(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    body: &str,
    trace: &str,
) -> io::Result<()> {
    let start = Instant::now();
    let req: BatchRequest = match schema::parse_batch(body, shared.cfg.max_jobs) {
        Ok(r) => r,
        Err(e) => {
            write_error(&mut stream, &e, trace);
            return Ok(());
        }
    };
    // Resolve every job name before the first byte of the stream, so
    // catalogue errors are whole-request 400s, not mid-stream surprises.
    let mut machines: HashMap<&str, Machine> = HashMap::new();
    let mut resolved: Vec<(Machine, Arc<PreparedKernel>)> = Vec::with_capacity(req.jobs.len());
    for (i, spec) in req.jobs.iter().enumerate() {
        if !machines.contains_key(spec.machine.as_str()) {
            match presets::by_name(&spec.machine) {
                Some(m) => {
                    machines.insert(spec.machine.as_str(), m);
                }
                None => {
                    write_error(
                        &mut stream,
                        &ApiError::new(
                            ErrorCode::UnknownMachine,
                            format!("jobs[{i}]: unknown machine \"{}\"", spec.machine),
                        ),
                        trace,
                    );
                    return Ok(());
                }
            }
        }
        let Some(prepared) = prepared_kernel(&spec.kernel) else {
            write_error(
                &mut stream,
                &ApiError::new(
                    ErrorCode::UnknownKernel,
                    format!("jobs[{i}]: unknown kernel \"{}\"", spec.kernel),
                ),
                trace,
            );
            return Ok(());
        };
        resolved.push((machines[spec.machine.as_str()].clone(), prepared));
    }
    obs::counter::add("serve.batches", 1);

    let n = resolved.len();
    let timeout = Duration::from_millis(
        req.timeout_ms
            .unwrap_or(shared.cfg.max_timeout_ms)
            .min(shared.cfg.max_timeout_ms),
    );
    obs::flight::record(
        "batch.start",
        trace,
        format!("{n} jobs, timeout {} ms", timeout.as_millis()),
    );
    let deadline = start + timeout;
    let (tx, rx) = mpsc::channel::<(usize, Json, bool)>();
    for (i, (machine, prepared)) in resolved.into_iter().enumerate() {
        let tx = tx.clone();
        let job_trace = trace.to_string();
        obs::flight::record(
            "job.dispatch",
            trace,
            format!("job {i} ({} × {})", machine.name, req.jobs[i].kernel),
        );
        let submit = shared.sim.submit(Box::new(move || {
            let (line, ok) = run_job(i, &job_trace, &machine, &prepared);
            let _ = tx.send((i, line, ok));
        }));
        if submit.is_err() {
            // Shutting down: unsubmitted jobs surface as timeout lines.
            break;
        }
    }
    drop(tx);

    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    let mut writer = ndjson::Writer::new(BufWriter::new(stream));
    let mut done = vec![false; n];
    let (mut ok_count, mut err_count) = (0u64, 0u64);
    let mut received = 0usize;
    while received < n {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok((i, line, ok)) => {
                writer.write(&line)?;
                done[i] = true;
                received += 1;
                if ok {
                    ok_count += 1;
                } else {
                    err_count += 1;
                }
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let timed_out = received < n;
    for (i, d) in done.iter().enumerate() {
        if !d {
            obs::counter::add("serve.jobs.timeout", 1);
            obs::counter::add(ErrorCode::Timeout.counter_name(), 1);
            obs::flight::record("job.timeout", trace, format!("job {i} missed the deadline"));
            let e = ApiError::new(
                ErrorCode::Timeout,
                "batch deadline expired before this job completed",
            );
            writer.write(&job_error_line(i, trace, &e))?;
            err_count += 1;
        }
    }
    if timed_out {
        // The black-box readout: what the server was doing when the
        // deadline expired, on stderr next to the request log.
        obs::flight::dump(&format!("batch timeout, trace {trace}"));
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    obs::hist::record("serve.request.batch_us", start.elapsed().as_micros() as u64);
    writer.write(&Json::Obj(vec![
        ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
        ("trace_id".into(), Json::Str(trace.into())),
        ("summary".into(), Json::Bool(true)),
        ("jobs".into(), Json::Num(n as f64)),
        ("ok".into(), Json::Num(ok_count as f64)),
        ("errors".into(), Json::Num(err_count as f64)),
        ("timed_out".into(), Json::Bool(timed_out)),
        ("wall_ms".into(), Json::Num((wall_ms * 1e3).round() / 1e3)),
    ]))?;
    Ok(())
}
