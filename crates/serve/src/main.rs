//! The `tta-serve` binary: bind, serve batches, stop on
//! `POST /v1/shutdown`.
//!
//! ```text
//! tta-serve [--addr HOST:PORT] [--threads N]
//! ```
//!
//! `--threads 0` (the default) sizes the simulation pool like the
//! evaluation pipeline: every available core, `TTA_EVAL_THREADS`
//! override honoured.

use tta_serve::{Server, ServerConfig};

fn parse_args() -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--threads" => {
                let v = value("--threads")?;
                cfg.sim_threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: tta-serve [--addr HOST:PORT] [--threads N]".into());
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    Ok(cfg)
}

fn main() -> std::process::ExitCode {
    tta_obs::init_from_env();
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tta-serve: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    let server = match Server::spawn(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tta-serve: bind failed: {e}");
            return std::process::ExitCode::from(1);
        }
    };
    eprintln!(
        "tta-serve listening on http://{} ({} simulation threads)",
        server.addr(),
        server.sim_threads()
    );
    eprintln!("  POST /v1/batch        submit a job batch (NDJSON stream back)");
    eprintln!("  GET  /healthz         liveness + queue/cache/telemetry stats");
    eprintln!("  GET  /v1/metrics      Prometheus text exposition");
    eprintln!("  GET  /v1/debug/flight recent request/job events (flight recorder)");
    eprintln!("  POST /v1/shutdown     graceful stop");
    server.wait();
    eprintln!("tta-serve: drained and stopped");
    std::process::ExitCode::SUCCESS
}
