//! A minimal blocking HTTP client for the server's own tests and the
//! `bench_serve` harness — enough HTTP/1.1 to post a body and consume a
//! `Connection: close` response, with per-line arrival timestamps so the
//! bench can report per-job latency percentiles.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A fully-buffered response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The whole body.
    pub body: String,
}

/// One line of a streamed NDJSON response.
#[derive(Debug, Clone)]
pub struct StreamedLine {
    /// The line, without its terminating newline.
    pub text: String,
    /// Arrival time, measured from just before the request was sent.
    pub at: Duration,
}

/// A streamed response: status plus timestamped lines.
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body lines in arrival order.
    pub lines: Vec<StreamedLine>,
}

fn send_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;
    Ok(stream)
}

fn parse_status(head: &str) -> std::io::Result<u16> {
    head.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {head:?}")))
}

/// POST `body` to `path` and buffer the whole response.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Response> {
    request(addr, "POST", path, body, timeout)
}

/// GET `path` and buffer the whole response.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<Response> {
    request(addr, "GET", path, "", timeout)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = send_request(addr, method, path, body, &[], timeout)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header/body split"))?;
    Ok(Response {
        status: parse_status(head.lines().next().unwrap_or(""))?,
        body: body.to_string(),
    })
}

/// POST `body` to `path` and consume the response incrementally,
/// timestamping each completed line as it arrives (relative to the
/// moment the request was sent).
pub fn post_streaming(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<StreamedResponse> {
    post_streaming_with_headers(addr, path, body, &[], timeout)
}

/// [`post_streaming`] with extra request headers (e.g. `x-trace-id`).
pub fn post_streaming_with_headers(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<StreamedResponse> {
    let start = Instant::now();
    let mut stream = send_request(addr, "POST", path, body, headers, timeout)?;
    let mut status = 0u16;
    let mut in_body = false;
    let mut acc: Vec<u8> = Vec::new();
    let mut lines = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            break;
        }
        acc.extend_from_slice(&tmp[..n]);
        if !in_body {
            let Some(pos) = acc.windows(4).position(|w| w == b"\r\n\r\n") else {
                continue;
            };
            let head = String::from_utf8_lossy(&acc[..pos]).into_owned();
            status = parse_status(head.lines().next().unwrap_or(""))?;
            acc.drain(..pos + 4);
            in_body = true;
        }
        while let Some(nl) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=nl).collect();
            lines.push(StreamedLine {
                text: String::from_utf8_lossy(&line)
                    .trim_end_matches(['\r', '\n'])
                    .to_string(),
                at: start.elapsed(),
            });
        }
    }
    // A trailing unterminated fragment (not produced by the server's
    // NDJSON framing, but don't lose it if it ever appears).
    if in_body && !acc.is_empty() {
        lines.push(StreamedLine {
            text: String::from_utf8_lossy(&acc).into_owned(),
            at: start.elapsed(),
        });
    }
    Ok(StreamedResponse { status, lines })
}
