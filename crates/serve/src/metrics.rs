//! Per-kernel service-latency series for the Prometheus exposition.
//!
//! `run_job` records each job's service time against the kernel it
//! simulated; `/v1/metrics` exposes the result as one histogram family,
//! `tta_serve_job_kernel_service_us{kernel="..."}`, on top of the
//! unlabeled `serve.job.service_us` aggregate.
//!
//! Labels are the classic cardinality foot-gun: a misbehaving client
//! naming thousands of kernels must not inflate every scrape forever.
//! The budget is therefore enforced at *scrape time*: the top
//! [`ServerConfig::kernel_series_budget`](crate::ServerConfig) kernels by
//! sample count keep their own series, and everything past the budget is
//! merged into one `kernel="_other"` series — total counts are preserved
//! (the sum over all series always equals the number of jobs recorded),
//! only attribution coarsens. Recording stays cheap and unbounded-safe:
//! one mutex-guarded map keyed by kernel name, log₂ buckets per entry.

use std::collections::HashMap;
use std::sync::Mutex;

use tta_obs::hist::HistStat;
use tta_obs::prom;

/// Metric family name for the per-kernel service-time histograms.
pub const KERNEL_SERVICE_METRIC: &str = "serve.job.kernel_service_us";

/// Label value absorbing every kernel past the scrape-time budget.
pub const OTHER_LABEL: &str = "_other";

/// Default scrape-time series budget: covers the full CHStone-style
/// suite with room to spare while capping a hostile label set.
pub const DEFAULT_KERNEL_SERIES_BUDGET: usize = 12;

static BY_KERNEL: Mutex<Option<HashMap<String, HistStat>>> = Mutex::new(None);

/// Record one job's service time (µs) against `kernel`.
pub fn record_kernel_service(kernel: &str, us: u64) {
    let mut guard = BY_KERNEL.lock().unwrap();
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(kernel.to_string())
        .or_insert_with(|| HistStat::new(KERNEL_SERVICE_METRIC))
        .observe(us);
}

/// Snapshot the per-kernel series under a scrape-time cardinality
/// budget: the `budget` highest-count kernels keep their own series
/// (sorted by count descending, name ascending — deterministic), the
/// rest merge into [`OTHER_LABEL`]. A zero budget folds everything into
/// `_other`.
pub fn kernel_series(budget: usize) -> Vec<(String, HistStat)> {
    let guard = BY_KERNEL.lock().unwrap();
    let Some(map) = guard.as_ref() else {
        return Vec::new();
    };
    let mut series: Vec<(String, HistStat)> =
        map.iter().map(|(k, h)| (k.clone(), h.clone())).collect();
    series.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
    if series.len() > budget {
        let mut other = HistStat::new(KERNEL_SERVICE_METRIC);
        for (_, h) in series.drain(budget..) {
            other.count += h.count;
            other.sum = other.sum.saturating_add(h.sum);
            for (o, b) in other.buckets.iter_mut().zip(h.buckets.iter()) {
                *o += b;
            }
        }
        series.push((OTHER_LABEL.to_string(), other));
    }
    series
}

/// Render the per-kernel family as exposition text (empty when nothing
/// was recorded yet).
pub fn kernel_exposition(budget: usize) -> String {
    let mut out = String::new();
    prom::push_labeled_hist(
        &mut out,
        KERNEL_SERVICE_METRIC,
        "kernel",
        &kernel_series(budget),
    );
    out
}

/// Drop all recorded series (test isolation).
#[doc(hidden)]
pub fn reset() {
    *BY_KERNEL.lock().unwrap() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    // One static registry, several tests: serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn budget_keeps_top_kernels_and_folds_the_rest() {
        let _l = TEST_LOCK.lock().unwrap();
        reset();
        for _ in 0..5 {
            record_kernel_service("sha", 10);
        }
        for _ in 0..3 {
            record_kernel_service("aes", 20);
        }
        record_kernel_service("gsm", 30);
        record_kernel_service("mips", 40);

        let series = kernel_series(2);
        assert_eq!(series.len(), 3, "two named + _other");
        assert_eq!(series[0].0, "sha");
        assert_eq!(series[1].0, "aes");
        assert_eq!(series[2].0, OTHER_LABEL);
        assert_eq!(series[2].1.count, 2, "gsm + mips folded");
        let total: u64 = series.iter().map(|(_, h)| h.count).sum();
        assert_eq!(total, 10, "folding preserves total sample count");

        // A generous budget names everything; zero folds everything.
        assert_eq!(kernel_series(10).len(), 4);
        let all_other = kernel_series(0);
        assert_eq!(all_other.len(), 1);
        assert_eq!(all_other[0].0, OTHER_LABEL);
        assert_eq!(all_other[0].1.count, 10);
        reset();
    }

    #[test]
    fn exposition_renders_the_labeled_family() {
        let _l = TEST_LOCK.lock().unwrap();
        reset();
        record_kernel_service("sha", 100);
        let text = kernel_exposition(DEFAULT_KERNEL_SERIES_BUDGET);
        assert!(text.contains("# TYPE tta_serve_job_kernel_service_us histogram"));
        assert!(text.contains("tta_serve_job_kernel_service_us_count{kernel=\"sha\"} 1"));
        reset();
        assert!(kernel_exposition(DEFAULT_KERNEL_SERIES_BUDGET).is_empty());
    }
}
