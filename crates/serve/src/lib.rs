//! # tta-serve — simulation as a service
//!
//! A dependency-light batch server over the evaluation pipeline: clients
//! `POST /v1/batch` a versioned JSON list of `(machine, kernel)` jobs and
//! receive one NDJSON run-report line per completed job (streamed in
//! completion order, indexed back to the request) plus a summary line.
//! Compilation is memoised in the process-wide sharded compile cache and
//! simulations multiplex over a work-queue pool sized like
//! `evaluate_all`'s, so a sustained stream of batches keeps every core
//! busy while compiling each distinct pair exactly once.
//!
//! ```text
//! cargo run --release -p tta-serve -- --addr 127.0.0.1:7878
//! curl -sN localhost:7878/v1/batch -d '{
//!   "req_version": 1,
//!   "jobs": [{"machine": "m-tta-2", "kernel": "sha"},
//!            {"machine": "m-vliw-2", "kernel": "motion"}]
//! }'
//! {"obs_version":1,"job":0,"ok":true,"report":{"machine":"m-tta-2","kernel":"sha","cycles":...}}
//! {"obs_version":1,"job":1,"ok":true,"report":{...}}
//! {"obs_version":1,"summary":true,"jobs":2,"ok":2,"errors":0,"timed_out":false,"wall_ms":...}
//! ```
//!
//! Per-job reports are built by `tta_explore::eval::job_report_json` from
//! the same `KernelRun` values the batch evaluation produces, so a served
//! job's report is bit-identical to the equivalent `evaluate_all` entry.
//! Malformed, oversized, or unknown-version requests get structured
//! `{"error": {"code", "message"}}` bodies; batch deadlines surface as
//! per-job `timeout` error lines rather than dropped connections.
//!
//! Beyond `/v1/batch` the server exposes its telemetry directly:
//! `GET /v1/metrics` renders every obs counter, gauge, and latency
//! histogram (queue depth/wait, per-job service time, per-route request
//! and per-class error counts) in Prometheus text format;
//! `GET /healthz` summarises the live queue/cache state; and
//! `GET /v1/debug/flight` serves the flight recorder — a bounded ring of
//! recent request/job/shutdown events. Every request carries a trace ID
//! (client `x-trace-id` header or generated) that appears on its log
//! line, every NDJSON line it produces, its error body, and its flight
//! events.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod schema;
pub mod server;

pub use schema::{ApiError, BatchRequest, ErrorCode, JobSpec, REQ_VERSION};
pub use server::{Server, ServerConfig};
