//! The versioned request schema and structured error vocabulary.
//!
//! Requests carry `req_version` (currently [`REQ_VERSION`]); a request
//! with a missing or unknown version is rejected with a structured error
//! before any job is looked at, so old clients fail loudly instead of
//! being half-served. Responses — per-job NDJSON lines and error bodies
//! alike — carry `obs_version` from the obs run-report schema family.
//!
//! ```json
//! {
//!   "req_version": 1,
//!   "jobs": [ {"machine": "m-tta-2", "kernel": "sha"} ],
//!   "timeout_ms": 5000
//! }
//! ```

use tta_obs::json::Json;

/// The request schema version this server speaks.
pub const REQ_VERSION: u64 = 1;

/// The run-report schema version of every response line (the obs
/// run-report family).
pub const OBS_VERSION: u64 = tta_obs::report::OBS_VERSION;

/// One simulation job: a preset design point × a CHStone-style kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Design-point name (`tta_model::presets::by_name`).
    pub machine: String,
    /// Kernel name (`tta_chstone::by_name`).
    pub kernel: String,
}

/// A parsed `POST /v1/batch` body.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The jobs, in client order (the order report lines are indexed by,
    /// not necessarily the order they stream back in).
    pub jobs: Vec<JobSpec>,
    /// Client-requested deadline for the whole batch; clamped to the
    /// server's configured maximum.
    pub timeout_ms: Option<u64>,
}

/// Machine-readable error categories; the `code` string in error bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The body is not valid JSON.
    MalformedJson,
    /// `req_version` is missing or not a version this server speaks.
    UnknownVersion,
    /// A required field is missing or has the wrong type.
    BadRequest,
    /// `machine` names no known design point.
    UnknownMachine,
    /// `kernel` names no known kernel.
    UnknownKernel,
    /// The body (or job count) exceeds the configured limit.
    Oversized,
    /// No route matches the request path.
    NotFound,
    /// The route exists but not for this HTTP method.
    BadMethod,
    /// The batch deadline expired before this job's report was ready.
    Timeout,
    /// A job panicked in the toolchain (a bug, not a client error).
    Internal,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed_json",
            ErrorCode::UnknownVersion => "unknown_version",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownMachine => "unknown_machine",
            ErrorCode::UnknownKernel => "unknown_kernel",
            ErrorCode::Oversized => "oversized",
            ErrorCode::NotFound => "not_found",
            ErrorCode::BadMethod => "bad_method",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
        }
    }

    /// The obs counter incremented when an error of this code is written
    /// to the wire (`serve.errors.<code>`). Static so the counter
    /// registry can intern it.
    pub fn counter_name(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "serve.errors.malformed_json",
            ErrorCode::UnknownVersion => "serve.errors.unknown_version",
            ErrorCode::BadRequest => "serve.errors.bad_request",
            ErrorCode::UnknownMachine => "serve.errors.unknown_machine",
            ErrorCode::UnknownKernel => "serve.errors.unknown_kernel",
            ErrorCode::Oversized => "serve.errors.oversized",
            ErrorCode::NotFound => "serve.errors.not_found",
            ErrorCode::BadMethod => "serve.errors.bad_method",
            ErrorCode::Timeout => "serve.errors.timeout",
            ErrorCode::Internal => "serve.errors.internal",
        }
    }

    /// The HTTP status an error of this code is delivered with (when it
    /// fails a whole request; per-job errors ride inside a 200 stream).
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::Oversized => 413,
            ErrorCode::NotFound => 404,
            ErrorCode::BadMethod => 405,
            ErrorCode::Internal => 500,
            ErrorCode::Timeout => 408,
            _ => 400,
        }
    }
}

/// A structured error: stable machine-readable code plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Construct an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// The `{"code": ..., "message": ...}` object embedded in bodies and
    /// per-job lines.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".into(), Json::Str(self.code.as_str().into())),
            ("message".into(), Json::Str(self.message.clone())),
        ])
    }

    /// A whole-request error body: `{"obs_version": 1, "error": {...}}`.
    pub fn to_body(&self) -> Json {
        Json::Obj(vec![
            ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
            ("error".into(), self.to_json()),
        ])
    }

    /// [`ApiError::to_body`] plus the request's trace ID, so a client can
    /// correlate an error body with its request logs and flight events.
    pub fn to_body_traced(&self, trace: &str) -> Json {
        Json::Obj(vec![
            ("obs_version".into(), Json::Num(OBS_VERSION as f64)),
            ("trace_id".into(), Json::Str(trace.into())),
            ("error".into(), self.to_json()),
        ])
    }
}

/// Parse and validate a batch request body against the schema. `max_jobs`
/// bounds the job count (the body size is bounded earlier, at the HTTP
/// layer). Job *names* are validated later, against the server's
/// catalogue, so this layer stays a pure schema check.
pub fn parse_batch(body: &str, max_jobs: usize) -> Result<BatchRequest, ApiError> {
    let doc = tta_obs::json::parse(body)
        .map_err(|e| ApiError::new(ErrorCode::MalformedJson, format!("body is not JSON: {e}")))?;
    let version = doc.get("req_version").and_then(Json::as_f64);
    if version != Some(REQ_VERSION as f64) {
        return Err(ApiError::new(
            ErrorCode::UnknownVersion,
            match version {
                Some(v) => {
                    format!("req_version {v} is not supported (this server speaks {REQ_VERSION})")
                }
                None => format!("req_version is required (this server speaks {REQ_VERSION})"),
            },
        ));
    }
    let Some(Json::Arr(raw_jobs)) = doc.get("jobs") else {
        return Err(ApiError::new(
            ErrorCode::BadRequest,
            "\"jobs\" must be an array of {machine, kernel} objects",
        ));
    };
    if raw_jobs.is_empty() {
        return Err(ApiError::new(ErrorCode::BadRequest, "\"jobs\" is empty"));
    }
    if raw_jobs.len() > max_jobs {
        return Err(ApiError::new(
            ErrorCode::Oversized,
            format!(
                "{} jobs exceeds the per-batch limit of {max_jobs}",
                raw_jobs.len()
            ),
        ));
    }
    let mut jobs = Vec::with_capacity(raw_jobs.len());
    for (i, j) in raw_jobs.iter().enumerate() {
        let field = |name: &str| {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ApiError::new(
                        ErrorCode::BadRequest,
                        format!("jobs[{i}] lacks a string \"{name}\""),
                    )
                })
        };
        jobs.push(JobSpec {
            machine: field("machine")?,
            kernel: field("kernel")?,
        });
    }
    let timeout_ms = match doc.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_f64() {
            Some(ms) if ms >= 0.0 => Some(ms as u64),
            _ => {
                return Err(ApiError::new(
                    ErrorCode::BadRequest,
                    "\"timeout_ms\" must be a non-negative number",
                ))
            }
        },
    };
    Ok(BatchRequest { jobs, timeout_ms })
}

/// Render a batch request as a request body (the client-side inverse of
/// [`parse_batch`]; used by the bench harness and tests).
pub fn batch_to_json(jobs: &[JobSpec], timeout_ms: Option<u64>) -> Json {
    let mut fields = vec![
        ("req_version".into(), Json::Num(REQ_VERSION as f64)),
        (
            "jobs".into(),
            Json::Arr(
                jobs.iter()
                    .map(|j| {
                        Json::Obj(vec![
                            ("machine".into(), Json::Str(j.machine.clone())),
                            ("kernel".into(), Json::Str(j.kernel.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".into(), Json::Num(ms as f64)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(jobs: &[(&str, &str)]) -> String {
        let specs: Vec<JobSpec> = jobs
            .iter()
            .map(|(m, k)| JobSpec {
                machine: m.to_string(),
                kernel: k.to_string(),
            })
            .collect();
        batch_to_json(&specs, None).to_compact()
    }

    #[test]
    fn well_formed_batch_round_trips() {
        let req = parse_batch(&body(&[("m-tta-2", "sha"), ("mblaze-3", "motion")]), 100).unwrap();
        assert_eq!(req.jobs.len(), 2);
        assert_eq!(req.jobs[0].machine, "m-tta-2");
        assert_eq!(req.jobs[1].kernel, "motion");
        assert_eq!(req.timeout_ms, None);
    }

    #[test]
    fn unknown_and_missing_versions_are_rejected() {
        let e = parse_batch(r#"{"req_version": 2, "jobs": []}"#, 10).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownVersion);
        assert!(e.message.contains("speaks 1"), "{}", e.message);
        let e = parse_batch(r#"{"jobs": [{"machine": "a", "kernel": "b"}]}"#, 10).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownVersion);
    }

    #[test]
    fn malformed_bodies_and_fields_are_structured_errors() {
        assert_eq!(
            parse_batch("not json", 10).unwrap_err().code,
            ErrorCode::MalformedJson
        );
        assert_eq!(
            parse_batch(r#"{"req_version": 1}"#, 10).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_batch(r#"{"req_version": 1, "jobs": []}"#, 10)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        let e = parse_batch(r#"{"req_version": 1, "jobs": [{"machine": "x"}]}"#, 10).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("jobs[0]"), "{}", e.message);
    }

    #[test]
    fn job_count_limit_is_enforced() {
        let e = parse_batch(&body(&[("a", "b"), ("c", "d")]), 1).unwrap_err();
        assert_eq!(e.code, ErrorCode::Oversized);
        assert_eq!(e.code.http_status(), 413);
    }

    #[test]
    fn timeout_field_parses_and_validates() {
        let src = r#"{"req_version": 1, "timeout_ms": 250,
                      "jobs": [{"machine": "a", "kernel": "b"}]}"#;
        assert_eq!(parse_batch(src, 10).unwrap().timeout_ms, Some(250));
        let bad = r#"{"req_version": 1, "timeout_ms": -1,
                      "jobs": [{"machine": "a", "kernel": "b"}]}"#;
        assert_eq!(
            parse_batch(bad, 10).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn error_body_shape_is_stable() {
        let b = ApiError::new(ErrorCode::UnknownVersion, "nope").to_body();
        assert_eq!(b.get("obs_version").unwrap().as_f64(), Some(1.0));
        let err = b.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("unknown_version"));
        assert_eq!(err.get("message").unwrap().as_str(), Some("nope"));
    }

    #[test]
    fn traced_error_body_carries_the_trace_id() {
        let b = ApiError::new(ErrorCode::NotFound, "gone").to_body_traced("t-123");
        assert_eq!(b.get("trace_id").unwrap().as_str(), Some("t-123"));
        assert_eq!(
            b.get("error").unwrap().get("code").unwrap().as_str(),
            Some("not_found")
        );
    }

    #[test]
    fn every_error_code_has_a_distinct_counter_name() {
        let codes = [
            ErrorCode::MalformedJson,
            ErrorCode::UnknownVersion,
            ErrorCode::BadRequest,
            ErrorCode::UnknownMachine,
            ErrorCode::UnknownKernel,
            ErrorCode::Oversized,
            ErrorCode::NotFound,
            ErrorCode::BadMethod,
            ErrorCode::Timeout,
            ErrorCode::Internal,
        ];
        let mut names: Vec<&str> = codes.iter().map(|c| c.counter_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), codes.len());
        for c in codes {
            assert_eq!(c.counter_name(), format!("serve.errors.{}", c.as_str()));
        }
    }
}
