//! End-to-end tests of the batch server over real sockets: schema
//! versioning, structured errors, NDJSON stream framing, concurrent-batch
//! determinism, parity with the batch evaluation pipeline, deadlines, and
//! graceful shutdown.

use std::net::SocketAddr;
use std::time::Duration;

use tta_obs::json::Json;
use tta_obs::ndjson;
use tta_serve::{client, schema, Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(120);

fn spawn() -> Server {
    spawn_with(|_| {})
}

fn spawn_with(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::spawn(cfg).expect("bind")
}

fn batch_body(jobs: &[(&str, &str)], timeout_ms: Option<u64>) -> String {
    let specs: Vec<schema::JobSpec> = jobs
        .iter()
        .map(|(m, k)| schema::JobSpec {
            machine: m.to_string(),
            kernel: k.to_string(),
        })
        .collect();
    schema::batch_to_json(&specs, timeout_ms).to_compact()
}

fn post_batch(addr: SocketAddr, body: &str) -> client::StreamedResponse {
    client::post_streaming(addr, "/v1/batch", body, TIMEOUT).expect("post /v1/batch")
}

/// Parse every line of a 200 stream; returns (job lines, summary line).
fn parse_stream(resp: &client::StreamedResponse) -> (Vec<Json>, Json) {
    assert_eq!(resp.status, 200);
    let mut values: Vec<Json> = resp
        .lines
        .iter()
        .map(|l| {
            tta_obs::json::parse(&l.text)
                .unwrap_or_else(|e| panic!("line not self-contained JSON: {e}: {:?}", l.text))
        })
        .collect();
    let summary = values.pop().expect("stream has a summary line");
    assert_eq!(summary.get("summary"), Some(&Json::Bool(true)));
    (values, summary)
}

fn error_code(resp: &client::Response) -> String {
    let doc = tta_obs::json::parse(&resp.body).expect("error body is JSON");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error body has error.code")
        .to_string()
}

#[test]
fn health_endpoint_reports_liveness() {
    let server = spawn();
    let resp = client::get(server.addr(), "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let doc = tta_obs::json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert!(doc.get("sim_threads").unwrap().as_f64().unwrap() >= 1.0);
    server.shutdown();
}

#[test]
fn unknown_req_version_is_a_structured_error() {
    let server = spawn();
    let body = r#"{"req_version": 99, "jobs": [{"machine": "mblaze-3", "kernel": "sha"}]}"#;
    let resp = client::post(server.addr(), "/v1/batch", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(error_code(&resp), "unknown_version");
    assert!(resp.body.contains("speaks 1"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn malformed_oversized_and_unknown_names_are_structured_errors() {
    let server = spawn_with(|cfg| cfg.max_body_bytes = 256);
    let addr = server.addr();

    let resp = client::post(addr, "/v1/batch", "this is not json", TIMEOUT).unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "malformed_json".into())
    );

    let big = batch_body(&[("mblaze-3", "sha"); 20], None);
    assert!(big.len() > 256);
    let resp = client::post(addr, "/v1/batch", &big, TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (413, "oversized".into()));

    let resp = client::post(
        addr,
        "/v1/batch",
        &batch_body(&[("not-a-machine", "sha")], None),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "unknown_machine".into())
    );

    let resp = client::post(
        addr,
        "/v1/batch",
        &batch_body(&[("mblaze-3", "not-a-kernel")], None),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "unknown_kernel".into())
    );

    server.shutdown();
}

#[test]
fn routing_rejects_wrong_methods_and_paths() {
    let server = spawn();
    let resp = client::get(server.addr(), "/v1/batch", TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (405, "bad_method".into()));
    let resp = client::post(server.addr(), "/v2/other", "{}", TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (404, "not_found".into()));
    server.shutdown();
}

#[test]
fn ndjson_stream_frames_one_report_per_job_plus_summary() {
    let server = spawn();
    let jobs = [("mblaze-3", "sha"), ("mblaze-3", "motion")];
    let resp = post_batch(server.addr(), &batch_body(&jobs, None));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(lines.len(), jobs.len());
    let mut seen = vec![false; jobs.len()];
    for line in &lines {
        assert_eq!(line.get("obs_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(line.get("ok"), Some(&Json::Bool(true)));
        let job = line.get("job").unwrap().as_f64().unwrap() as usize;
        let report = line.get("report").expect("ok line carries a report");
        // The job index routes back to the requested (machine, kernel).
        assert_eq!(report.get("machine").unwrap().as_str(), Some(jobs[job].0));
        assert_eq!(report.get("kernel").unwrap().as_str(), Some(jobs[job].1));
        assert!(report.get("cycles").unwrap().as_f64().unwrap() > 0.0);
        assert!(!seen[job], "job {job} reported twice");
        seen[job] = true;
    }
    assert_eq!(summary.get("jobs").unwrap().as_f64(), Some(2.0));
    assert_eq!(summary.get("ok").unwrap().as_f64(), Some(2.0));
    assert_eq!(summary.get("errors").unwrap().as_f64(), Some(0.0));
    assert_eq!(summary.get("timed_out"), Some(&Json::Bool(false)));
    server.shutdown();
}

/// The whole response also decodes with the library-side NDJSON parser
/// when reassembled — the framing satellite's round-trip.
#[test]
fn stream_reassembles_through_ndjson_parse_lines() {
    let server = spawn();
    let resp = post_batch(server.addr(), &batch_body(&[("m-tta-2", "sha")], None));
    assert_eq!(resp.status, 200);
    let text: String = resp.lines.iter().map(|l| format!("{}\n", l.text)).collect();
    let values = ndjson::parse_lines(&text).expect("stream parses as NDJSON");
    assert_eq!(values.len(), 2); // one job + summary
    server.shutdown();
}

#[test]
fn shuffled_batches_produce_identical_per_job_reports() {
    let server = spawn();
    let ordered = [
        ("mblaze-3", "sha"),
        ("mblaze-3", "motion"),
        ("m-vliw-2", "sha"),
        ("m-vliw-2", "motion"),
    ];
    let shuffled = [
        ("m-vliw-2", "motion"),
        ("mblaze-3", "sha"),
        ("m-vliw-2", "sha"),
        ("mblaze-3", "motion"),
    ];
    let collect = |jobs: &[(&str, &str)]| -> std::collections::BTreeMap<String, String> {
        let resp = post_batch(server.addr(), &batch_body(jobs, None));
        let (lines, summary) = parse_stream(&resp);
        assert_eq!(summary.get("ok").unwrap().as_f64(), Some(jobs.len() as f64));
        lines
            .iter()
            .map(|l| {
                let report = l.get("report").unwrap();
                let key = format!(
                    "{}/{}",
                    report.get("machine").unwrap().as_str().unwrap(),
                    report.get("kernel").unwrap().as_str().unwrap()
                );
                (key, report.to_compact())
            })
            .collect()
    };
    let a = collect(&ordered);
    let b = collect(&shuffled);
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "report content must not depend on submission order");
    server.shutdown();
}

/// Served per-job reports are bit-identical to the reports derived from
/// the equivalent `evaluate` single run — same canonical JSON, same
/// simulated numbers (acceptance criterion of the serve subsystem).
#[test]
fn served_reports_match_the_evaluation_pipeline_bit_for_bit() {
    let machines = vec![
        tta_model::presets::mblaze_3(),
        tta_model::presets::m_vliw_2(),
        tta_model::presets::m_tta_2(),
    ];
    let kernels: Vec<tta_chstone::Kernel> = ["sha", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).unwrap())
        .collect();
    let reports = tta_explore::evaluate(&machines, &kernels);

    let server = spawn();
    let jobs: Vec<(&str, &str)> = machines
        .iter()
        .flat_map(|m| kernels.iter().map(move |k| (m.name.as_str(), k.name)))
        .collect();
    let resp = post_batch(server.addr(), &batch_body(&jobs, None));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(summary.get("ok").unwrap().as_f64(), Some(jobs.len() as f64));

    let mut served: Vec<(usize, String)> = lines
        .iter()
        .map(|l| {
            (
                l.get("job").unwrap().as_f64().unwrap() as usize,
                l.get("report").unwrap().to_compact(),
            )
        })
        .collect();
    served.sort();
    for (ji, (machine, kernel)) in jobs.iter().enumerate() {
        let report = reports.iter().find(|r| &r.name == machine).unwrap();
        let expected = tta_explore::eval::job_report_json(machine, report.run(kernel)).to_compact();
        assert_eq!(served[ji].1, expected, "{machine}/{kernel}");
    }
    server.shutdown();
}

#[test]
fn expired_deadline_surfaces_structured_timeout_lines() {
    let server = spawn();
    let jobs = [("mblaze-3", "sha"), ("m-tta-2", "sha")];
    let resp = post_batch(server.addr(), &batch_body(&jobs, Some(0)));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(lines.len(), jobs.len());
    for line in &lines {
        assert_eq!(line.get("ok"), Some(&Json::Bool(false)));
        let code = line
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str);
        assert_eq!(code, Some("timeout"));
    }
    assert_eq!(summary.get("timed_out"), Some(&Json::Bool(true)));
    assert_eq!(summary.get("errors").unwrap().as_f64(), Some(2.0));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_unbinds() {
    let server = spawn();
    let addr = server.addr();
    // A request in flight before shutdown completes normally.
    let resp = post_batch(addr, &batch_body(&[("mblaze-3", "sha")], None));
    assert_eq!(resp.status, 200);
    server.shutdown();
    // The port no longer accepts (give the OS a beat to tear down).
    let refused = (0..10).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
    });
    assert!(refused, "socket must stop accepting after shutdown");
}

#[test]
fn shutdown_over_the_wire_stops_the_server() {
    let server = spawn();
    let addr = server.addr();
    let resp = client::post(addr, "/v1/shutdown", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    // wait() returns because the wire request flagged shutdown.
    server.wait();
}
