//! End-to-end tests of the batch server over real sockets: schema
//! versioning, structured errors, NDJSON stream framing, concurrent-batch
//! determinism, parity with the batch evaluation pipeline, deadlines, and
//! graceful shutdown.

use std::net::SocketAddr;
use std::time::Duration;

use tta_obs::json::Json;
use tta_obs::ndjson;
use tta_serve::{client, schema, Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(120);

fn spawn() -> Server {
    spawn_with(|_| {})
}

fn spawn_with(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::spawn(cfg).expect("bind")
}

fn batch_body(jobs: &[(&str, &str)], timeout_ms: Option<u64>) -> String {
    let specs: Vec<schema::JobSpec> = jobs
        .iter()
        .map(|(m, k)| schema::JobSpec {
            machine: m.to_string(),
            kernel: k.to_string(),
        })
        .collect();
    schema::batch_to_json(&specs, timeout_ms).to_compact()
}

fn post_batch(addr: SocketAddr, body: &str) -> client::StreamedResponse {
    client::post_streaming(addr, "/v1/batch", body, TIMEOUT).expect("post /v1/batch")
}

/// Parse every line of a 200 stream; returns (job lines, summary line).
fn parse_stream(resp: &client::StreamedResponse) -> (Vec<Json>, Json) {
    assert_eq!(resp.status, 200);
    let mut values: Vec<Json> = resp
        .lines
        .iter()
        .map(|l| {
            tta_obs::json::parse(&l.text)
                .unwrap_or_else(|e| panic!("line not self-contained JSON: {e}: {:?}", l.text))
        })
        .collect();
    let summary = values.pop().expect("stream has a summary line");
    assert_eq!(summary.get("summary"), Some(&Json::Bool(true)));
    (values, summary)
}

fn error_code(resp: &client::Response) -> String {
    let doc = tta_obs::json::parse(&resp.body).expect("error body is JSON");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error body has error.code")
        .to_string()
}

#[test]
fn health_endpoint_reports_liveness() {
    let server = spawn();
    let resp = client::get(server.addr(), "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let doc = tta_obs::json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert!(doc.get("sim_threads").unwrap().as_f64().unwrap() >= 1.0);
    server.shutdown();
}

#[test]
fn unknown_req_version_is_a_structured_error() {
    let server = spawn();
    let body = r#"{"req_version": 99, "jobs": [{"machine": "mblaze-3", "kernel": "sha"}]}"#;
    let resp = client::post(server.addr(), "/v1/batch", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(error_code(&resp), "unknown_version");
    assert!(resp.body.contains("speaks 1"), "{}", resp.body);
    server.shutdown();
}

#[test]
fn malformed_oversized_and_unknown_names_are_structured_errors() {
    let server = spawn_with(|cfg| cfg.max_body_bytes = 256);
    let addr = server.addr();

    let resp = client::post(addr, "/v1/batch", "this is not json", TIMEOUT).unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "malformed_json".into())
    );

    let big = batch_body(&[("mblaze-3", "sha"); 20], None);
    assert!(big.len() > 256);
    let resp = client::post(addr, "/v1/batch", &big, TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (413, "oversized".into()));

    let resp = client::post(
        addr,
        "/v1/batch",
        &batch_body(&[("not-a-machine", "sha")], None),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "unknown_machine".into())
    );

    let resp = client::post(
        addr,
        "/v1/batch",
        &batch_body(&[("mblaze-3", "not-a-kernel")], None),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(
        (resp.status, error_code(&resp)),
        (400, "unknown_kernel".into())
    );

    server.shutdown();
}

#[test]
fn routing_rejects_wrong_methods_and_paths() {
    let server = spawn();
    let resp = client::get(server.addr(), "/v1/batch", TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (405, "bad_method".into()));
    let resp = client::post(server.addr(), "/v2/other", "{}", TIMEOUT).unwrap();
    assert_eq!((resp.status, error_code(&resp)), (404, "not_found".into()));
    server.shutdown();
}

#[test]
fn ndjson_stream_frames_one_report_per_job_plus_summary() {
    let server = spawn();
    let jobs = [("mblaze-3", "sha"), ("mblaze-3", "motion")];
    let resp = post_batch(server.addr(), &batch_body(&jobs, None));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(lines.len(), jobs.len());
    let mut seen = vec![false; jobs.len()];
    for line in &lines {
        assert_eq!(line.get("obs_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(line.get("ok"), Some(&Json::Bool(true)));
        let job = line.get("job").unwrap().as_f64().unwrap() as usize;
        let report = line.get("report").expect("ok line carries a report");
        // The job index routes back to the requested (machine, kernel).
        assert_eq!(report.get("machine").unwrap().as_str(), Some(jobs[job].0));
        assert_eq!(report.get("kernel").unwrap().as_str(), Some(jobs[job].1));
        assert!(report.get("cycles").unwrap().as_f64().unwrap() > 0.0);
        assert!(!seen[job], "job {job} reported twice");
        seen[job] = true;
    }
    assert_eq!(summary.get("jobs").unwrap().as_f64(), Some(2.0));
    assert_eq!(summary.get("ok").unwrap().as_f64(), Some(2.0));
    assert_eq!(summary.get("errors").unwrap().as_f64(), Some(0.0));
    assert_eq!(summary.get("timed_out"), Some(&Json::Bool(false)));
    server.shutdown();
}

/// The whole response also decodes with the library-side NDJSON parser
/// when reassembled — the framing satellite's round-trip.
#[test]
fn stream_reassembles_through_ndjson_parse_lines() {
    let server = spawn();
    let resp = post_batch(server.addr(), &batch_body(&[("m-tta-2", "sha")], None));
    assert_eq!(resp.status, 200);
    let text: String = resp.lines.iter().map(|l| format!("{}\n", l.text)).collect();
    let values = ndjson::parse_lines(&text).expect("stream parses as NDJSON");
    assert_eq!(values.len(), 2); // one job + summary
    server.shutdown();
}

#[test]
fn shuffled_batches_produce_identical_per_job_reports() {
    let server = spawn();
    let ordered = [
        ("mblaze-3", "sha"),
        ("mblaze-3", "motion"),
        ("m-vliw-2", "sha"),
        ("m-vliw-2", "motion"),
    ];
    let shuffled = [
        ("m-vliw-2", "motion"),
        ("mblaze-3", "sha"),
        ("m-vliw-2", "sha"),
        ("mblaze-3", "motion"),
    ];
    let collect = |jobs: &[(&str, &str)]| -> std::collections::BTreeMap<String, String> {
        let resp = post_batch(server.addr(), &batch_body(jobs, None));
        let (lines, summary) = parse_stream(&resp);
        assert_eq!(summary.get("ok").unwrap().as_f64(), Some(jobs.len() as f64));
        lines
            .iter()
            .map(|l| {
                let report = l.get("report").unwrap();
                let key = format!(
                    "{}/{}",
                    report.get("machine").unwrap().as_str().unwrap(),
                    report.get("kernel").unwrap().as_str().unwrap()
                );
                (key, report.to_compact())
            })
            .collect()
    };
    let a = collect(&ordered);
    let b = collect(&shuffled);
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "report content must not depend on submission order");
    server.shutdown();
}

/// Served per-job reports are bit-identical to the reports derived from
/// the equivalent `evaluate` single run — same canonical JSON, same
/// simulated numbers (acceptance criterion of the serve subsystem).
#[test]
fn served_reports_match_the_evaluation_pipeline_bit_for_bit() {
    let machines = vec![
        tta_model::presets::mblaze_3(),
        tta_model::presets::m_vliw_2(),
        tta_model::presets::m_tta_2(),
    ];
    let kernels: Vec<tta_chstone::Kernel> = ["sha", "motion"]
        .iter()
        .map(|n| tta_chstone::by_name(n).unwrap())
        .collect();
    let reports = tta_explore::evaluate(&machines, &kernels);

    let server = spawn();
    let jobs: Vec<(&str, &str)> = machines
        .iter()
        .flat_map(|m| kernels.iter().map(move |k| (m.name.as_str(), k.name)))
        .collect();
    let resp = post_batch(server.addr(), &batch_body(&jobs, None));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(summary.get("ok").unwrap().as_f64(), Some(jobs.len() as f64));

    let mut served: Vec<(usize, String)> = lines
        .iter()
        .map(|l| {
            (
                l.get("job").unwrap().as_f64().unwrap() as usize,
                l.get("report").unwrap().to_compact(),
            )
        })
        .collect();
    served.sort();
    for (ji, (machine, kernel)) in jobs.iter().enumerate() {
        let report = reports.iter().find(|r| &r.name == machine).unwrap();
        let expected = tta_explore::eval::job_report_json(machine, report.run(kernel)).to_compact();
        assert_eq!(served[ji].1, expected, "{machine}/{kernel}");
    }
    server.shutdown();
}

#[test]
fn expired_deadline_surfaces_structured_timeout_lines() {
    let server = spawn();
    let jobs = [("mblaze-3", "sha"), ("m-tta-2", "sha")];
    let resp = post_batch(server.addr(), &batch_body(&jobs, Some(0)));
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(lines.len(), jobs.len());
    for line in &lines {
        assert_eq!(line.get("ok"), Some(&Json::Bool(false)));
        let code = line
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str);
        assert_eq!(code, Some("timeout"));
    }
    assert_eq!(summary.get("timed_out"), Some(&Json::Bool(true)));
    assert_eq!(summary.get("errors").unwrap().as_f64(), Some(2.0));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_unbinds() {
    let server = spawn();
    let addr = server.addr();
    // A request in flight before shutdown completes normally.
    let resp = post_batch(addr, &batch_body(&[("mblaze-3", "sha")], None));
    assert_eq!(resp.status, 200);
    server.shutdown();
    // The port no longer accepts (give the OS a beat to tear down).
    let refused = (0..10).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
    });
    assert!(refused, "socket must stop accepting after shutdown");
}

#[test]
fn shutdown_over_the_wire_stops_the_server() {
    let server = spawn();
    let addr = server.addr();
    let resp = client::post(addr, "/v1/shutdown", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    // wait() returns because the wire request flagged shutdown.
    server.wait();
}

/// Every line of a stream must carry the same trace ID; returns it.
fn stream_trace_id(resp: &client::StreamedResponse) -> String {
    let (lines, summary) = parse_stream(resp);
    let trace = summary
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("summary line carries trace_id")
        .to_string();
    assert!(!trace.is_empty());
    for line in &lines {
        assert_eq!(
            line.get("trace_id").and_then(Json::as_str),
            Some(trace.as_str()),
            "every job line carries the request trace ID"
        );
    }
    trace
}

#[test]
fn client_trace_id_stamps_every_line_and_flight_event() {
    let server = spawn();
    let resp = client::post_streaming_with_headers(
        server.addr(),
        "/v1/batch",
        &batch_body(&[("mblaze-3", "sha")], None),
        &[("x-trace-id", "e2e-trace-abc")],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(stream_trace_id(&resp), "e2e-trace-abc");

    // The flight recorder kept the request's event sequence under the
    // same ID (filtered by trace: other tests share the global ring).
    let flight = client::get(server.addr(), "/v1/debug/flight", TIMEOUT).unwrap();
    assert_eq!(flight.status, 200);
    let doc = tta_obs::json::parse(&flight.body).unwrap();
    let Some(Json::Arr(events)) = doc.get("events") else {
        panic!("flight body has an events array: {}", flight.body);
    };
    let kinds: Vec<&str> = events
        .iter()
        .filter(|e| e.get("trace").and_then(Json::as_str) == Some("e2e-trace-abc"))
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    for expected in ["req.start", "batch.start", "job.dispatch", "job.done"] {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
    server.shutdown();
}

#[test]
fn missing_trace_header_gets_a_generated_id() {
    let server = spawn();
    let a = post_batch(server.addr(), &batch_body(&[("mblaze-3", "sha")], None));
    let b = post_batch(server.addr(), &batch_body(&[("mblaze-3", "sha")], None));
    let (ta, tb) = (stream_trace_id(&a), stream_trace_id(&b));
    assert_ne!(ta, tb, "generated trace IDs are per-request");
    server.shutdown();
}

#[test]
fn error_bodies_carry_the_trace_id() {
    let server = spawn();
    let mut stream = client::post_streaming_with_headers(
        server.addr(),
        "/v1/batch",
        "this is not json",
        &[("x-trace-id", "e2e-err-trace")],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(stream.status, 400);
    let body: String = stream.lines.drain(..).map(|l| l.text).collect();
    let doc = tta_obs::json::parse(&body).unwrap();
    assert_eq!(
        doc.get("trace_id").and_then(Json::as_str),
        Some("e2e-err-trace")
    );
    assert_eq!(
        doc.get("error").unwrap().get("code").unwrap().as_str(),
        Some("malformed_json")
    );
    server.shutdown();
}

/// The value of a label-free series in an exposition document.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_exposition_parses_and_changes_under_load() {
    let server = spawn();
    let scrape = || {
        let resp = client::get(server.addr(), "/v1/metrics", TIMEOUT).unwrap();
        assert_eq!(resp.status, 200);
        resp.body
    };
    let before = scrape();
    // Well-formed: every non-comment line is `name[{labels}] value` with
    // a finite value; no NaN anywhere (all exported values are integers).
    assert!(!before.contains("NaN"));
    for line in before.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("line has a value");
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("{line:?}"));
        assert!(v.is_finite(), "{line:?}");
    }
    let batches_before = metric_value(&before, "tta_serve_batches").unwrap_or(0.0);

    post_batch(server.addr(), &batch_body(&[("mblaze-3", "sha")], None));
    let after = scrape();
    let batches_after = metric_value(&after, "tta_serve_batches").unwrap();
    assert!(
        batches_after > batches_before,
        "batch counter moves under load: {batches_before} -> {batches_after}"
    );
    // Queue gauges and latency histograms are exported.
    for series in [
        "tta_serve_sim_queue_depth",
        "tta_serve_sim_in_flight",
        "tta_serve_requests_batch",
        "tta_serve_job_service_us_count",
        "tta_serve_sim_queue_wait_us_count",
    ] {
        assert!(
            metric_value(&after, series).is_some(),
            "missing series {series} in:\n{after}"
        );
    }
    assert!(metric_value(&after, "tta_serve_job_service_us_count").unwrap() >= 1.0);
    server.shutdown();
}

#[test]
fn per_kernel_latency_series_respect_the_cardinality_budget() {
    // Budget of 1: at most one kernel keeps its own label, everything
    // else folds into kernel="_other" at scrape time.
    let server = spawn_with(|c| c.kernel_series_budget = 1);
    post_batch(
        server.addr(),
        &batch_body(
            &[("mblaze-3", "sha"), ("mblaze-3", "aes"), ("m-tta-2", "gsm")],
            None,
        ),
    );
    let resp = client::get(server.addr(), "/v1/metrics", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.body;
    assert_eq!(
        text.matches("# TYPE tta_serve_job_kernel_service_us histogram")
            .count(),
        1,
        "one header for the labeled family"
    );
    let count_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("tta_serve_job_kernel_service_us_count{kernel="))
        .collect();
    assert_eq!(
        count_lines.len(),
        2,
        "budget 1 = one named kernel + _other:\n{count_lines:?}"
    );
    assert!(
        count_lines.iter().any(|l| l.contains("kernel=\"_other\"")),
        "{count_lines:?}"
    );
    let total: f64 = count_lines
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum();
    assert!(
        total >= 3.0,
        "all three jobs accounted for across the budgeted series, got {total}"
    );
    server.shutdown();
}

#[test]
fn healthz_reports_queue_cache_and_dropped_state() {
    let server = spawn();
    let resp = client::get(server.addr(), "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let doc = tta_obs::json::parse(&resp.body).unwrap();
    for key in [
        "queue_depth",
        "in_flight",
        "conn_queue_depth",
        "conn_in_flight",
        "cache_entries",
        "cache_hits",
        "cache_misses",
    ] {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("healthz lacks {key}: {}", resp.body));
        assert!(v >= 0.0, "{key} = {v}");
    }
    let dropped = doc.get("dropped").expect("healthz has dropped tallies");
    for kind in ["spans", "counters", "gauges", "hists"] {
        assert!(dropped.get(kind).and_then(Json::as_f64).is_some());
    }
    server.shutdown();
}

#[test]
fn flight_recorder_captures_a_timed_out_job() {
    let server = spawn();
    let resp = client::post_streaming_with_headers(
        server.addr(),
        "/v1/batch",
        &batch_body(&[("mblaze-3", "sha")], Some(0)),
        &[("x-trace-id", "e2e-timeout-trace")],
        TIMEOUT,
    )
    .unwrap();
    let (lines, summary) = parse_stream(&resp);
    assert_eq!(summary.get("timed_out"), Some(&Json::Bool(true)));
    assert_eq!(
        lines[0].get("trace_id").and_then(Json::as_str),
        Some("e2e-timeout-trace")
    );

    let flight = client::get(server.addr(), "/v1/debug/flight", TIMEOUT).unwrap();
    let doc = tta_obs::json::parse(&flight.body).unwrap();
    let Some(Json::Arr(events)) = doc.get("events") else {
        panic!("flight body has an events array");
    };
    let kinds: Vec<&str> = events
        .iter()
        .filter(|e| e.get("trace").and_then(Json::as_str) == Some("e2e-timeout-trace"))
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    for expected in ["req.start", "batch.start", "job.dispatch", "job.timeout"] {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
    // Events arrive in recorded order: the dispatch precedes the timeout.
    let pos = |k: &str| kinds.iter().position(|&x| x == k).unwrap();
    assert!(pos("req.start") < pos("batch.start"));
    assert!(pos("batch.start") < pos("job.timeout"));
    server.shutdown();
}

#[test]
fn per_route_and_per_error_counters_show_in_metrics() {
    let server = spawn();
    let scrape = || {
        client::get(server.addr(), "/v1/metrics", TIMEOUT)
            .unwrap()
            .body
    };
    let before = scrape();
    let h0 = metric_value(&before, "tta_serve_requests_healthz").unwrap_or(0.0);
    let e0 = metric_value(&before, "tta_serve_errors_not_found").unwrap_or(0.0);
    client::get(server.addr(), "/healthz", TIMEOUT).unwrap();
    let resp = client::post(server.addr(), "/nope", "{}", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    let after = scrape();
    assert!(metric_value(&after, "tta_serve_requests_healthz").unwrap() > h0);
    assert!(metric_value(&after, "tta_serve_errors_not_found").unwrap() > e0);
    server.shutdown();
}
