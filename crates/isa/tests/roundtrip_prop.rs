//! Property test: the bit-level TTA codec round-trips every valid
//! instruction on every TTA design point. Cases are generated from a
//! deterministic PRNG, so every case is reproducible from its number.

use tta_isa::{Move, MoveDst, MoveSrc, TtaCodec, TtaInst};
use tta_model::{presets, CoreStyle, DstConn, Machine, RegRef, SrcConn};
use tta_testutil::Rng;

/// Generate a random valid move for bus `b` of `m`, if the bus has any
/// valid source/destination.
fn random_move(m: &Machine, b: usize, pick: &mut impl FnMut(usize) -> usize) -> Option<Move> {
    let bus = &m.buses[b];
    // Collect candidate sources.
    let mut srcs: Vec<MoveSrc> = Vec::new();
    for s in &bus.sources {
        match *s {
            SrcConn::RfRead(rf) => {
                let idx = pick(m.rf(rf).regs as usize) as u16;
                srcs.push(MoveSrc::Rf(RegRef { rf, index: idx }));
            }
            SrcConn::FuResult(f) => srcs.push(MoveSrc::FuResult(f)),
        }
    }
    for k in 0..m.limm.imm_regs {
        srcs.push(MoveSrc::ImmReg(k));
    }
    if bus.simm_bits > 0 {
        let half = 1i64 << (bus.simm_bits - 1);
        let v = (pick((2 * half) as usize) as i64 - half) as i32;
        srcs.push(MoveSrc::Imm(v));
    }
    let mut dsts: Vec<MoveDst> = Vec::new();
    for d in &bus.dests {
        match *d {
            DstConn::RfWrite(rf) => {
                let idx = pick(m.rf(rf).regs as usize) as u16;
                dsts.push(MoveDst::Rf(RegRef { rf, index: idx }));
            }
            DstConn::FuOperand(f) => dsts.push(MoveDst::FuOperand(f)),
            DstConn::FuTrigger(f) => {
                let ops = &m.fu(f).ops;
                dsts.push(MoveDst::FuTrigger(f, ops[pick(ops.len())]));
            }
        }
    }
    if srcs.is_empty() || dsts.is_empty() {
        return None;
    }
    Some(Move {
        src: srcs[pick(srcs.len())],
        dst: dsts[pick(dsts.len())],
    })
}

fn random_program(m: &Machine, seeds: &[u32]) -> Vec<TtaInst> {
    let mut cursor = 0usize;
    let mut pick = |n: usize| -> usize {
        let v = seeds[cursor % seeds.len()] as usize;
        cursor += 1;
        v % n.max(1)
    };
    let n_insts = 1 + pick(8);
    let mut prog = Vec::with_capacity(n_insts);
    for _ in 0..n_insts {
        let mut inst = TtaInst::nop(m.buses.len());
        let kind = pick(4);
        if kind == 0 {
            // Long immediate; the repurposed slots stay empty.
            let reg = pick(m.limm.imm_regs as usize) as u8;
            let value = (pick(usize::MAX) as u32 as i32).wrapping_mul(2654435761u32 as i32);
            inst.limm = Some((reg, value));
            for b in m.limm.bus_slots as usize..m.buses.len() {
                if pick(2) == 0 {
                    inst.slots[b] = random_move(m, b, &mut pick);
                }
            }
        } else {
            for b in 0..m.buses.len() {
                if pick(3) != 0 {
                    inst.slots[b] = random_move(m, b, &mut pick);
                }
            }
        }
        prog.push(inst);
    }
    prog
}

#[test]
fn random_instructions_roundtrip() {
    for case in 0u64..64 {
        let mut rng = Rng::new(case);
        let n_seeds = rng.range(32, 128);
        let seeds: Vec<u32> = rng.vec(n_seeds, |r| r.next_u32());
        for m in presets::all_design_points() {
            if m.style != CoreStyle::Tta {
                continue;
            }
            let codec = TtaCodec::new(&m);
            let prog = random_program(&m, &seeds);
            let bytes = codec.encode_program(&prog).unwrap();
            assert_eq!(
                bytes.len(),
                (prog.len() * codec.width() as usize).div_ceil(8),
                "case {case} machine {}",
                m.name
            );
            let back = codec.decode_program(&bytes, prog.len()).unwrap();
            assert_eq!(back, prog, "case {case} machine {}", m.name);
        }
    }
}
