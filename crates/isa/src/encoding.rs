//! Instruction-encoding width models (paper §IV and Table II).
//!
//! * **TTA** widths are derived automatically from the interconnect, the way
//!   TCE derives them: each bus contributes a move slot whose source field
//!   must address every reachable source socket *or* carry the bus's short
//!   immediate, and whose destination field must address every reachable
//!   destination socket including per-opcode trigger codes. One extra bit
//!   selects the long-immediate instruction template.
//! * **VLIW** widths follow the paper's manual encoding: per issue slot a
//!   4-bit opcode, two source fields of (register-address + 1 immediate
//!   flag) bits and one destination field of register-address bits.
//! * **Scalar** instructions are fixed 32-bit, with wide constants paying an
//!   extra `imm`-prefix instruction (already visible as an instruction in
//!   the program stream, so no width adjustment is needed here).

use tta_model::{Bus, CoreStyle, DstConn, Machine, SrcConn};

/// Bits needed to enumerate `n` distinct codes (0 for `n <= 1`).
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Number of addressable source items on a bus: every register of every
/// readable RF, each readable FU result port, and each long-immediate
/// register.
pub fn tta_src_items(m: &Machine, bus: &Bus) -> usize {
    let mut items = m.limm.imm_regs as usize;
    for s in &bus.sources {
        items += match *s {
            SrcConn::RfRead(rf) => m.rf(rf).regs as usize,
            SrcConn::FuResult(_) => 1,
        };
    }
    items
}

/// Number of addressable destination items on a bus: every register of
/// every writable RF, each operand port, and one code per opcode of each
/// reachable trigger port, plus the slot-NOP code.
pub fn tta_dst_items(m: &Machine, bus: &Bus) -> usize {
    let mut items = 1; // NOP
    for d in &bus.dests {
        items += match *d {
            DstConn::RfWrite(rf) => m.rf(rf).regs as usize,
            DstConn::FuOperand(_) => 1,
            DstConn::FuTrigger(fu) => m.fu(fu).opcode_count(),
        };
    }
    items
}

/// Source-field width of one move slot: 1 immediate-select bit plus the
/// wider of the socket-address field and the short-immediate field.
pub fn tta_src_bits(m: &Machine, bus: &Bus) -> u32 {
    1 + ceil_log2(tta_src_items(m, bus)).max(bus.simm_bits as u32)
}

/// Destination-field width of one move slot.
pub fn tta_dst_bits(m: &Machine, bus: &Bus) -> u32 {
    ceil_log2(tta_dst_items(m, bus))
}

/// Full TTA instruction width in bits.
pub fn tta_instruction_bits(m: &Machine) -> u32 {
    let slots: u32 = m
        .buses
        .iter()
        .map(|b| tta_src_bits(m, b) + tta_dst_bits(m, b))
        .sum();
    // One template bit selects between "all slots are moves" and "the first
    // limm.bus_slots slots carry a long immediate".
    slots + 1
}

/// Register-address width of the VLIW encoding: enough bits to name any
/// register of any file (partitioned files spend the same bits on bank
/// select + index, as in the paper where 2-issue machines use 6 bits and
/// 3-issue machines 7).
pub fn vliw_reg_bits(m: &Machine) -> u32 {
    ceil_log2(m.total_regs() as usize)
}

/// Width of the immediate that fits inline in a VLIW source field.
pub fn vliw_imm_bits(m: &Machine) -> u32 {
    vliw_reg_bits(m)
}

/// Full VLIW instruction width in bits: per slot, 4-bit opcode + two source
/// fields (reg bits + immediate flag) + destination field.
pub fn vliw_instruction_bits(m: &Machine) -> u32 {
    let reg = vliw_reg_bits(m);
    let slot = 4 + 2 * (reg + 1) + reg;
    slot * m.slots.len() as u32
}

/// Scalar instructions are fixed 32-bit words.
pub const SCALAR_INSTRUCTION_BITS: u32 = 32;

/// Instruction width of any machine, per its style.
pub fn instruction_bits(m: &Machine) -> u32 {
    match m.style {
        CoreStyle::Tta => tta_instruction_bits(m),
        CoreStyle::Vliw => vliw_instruction_bits(m),
        CoreStyle::Scalar => SCALAR_INSTRUCTION_BITS,
    }
}

/// Program image size in bits for `len` instructions.
pub fn image_bits(m: &Machine, len: usize) -> u64 {
    instruction_bits(m) as u64 * len as u64
}

/// Whether a signed immediate fits in `bits` (signed two's-complement).
pub fn fits_signed(value: i32, bits: u32) -> bool {
    if bits == 0 {
        return false;
    }
    if bits >= 32 {
        return true;
    }
    let half = 1i64 << (bits - 1);
    (value as i64) >= -half && (value as i64) < half
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_model::presets;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn fits_signed_ranges() {
        assert!(fits_signed(31, 6));
        assert!(fits_signed(-32, 6));
        assert!(!fits_signed(32, 6));
        assert!(!fits_signed(-33, 6));
        assert!(fits_signed(i32::MAX, 32));
        assert!(!fits_signed(1, 0));
    }

    #[test]
    fn vliw_widths_match_paper() {
        // Paper Table II: 48b for the 2-issue machines.
        assert_eq!(vliw_instruction_bits(&presets::m_vliw_2()), 48);
        assert_eq!(vliw_instruction_bits(&presets::p_vliw_2()), 48);
        // The paper reports 72b for 3-issue; the described formula (4-bit
        // opcode, 7-bit register addresses, immediate flags) actually gives
        // 27 bits per slot = 81. We keep the formula; see EXPERIMENTS.md.
        assert_eq!(vliw_instruction_bits(&presets::m_vliw_3()), 81);
        assert_eq!(vliw_instruction_bits(&presets::p_vliw_3()), 81);
    }

    #[test]
    fn tta_widths_land_near_paper() {
        // Paper Table II: m-tta-1 43b, m-tta-2 81b, p-tta-2 83b, bm-tta-2
        // 66b, m-tta-3 145b, p-tta-3 134b, bm-tta-3 99b. Our automatic
        // encoder should land in the same neighbourhood (±20%).
        let cases = [
            ("m-tta-1", 43.0),
            ("m-tta-2", 81.0),
            ("p-tta-2", 83.0),
            ("bm-tta-2", 66.0),
            ("m-tta-3", 145.0),
            ("p-tta-3", 134.0),
            ("bm-tta-3", 99.0),
        ];
        for (name, paper) in cases {
            let m = presets::by_name(name).unwrap();
            let bits = tta_instruction_bits(&m) as f64;
            let ratio = bits / paper;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{name}: derived {bits} bits vs paper {paper} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn tta_wider_than_vliw_at_same_issue_width() {
        // The paper's headline drawback: TTA instructions are wider.
        assert!(
            tta_instruction_bits(&presets::m_tta_2()) > vliw_instruction_bits(&presets::m_vliw_2())
        );
        assert!(
            tta_instruction_bits(&presets::m_tta_3()) > vliw_instruction_bits(&presets::m_vliw_3())
        );
    }

    #[test]
    fn bus_merging_narrows_instructions() {
        assert!(
            tta_instruction_bits(&presets::bm_tta_2()) < tta_instruction_bits(&presets::p_tta_2())
        );
        assert!(
            tta_instruction_bits(&presets::bm_tta_3()) < tta_instruction_bits(&presets::p_tta_3())
        );
    }

    #[test]
    fn image_size_scales_linearly() {
        let m = presets::m_tta_1();
        assert_eq!(image_bits(&m, 0), 0);
        assert_eq!(image_bits(&m, 10), 10 * tta_instruction_bits(&m) as u64);
    }

    #[test]
    fn scalar_is_32_bits() {
        assert_eq!(instruction_bits(&presets::mblaze_3()), 32);
        assert_eq!(instruction_bits(&presets::mblaze_5()), 32);
    }
}
